//! Shared fixtures for the criterion benchmarks.
//!
//! The benches regenerate the paper's Table 2 (algorithm run times per
//! service count) and ablate the design choices called out in `DESIGN.md`
//! §7 (Permutation-Pack key mapping, METAHVPLIGHT subset, binary-search
//! resolution, LP presolve).

use vmplace_model::ProblemInstance;
use vmplace_sim::{Scenario, ScenarioConfig};

/// The paper's evaluation platform at a given service count: 64 hosts,
/// cov 0.5, memory slack 0.5 — a representative mid-grid scenario.
pub fn paper_instance(services: usize, seed: u64) -> ProblemInstance {
    Scenario::new(ScenarioConfig {
        hosts: 64,
        services,
        cov: 0.5,
        memory_slack: 0.5,
        ..ScenarioConfig::default()
    })
    .instance(seed)
}

/// A smaller instance for the expensive LP benchmarks.
pub fn small_instance(hosts: usize, services: usize, seed: u64) -> ProblemInstance {
    Scenario::new(ScenarioConfig {
        hosts,
        services,
        cov: 0.5,
        memory_slack: 0.6,
        ..ScenarioConfig::default()
    })
    .instance(seed)
}

/// Returns a seed whose instance yields a buildable, integer-feasible MILP
/// encoding within a modest node budget, so the MILP benchmarks time real
/// branch & bound work rather than a trivially infeasible build.
pub fn milp_seed(hosts: usize, services: usize) -> u64 {
    use vmplace_lp::{MilpOptions, YieldLp};
    let opts = MilpOptions {
        max_nodes: 20_000,
        ..MilpOptions::default()
    };
    for seed in 0..20 {
        let inst = small_instance(hosts, services, seed);
        if let Some(ylp) = YieldLp::build(&inst) {
            if ylp.solve_exact(&opts).is_some() {
                return seed;
            }
        }
    }
    0
}

/// Returns a seed whose instance is feasible for METAHVPLIGHT (generation
/// can produce trivially infeasible instances, which would make timing
/// numbers meaningless).
pub fn feasible_seed(services: usize) -> u64 {
    use vmplace_core::{Algorithm, MetaVp};
    let light = MetaVp::metahvp_light();
    for seed in 0..20 {
        let inst = paper_instance(services, seed);
        if light.solve(&inst).is_some() {
            return seed;
        }
    }
    0
}
