//! Shared fixtures for the criterion benchmarks.
//!
//! The benches regenerate the paper's Table 2 (algorithm run times per
//! service count) and ablate the design choices called out in `DESIGN.md`
//! §7 (Permutation-Pack key mapping, METAHVPLIGHT subset, binary-search
//! resolution, LP presolve).

use vmplace_model::ProblemInstance;
use vmplace_sim::{Scenario, ScenarioConfig};

// Bench JSON records effective parallelism next to the configured thread
// count so a single-core container can no longer silently publish
// `t8 ≈ t1` rows as if they demonstrated (absent) multicore scaling. The
// detection itself lives in `vmplace_obs::host`, shared with the stats
// examples and the live `stats` snapshot.
pub use vmplace_obs::host::effective_parallelism;

/// The paper's evaluation platform at a given service count: 64 hosts,
/// cov 0.5, memory slack 0.5 — a representative mid-grid scenario.
pub fn paper_instance(services: usize, seed: u64) -> ProblemInstance {
    Scenario::new(ScenarioConfig {
        hosts: 64,
        services,
        cov: 0.5,
        memory_slack: 0.5,
        ..ScenarioConfig::default()
    })
    .instance(seed)
}

/// A smaller instance for the expensive LP benchmarks.
pub fn small_instance(hosts: usize, services: usize, seed: u64) -> ProblemInstance {
    Scenario::new(ScenarioConfig {
        hosts,
        services,
        cov: 0.5,
        memory_slack: 0.6,
        ..ScenarioConfig::default()
    })
    .instance(seed)
}

/// Returns a seed whose instance yields a buildable, integer-feasible MILP
/// encoding within a modest node budget, so the MILP benchmarks time real
/// branch & bound work rather than a trivially infeasible build.
pub fn milp_seed(hosts: usize, services: usize) -> u64 {
    use vmplace_lp::{MilpOptions, YieldLp};
    let opts = MilpOptions {
        max_nodes: 20_000,
        ..MilpOptions::default()
    };
    for seed in 0..20 {
        let inst = small_instance(hosts, services, seed);
        if let Some(ylp) = YieldLp::build(&inst) {
            if ylp.solve_exact(&opts).is_some() {
                return seed;
            }
        }
    }
    0
}

/// Returns a seed whose instance is feasible for METAHVPLIGHT (generation
/// can produce trivially infeasible instances, which would make timing
/// numbers meaningless).
pub fn feasible_seed(services: usize) -> u64 {
    use vmplace_core::{Algorithm, MetaVp};
    let light = MetaVp::metahvp_light();
    for seed in 0..20 {
        let inst = paper_instance(services, seed);
        if light.solve(&inst).is_some() {
            return seed;
        }
    }
    0
}

/// The pre-engine sequential META* path, replicated for benchmarking: one
/// binary search whose probe rebuilds the yield-scaled item tables and
/// tries each roster member with a fresh scratch (the per-probe
/// allocation profile of the seed code). Shared by the `portfolio` bench
/// and the `portfolio_stats` example so both measure the same baseline.
pub fn seed_fold(meta: &vmplace_core::MetaVp, instance: &ProblemInstance) -> Option<f64> {
    use vmplace_core::vp::{VpProblem, DEFAULT_RESOLUTION};
    use vmplace_model::{evaluate_placement, Placement};

    let pack = |lambda: f64| -> Option<Placement> {
        let vp = VpProblem::new(instance, lambda);
        meta.members().find_map(|h| h.pack(&vp))
    };
    let p0 = pack(0.0)?;
    if let Some(p1) = pack(1.0) {
        return evaluate_placement(instance, &p1).map(|s| s.min_yield);
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut best = p0;
    while hi - lo > DEFAULT_RESOLUTION {
        let mid = 0.5 * (lo + hi);
        match pack(mid) {
            Some(p) => {
                best = p;
                lo = mid;
            }
            None => hi = mid,
        }
    }
    evaluate_placement(instance, &best).map(|s| s.min_yield)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_parallelism_is_reexported_and_sane() {
        // The re-export from `vmplace_obs::host` must behave like the
        // local helper it replaced.
        let eff = effective_parallelism();
        let advertised = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(eff >= 1);
        assert!(
            eff <= advertised,
            "effective {eff} > advertised {advertised}"
        );
    }
}
