//! Emits the `BENCH_net.json` numbers: loopback server throughput across
//! a connections × workers grid against the in-process pool, ping
//! latency quantiles at 256/1024 connections across the {io backend} ×
//! {wire version} matrix, the v1-text vs v2-binary codec microbench,
//! and the response-cache speedup on identical re-solves.
//!
//! ```text
//! cargo run --release -p vmplace-bench --example net_stats [reps]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vmplace_model::{AllocRequest, RequestKind, RequestOutcome};
use vmplace_net::wire::PROTOCOL_V2;
use vmplace_net::{codec, Client, IoBackend, Server, ServerConfig};
use vmplace_service::trace_io::{write_request, BlockAssembler};
use vmplace_service::{OverloadControl, ResponseSink, ServiceConfig, SolverPool};
use vmplace_sim::{Adversarial, ScenarioConfig, TraceConfig};

fn make_trace(hosts: usize, services: usize, streams: usize, requests: usize) -> Vec<AllocRequest> {
    TraceConfig {
        streams,
        requests,
        scenario: ScenarioConfig {
            hosts,
            services,
            cov: 0.5,
            memory_slack: 0.6,
            ..ScenarioConfig::default()
        },
        ..TraceConfig::default()
    }
    .generate(1)
}

/// Splits a trace by stream across `connections` clients (whole streams
/// only, so per-stream order is preserved per connection).
fn split_by_stream(trace: &[AllocRequest], connections: usize) -> Vec<Vec<AllocRequest>> {
    let mut parts = vec![Vec::new(); connections];
    for req in trace {
        parts[(req.stream % connections as u64) as usize].push(req.clone());
    }
    parts
}

fn solved(responses: &[vmplace_model::AllocResponse]) -> usize {
    responses
        .iter()
        .filter(|r| r.outcome == RequestOutcome::Solved)
        .count()
}

/// Mean seconds per call of `f` over `reps` calls after one warm-up.
fn time<F: FnMut() -> usize>(reps: usize, mut f: F) -> (f64, usize) {
    let mut n = f();
    let t0 = Instant::now();
    for _ in 0..reps {
        n = f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, n)
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("{{");
    println!(
        "  \"note\": \"seconds, mean of {reps} replays after warm-up; loopback = vmplace-net client/server over 127.0.0.1 (trace split by stream across connections), inprocess = SolverPool in the same process; connection_scale = ping round-trip quantiles at 256/1024 mostly-idle connections per {{io backend}} x {{wire version}} cell, with idle wake-ups per second while no traffic flows; codec = one-request encode/decode microbench, v1 text vs v2 binary, on New bodies; overload = a spike trace paced at a multiple of measured capacity into bounded queues (sojourn quantiles over served requests only); cached vs uncached = identical Resolve burst with the response cache on/off; worker counts beyond effective_parallelism cannot speed up wall-clock\","
    );
    println!(
        "  \"effective_parallelism\": {},",
        vmplace_bench::effective_parallelism()
    );
    println!("  \"configured_threads\": {},", vmplace_par::num_threads());
    println!(
        "  \"parallel_speedup_meaningful\": {},",
        vmplace_bench::effective_parallelism() > 1
    );

    // ── Loopback vs in-process, connections × workers grid ────────────
    println!("  \"loopback\": [");
    let shapes: [(usize, usize, usize, usize); 2] = [(16, 40, 4, 60), (64, 100, 4, 48)];
    let mut first = true;
    for (hosts, services, streams, requests) in shapes {
        let trace = make_trace(hosts, services, streams, requests);
        for workers in [1usize, 4] {
            let service = ServiceConfig {
                workers,
                ..ServiceConfig::default()
            };

            let mut pool = SolverPool::new(&service);
            let (t_pool, solved_pool) = time(reps, || solved(&pool.replay(trace.clone())));
            pool.shutdown();

            for connections in [1usize, 4] {
                let server = Server::bind(
                    "127.0.0.1:0",
                    &ServerConfig {
                        service: service.clone(),
                        ..ServerConfig::default()
                    },
                )
                .expect("bind");
                let addr = server.local_addr();
                let parts = split_by_stream(&trace, connections);
                let (t_net, solved_net) = time(reps, || {
                    let handles: Vec<_> = parts
                        .iter()
                        .cloned()
                        .map(|part| {
                            std::thread::spawn(move || {
                                let mut client = Client::connect(addr).expect("connect");
                                solved(&client.replay(&part).expect("replay"))
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("client")).sum()
                });
                drop(server);
                assert_eq!(
                    solved_pool, solved_net,
                    "loopback and in-process disagree on solved count"
                );

                if !first {
                    println!(",");
                }
                first = false;
                print!(
                    "    {{\"hosts\": {hosts}, \"services\": {services}, \"streams\": {streams}, \
                     \"requests\": {requests}, \"workers\": {workers}, \"connections\": {connections}, \
                     \"inprocess_ms_per_request\": {:.3}, \"loopback_ms_per_request\": {:.3}, \
                     \"overhead_ratio\": {:.3}, \"solved\": {solved_net}}}",
                    t_pool * 1e3 / requests as f64,
                    t_net * 1e3 / requests as f64,
                    t_net / t_pool,
                );
                eprintln!(
                    "H={hosts:<3} J={services:<4} w={workers} c={connections}  inprocess {:.3}s  loopback {:.3}s  ({:.2}x)",
                    t_pool, t_net, t_net / t_pool
                );
            }
        }
    }
    println!();
    println!("  ],");

    // ── Connection scale: ping latency at 256/1024 connections ───────
    // Many mostly-idle connections, a few driver threads walking them
    // with ping round-trips: the event backend must hold bounded p99 at
    // 1024 connections where the threaded backend pays two OS threads
    // and a 100 ms poll wake-up per connection. Pings bypass the solver
    // pool, so the quantiles measure the I/O core itself.
    println!("  \"connection_scale\": [");
    let mut first = true;
    for io in [IoBackend::Threads, IoBackend::Events] {
        for wire in [1u32, PROTOCOL_V2] {
            for connections in [256usize, 1024] {
                let config = ServerConfig {
                    service: ServiceConfig {
                        workers: 1,
                        ..ServiceConfig::default()
                    },
                    io,
                    ..ServerConfig::default()
                };
                let server = Server::bind("127.0.0.1:0", &config).expect("bind");
                let addr = server.local_addr();

                let drivers = 8usize;
                let rounds = if connections >= 1024 { 2usize } else { 4 };
                let connect_t0 = Instant::now();
                let handles: Vec<_> = (0..drivers)
                    .map(|_| {
                        let per = connections / drivers;
                        std::thread::spawn(move || {
                            let mut conns = Vec::with_capacity(per);
                            let mut refused = 0usize;
                            for _ in 0..per {
                                match Client::connect_with(addr, wire) {
                                    Ok(c) => conns.push(c),
                                    Err(_) => refused += 1,
                                }
                            }
                            (conns, refused)
                        })
                    })
                    .collect();
                let mut groups = Vec::new();
                let mut refused = 0usize;
                for h in handles {
                    let (c, r) = h.join().expect("connect driver");
                    groups.push(c);
                    refused += r;
                }
                let connect_s = connect_t0.elapsed().as_secs_f64();

                // Idle cost: wake-ups per second while nothing happens.
                std::thread::sleep(Duration::from_millis(300));
                let w0 = server.io_wakeups();
                std::thread::sleep(Duration::from_millis(500));
                let idle_wakeups_per_sec = (server.io_wakeups() - w0) as f64 / 0.5;

                let ping_t0 = Instant::now();
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|mut conns| {
                        std::thread::spawn(move || {
                            let mut lat_ms = Vec::with_capacity(conns.len() * rounds);
                            for _ in 0..rounds {
                                for client in conns.iter_mut() {
                                    let t = Instant::now();
                                    if client.ping("lat").is_ok() {
                                        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                    }
                                }
                            }
                            (lat_ms, conns)
                        })
                    })
                    .collect();
                let mut lat_ms = Vec::new();
                let mut held = Vec::new();
                for h in handles {
                    let (l, c) = h.join().expect("ping driver");
                    lat_ms.extend(l);
                    held.push(c);
                }
                let ping_s = ping_t0.elapsed().as_secs_f64();
                drop(held);
                drop(server);

                lat_ms.sort_by(f64::total_cmp);
                let quantile = |q: f64| {
                    if lat_ms.is_empty() {
                        f64::NAN
                    } else {
                        lat_ms[((lat_ms.len() - 1) as f64 * q).round() as usize]
                    }
                };

                if !first {
                    println!(",");
                }
                first = false;
                print!(
                    "    {{\"io\": \"{io:?}\", \"wire\": {wire}, \"connections\": {connections}, \
                     \"refused\": {refused}, \"connect_s\": {connect_s:.2}, \
                     \"pings\": {}, \"ping_p50_ms\": {:.3}, \"ping_p99_ms\": {:.3}, \
                     \"ping_throughput_rps\": {:.0}, \"idle_wakeups_per_sec\": {idle_wakeups_per_sec:.1}}}",
                    lat_ms.len(),
                    quantile(0.5),
                    quantile(0.99),
                    lat_ms.len() as f64 / ping_s,
                );
                eprintln!(
                    "{io:?} v{wire} c={connections:<4} refused {refused:<3} p50 {:.2}ms p99 {:.2}ms  idle wakeups {:.0}/s",
                    quantile(0.5),
                    quantile(0.99),
                    idle_wakeups_per_sec,
                );
            }
        }
    }
    println!();
    println!("  ],");

    // ── Codec: v1 text vs v2 binary, one `New` request ────────────────
    println!("  \"codec\": [");
    let mut first = true;
    for (hosts, services) in [(16usize, 40usize), (64, 100)] {
        let request = make_trace(hosts, services, 1, 1).remove(0);
        assert!(
            matches!(request.kind, RequestKind::New(_)),
            "codec microbench wants the instance-carrying New body"
        );
        let iters = 2_000usize;

        let mut text = String::new();
        write_request(&mut text, &request);
        let v1_bytes = text.len();
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut s = String::with_capacity(v1_bytes);
            write_request(&mut s, &request);
            std::hint::black_box(&s);
        }
        let v1_enc_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut asm = BlockAssembler::new();
            let mut out = None;
            for (i, line) in text.lines().enumerate() {
                if let Some(req) = asm.feed(i + 1, line).expect("v1 parse") {
                    out = Some(req);
                }
            }
            std::hint::black_box(&out);
        }
        let v1_dec_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let mut bin = Vec::new();
        codec::encode_request(&mut bin, &request);
        let v2_bytes = bin.len();
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut b = Vec::with_capacity(v2_bytes);
            codec::encode_request(&mut b, &request);
            std::hint::black_box(&b);
        }
        let v2_enc_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let mut head = [0u8; codec::HEADER_LEN];
        head.copy_from_slice(&bin[..codec::HEADER_LEN]);
        let (kind, _len) = codec::parse_header(&head);
        let body = &bin[codec::HEADER_LEN..];
        let t0 = Instant::now();
        for _ in 0..iters {
            let frame = codec::decode_client_frame(kind, body).expect("v2 decode");
            std::hint::black_box(&frame);
        }
        let v2_dec_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

        if !first {
            println!(",");
        }
        first = false;
        print!(
            "    {{\"hosts\": {hosts}, \"services\": {services}, \"v1_bytes\": {v1_bytes}, \
             \"v2_bytes\": {v2_bytes}, \"v1_encode_us\": {v1_enc_us:.2}, \"v1_decode_us\": {v1_dec_us:.2}, \
             \"v2_encode_us\": {v2_enc_us:.2}, \"v2_decode_us\": {v2_dec_us:.2}, \
             \"encode_speedup\": {:.1}, \"decode_speedup\": {:.1}}}",
            v1_enc_us / v2_enc_us,
            v1_dec_us / v2_dec_us,
        );
        eprintln!(
            "codec H={hosts:<3} J={services:<4} v1 {v1_bytes}B enc {v1_enc_us:.1}us dec {v1_dec_us:.1}us | v2 {v2_bytes}B enc {v2_enc_us:.1}us dec {v2_dec_us:.1}us ({:.1}x decode)",
            v1_dec_us / v2_dec_us,
        );
    }
    println!();
    println!("  ],");

    // ── Overload control: goodput and shedding vs offered load ───────
    // A correlated demand spike paced at a multiple of the pool's
    // measured capacity, into bounded per-worker queues. Shedding must
    // engage at ≥2× capacity while the p99 sojourn of *served* requests
    // stays bounded (the acceptance bar of the robustness PR).
    println!("  \"overload\": [");
    let workers = 2usize;
    let queue_depth = 8usize;
    let trace = TraceConfig {
        streams: 4,
        requests: 96,
        scenario: ScenarioConfig {
            hosts: 16,
            services: 40,
            cov: 0.5,
            memory_slack: 0.6,
            ..ScenarioConfig::default()
        },
        mix: (0.3, 0.2, 0.25, 0.25),
        resolve_burst: 3,
        adversarial: Adversarial::Spike,
        ..TraceConfig::default()
    }
    .generate(9);

    // Calibrate capacity: an unpaced, unshedded replay at the same
    // worker count is the fastest this pool can drain this trace.
    let base = ServiceConfig {
        workers,
        ..ServiceConfig::default()
    };
    let mut pool = SolverPool::new(&base);
    let t0 = Instant::now();
    let n = pool.replay(trace.clone()).len();
    let capacity_rps = n as f64 / t0.elapsed().as_secs_f64();
    pool.shutdown();

    let mut first = true;
    for multiplier in [0.5f64, 1.0, 2.0, 4.0] {
        let offered_rps = capacity_rps * multiplier;
        let gap = Duration::from_secs_f64(1.0 / offered_rps);
        let config = ServiceConfig {
            workers,
            overload: Some(OverloadControl {
                queue_depth,
                shed_expired: true,
            }),
            ..ServiceConfig::default()
        };

        let run_t0 = Instant::now();
        let submit_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..trace.len()).map(|_| AtomicU64::new(0)).collect());
        let finished: Arc<Mutex<Vec<(u64, u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_done = finished.clone();
        let sink: ResponseSink = Arc::new(move |r: vmplace_model::AllocResponse| {
            let ns = run_t0.elapsed().as_nanos() as u64;
            sink_done
                .lock()
                .expect("sink lock")
                .push((r.id, ns, !r.outcome.is_retryable()));
        });
        let mut pool = SolverPool::with_sink(&config, sink);
        let mut next = Instant::now();
        for req in &trace {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += gap;
            submit_ns[req.id as usize].store(run_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            pool.submit(vec![req.clone()]);
        }
        let admission_sheds = pool.shed_count();
        pool.shutdown(); // drains: the sink has seen every response
        let wall = run_t0.elapsed().as_secs_f64();

        let done = finished.lock().expect("results lock");
        assert_eq!(done.len(), trace.len(), "every request answered");
        let served = done.iter().filter(|(_, _, ok)| *ok).count();
        let shed_rate = (trace.len() - served) as f64 / trace.len() as f64;
        let mut sojourns_ms: Vec<f64> = done
            .iter()
            .filter(|(_, _, ok)| *ok)
            .map(|(id, ns, _)| {
                (ns.saturating_sub(submit_ns[*id as usize].load(Ordering::Relaxed))) as f64 / 1e6
            })
            .collect();
        sojourns_ms.sort_by(f64::total_cmp);
        let quantile = |q: f64| sojourns_ms[((sojourns_ms.len() - 1) as f64 * q).round() as usize];

        if !first {
            println!(",");
        }
        first = false;
        print!(
            "    {{\"workers\": {workers}, \"queue_depth\": {queue_depth}, \
             \"load_multiplier\": {multiplier}, \"offered_rps\": {offered_rps:.1}, \
             \"capacity_rps\": {capacity_rps:.1}, \"goodput_rps\": {:.1}, \
             \"shed_rate\": {shed_rate:.3}, \"admission_sheds\": {admission_sheds}, \
             \"served_p50_sojourn_ms\": {:.2}, \"served_p99_sojourn_ms\": {:.2}}}",
            served as f64 / wall,
            quantile(0.5),
            quantile(0.99),
        );
        eprintln!(
            "load {multiplier:>3}x  offered {offered_rps:>6.1}/s  goodput {:>6.1}/s  shed {:>5.1}%  p99 {:.1}ms",
            served as f64 / wall,
            shed_rate * 100.0,
            quantile(0.99),
        );
    }
    println!();
    println!("  ],");

    // ── Response cache: identical re-solves ───────────────────────────
    println!("  \"response_cache\": [");
    let mut first = true;
    for (hosts, services) in [(16usize, 40usize), (64, 100)] {
        let mut trace = make_trace(hosts, services, 1, 1); // one New
        let resolves = 64u64;
        for i in 0..resolves {
            trace.push(AllocRequest {
                id: 1 + i,
                stream: trace[0].stream,
                kind: RequestKind::Resolve,
                budget: None,
                policy: Default::default(),
            });
        }
        let base = ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let mut cached = SolverPool::new(&base);
        let (t_on, _) = time(reps, || solved(&cached.replay(trace.clone())));
        let mut uncached = SolverPool::new(&ServiceConfig {
            response_cache: false,
            ..base
        });
        let (t_off, _) = time(reps, || solved(&uncached.replay(trace.clone())));

        // Per identical re-solve (the burst minus the opening New and the
        // cache-warming first resolve, both paid on either path).
        let per_on = t_on * 1e3 / resolves as f64;
        let per_off = t_off * 1e3 / resolves as f64;
        if !first {
            println!(",");
        }
        first = false;
        print!(
            "    {{\"hosts\": {hosts}, \"services\": {services}, \"identical_resolves\": {resolves}, \
             \"uncached_ms_per_resolve\": {per_off:.3}, \"cached_ms_per_resolve\": {per_on:.3}, \
             \"cache_speedup\": {:.1}}}",
            t_off / t_on,
        );
        eprintln!(
            "H={hosts:<3} J={services:<4} {resolves} identical resolves: uncached {:.3}s  cached {:.3}s  ({:.1}x)",
            t_off,
            t_on,
            t_off / t_on
        );
    }
    println!();
    println!("  ]");
    println!("}}");
}
