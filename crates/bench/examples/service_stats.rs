//! Emits the `BENCH_service.json` numbers: amortised per-request latency
//! of the resident solver pool (warm) against the cold one-shot reference
//! path, across trace sizes and worker counts.
//!
//! ```text
//! cargo run --release -p vmplace-bench --example service_stats [reps]
//! ```

use std::time::Instant;
use vmplace_model::{AllocRequest, RequestOutcome};
use vmplace_service::{replay_oneshot, ServiceConfig, SolverPool};
use vmplace_sim::{ScenarioConfig, TraceConfig};

fn time_replay<F: FnMut(Vec<AllocRequest>) -> Vec<vmplace_model::AllocResponse>>(
    reps: usize,
    trace: &[AllocRequest],
    mut f: F,
) -> (f64, usize) {
    // Warm-up run, then timed reps.
    let mut solved = 0;
    f(trace.to_vec());
    let t0 = Instant::now();
    for _ in 0..reps {
        solved = f(trace.to_vec())
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Solved)
            .count();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, solved)
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // (hosts, services, streams, requests): small, mid-grid and large
    // traces of the §4 scenario family.
    let shapes: [(usize, usize, usize, usize); 3] =
        [(16, 40, 4, 60), (64, 100, 4, 48), (64, 250, 4, 32)];
    let worker_counts = [1usize, 4];

    println!("{{");
    println!(
        "  \"note\": \"seconds, mean of {reps} trace replays after warm-up; pooled = resident SolverPool with warm seeding + ordered roster, oneshot_cold = fresh engine per request, no warm hints; pooled worker counts beyond effective_parallelism cannot speed up wall-clock\","
    );
    println!(
        "  \"effective_parallelism\": {},",
        vmplace_bench::effective_parallelism()
    );
    println!("  \"configured_threads\": {},", vmplace_par::num_threads());
    println!(
        "  \"parallel_speedup_meaningful\": {},",
        vmplace_bench::effective_parallelism() > 1
    );
    println!("  \"results\": [");
    let mut first = true;
    for (hosts, services, streams, requests) in shapes {
        let trace = TraceConfig {
            streams,
            requests,
            scenario: ScenarioConfig {
                hosts,
                services,
                cov: 0.5,
                memory_slack: 0.6,
                ..ScenarioConfig::default()
            },
            ..TraceConfig::default()
        }
        .generate(1);

        let cold_cfg = ServiceConfig {
            workers: 1,
            warm_start: false,
            ordered_roster: false,
            ..ServiceConfig::default()
        };
        let (t_cold, solved_cold) = time_replay(reps, &trace, |t| replay_oneshot(t, &cold_cfg));

        for &workers in &worker_counts {
            let warm_cfg = ServiceConfig {
                workers,
                ..ServiceConfig::default()
            };
            let mut pool = SolverPool::new(&warm_cfg);
            let (t_warm, solved_warm) = time_replay(reps, &trace, |t| pool.replay(t));
            pool.shutdown();
            assert_eq!(
                solved_cold, solved_warm,
                "pooled and one-shot disagree on solved count"
            );
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "    {{\"hosts\": {hosts}, \"services\": {services}, \"streams\": {streams}, \
                 \"requests\": {requests}, \"workers\": {workers}, \
                 \"oneshot_cold_s\": {t_cold:.4}, \"pooled_warm_s\": {t_warm:.4}, \
                 \"oneshot_ms_per_request\": {:.3}, \"pooled_ms_per_request\": {:.3}, \
                 \"amortised_speedup\": {:.2}, \"solved\": {solved_warm}}}",
                t_cold * 1e3 / requests as f64,
                t_warm * 1e3 / requests as f64,
                t_cold / t_warm,
            );
            eprintln!(
                "H={hosts:<3} J={services:<4} w={workers}  oneshot {:.3}s  pooled {:.3}s ({:.2}x)  {}/{} solved",
                t_cold,
                t_warm,
                t_cold / t_warm,
                solved_warm,
                requests
            );
        }
    }
    println!();
    println!("  ]");
    println!("}}");
}
