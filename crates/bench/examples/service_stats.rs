//! Emits the `BENCH_service.json` numbers: amortised per-request latency
//! of the resident solver pool (warm) against the cold one-shot reference
//! path, across trace sizes and worker counts, plus the delta-repair
//! grid (per-request cost of `Repaired`-policy patches vs the exact
//! re-solves of the same requests).
//!
//! ```text
//! cargo run --release -p vmplace-bench --example service_stats [reps]
//! ```

use std::time::Instant;
use vmplace_model::{AllocRequest, RequestOutcome, ResponsePolicy};
use vmplace_service::{replay_oneshot, ServiceConfig, SolverPool, REPAIR_WINNER};
use vmplace_sim::{ScenarioConfig, TraceConfig};

fn time_replay<F: FnMut(Vec<AllocRequest>) -> Vec<vmplace_model::AllocResponse>>(
    reps: usize,
    trace: &[AllocRequest],
    mut f: F,
) -> (f64, usize) {
    // Warm-up run, then timed reps.
    let mut solved = 0;
    f(trace.to_vec());
    let t0 = Instant::now();
    for _ in 0..reps {
        solved = f(trace.to_vec())
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Solved)
            .count();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, solved)
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // (hosts, services, streams, requests): small, mid-grid and large
    // traces of the §4 scenario family.
    let shapes: [(usize, usize, usize, usize); 3] =
        [(16, 40, 4, 60), (64, 100, 4, 48), (64, 250, 4, 32)];
    let worker_counts = [1usize, 4];

    println!("{{");
    println!(
        "  \"note\": \"seconds, mean of {reps} trace replays after warm-up; pooled = resident SolverPool with warm seeding + ordered roster, oneshot_cold = fresh engine per request, no warm hints; pooled worker counts beyond effective_parallelism cannot speed up wall-clock\","
    );
    println!(
        "  \"effective_parallelism\": {},",
        vmplace_bench::effective_parallelism()
    );
    println!("  \"configured_threads\": {},", vmplace_par::num_threads());
    println!(
        "  \"parallel_speedup_meaningful\": {},",
        vmplace_bench::effective_parallelism() > 1
    );
    println!("  \"results\": [");
    let mut first = true;
    for (hosts, services, streams, requests) in shapes {
        let trace = TraceConfig {
            streams,
            requests,
            scenario: ScenarioConfig {
                hosts,
                services,
                cov: 0.5,
                memory_slack: 0.6,
                ..ScenarioConfig::default()
            },
            ..TraceConfig::default()
        }
        .generate(1);

        let cold_cfg = ServiceConfig {
            workers: 1,
            warm_start: false,
            ordered_roster: false,
            ..ServiceConfig::default()
        };
        let (t_cold, solved_cold) = time_replay(reps, &trace, |t| replay_oneshot(t, &cold_cfg));

        for &workers in &worker_counts {
            let warm_cfg = ServiceConfig {
                workers,
                ..ServiceConfig::default()
            };
            let mut pool = SolverPool::new(&warm_cfg);
            let (t_warm, solved_warm) = time_replay(reps, &trace, |t| pool.replay(t));
            pool.shutdown();
            assert_eq!(
                solved_cold, solved_warm,
                "pooled and one-shot disagree on solved count"
            );
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "    {{\"hosts\": {hosts}, \"services\": {services}, \"streams\": {streams}, \
                 \"requests\": {requests}, \"workers\": {workers}, \
                 \"oneshot_cold_s\": {t_cold:.4}, \"pooled_warm_s\": {t_warm:.4}, \
                 \"oneshot_ms_per_request\": {:.3}, \"pooled_ms_per_request\": {:.3}, \
                 \"amortised_speedup\": {:.2}, \"solved\": {solved_warm}}}",
                t_cold * 1e3 / requests as f64,
                t_warm * 1e3 / requests as f64,
                t_cold / t_warm,
            );
            eprintln!(
                "H={hosts:<3} J={services:<4} w={workers}  oneshot {:.3}s  pooled {:.3}s ({:.2}x)  {}/{} solved",
                t_cold,
                t_warm,
                t_cold / t_warm,
                solved_warm,
                requests
            );
        }
    }
    println!();
    println!("  ],");

    // ── Delta-repair grid ─────────────────────────────────────────────
    // Same trace replayed twice through a 1-worker pool (cache off so
    // every request's wall is a real solve): once Exact, once Repaired.
    // Per request that the repaired replay patched, compare its repair
    // wall against the exact replay's full re-solve wall for the same id.
    let tolerance = 0.2;
    let max_migrations = 3;
    println!("  \"delta_repair\": [");
    let mut first = true;
    for (hosts, services, streams, requests) in shapes {
        let mk_trace = |policy: ResponsePolicy| {
            TraceConfig {
                streams,
                requests,
                scenario: ScenarioConfig {
                    hosts,
                    services,
                    cov: 0.5,
                    memory_slack: 0.6,
                    ..ScenarioConfig::default()
                },
                // Delta-heavy: mostly small demand changes, the repair
                // path's target workload.
                mix: (0.2, 0.15, 0.55, 0.1),
                policy,
                ..TraceConfig::default()
            }
            .generate(1)
        };
        let config = ServiceConfig {
            workers: 1,
            response_cache: false,
            ..ServiceConfig::default()
        };
        let mut pool_e = SolverPool::new(&config);
        let exact = pool_e.replay(mk_trace(ResponsePolicy::Exact));
        pool_e.shutdown();
        let mut pool_r = SolverPool::new(&config);
        let repaired = pool_r.replay(mk_trace(ResponsePolicy::Repaired {
            tolerance,
            max_migrations,
        }));
        pool_r.shutdown();

        let mut repair_us = 0.0f64;
        let mut exact_us = 0.0f64;
        let mut repairs = 0usize;
        let followups = requests - streams; // everything after each stream's New
        for (r, e) in repaired.iter().zip(&exact) {
            assert_eq!(r.id, e.id);
            if r.winner.as_deref() == Some(REPAIR_WINNER) {
                repairs += 1;
                repair_us += r.wall.as_secs_f64() * 1e6;
                exact_us += e.wall.as_secs_f64() * 1e6;
            }
        }
        let mean_repair = repair_us / repairs.max(1) as f64;
        let mean_exact = exact_us / repairs.max(1) as f64;
        if !first {
            println!(",");
        }
        first = false;
        print!(
            "    {{\"hosts\": {hosts}, \"services\": {services}, \"streams\": {streams}, \
             \"requests\": {requests}, \"tolerance\": {tolerance}, \
             \"max_migrations\": {max_migrations}, \"repaired_requests\": {repairs}, \
             \"solved_followups\": {followups}, \
             \"exact_us_per_resolve\": {mean_exact:.1}, \
             \"repair_us_per_resolve\": {mean_repair:.1}, \
             \"repair_speedup\": {:.1}}}",
            mean_exact / mean_repair.max(1e-9),
        );
        eprintln!(
            "H={hosts:<3} J={services:<4} repair {repairs}/{followups} followups  \
             exact {mean_exact:.0}us  repaired {mean_repair:.1}us ({:.0}x)",
            mean_exact / mean_repair.max(1e-9),
        );
    }
    println!();
    println!("  ]");
    println!("}}");
}
