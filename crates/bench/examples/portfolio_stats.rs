//! Emits the `BENCH_portfolio.json` numbers: sequential seed path vs the
//! portfolio engine (1 and 8 threads) on the paper's mid-grid scenario,
//! plus a Table-1 smoke sweep timing.
//!
//! ```text
//! cargo run --release -p vmplace-bench --example portfolio_stats [reps]
//! ```

use std::time::Instant;
use vmplace_bench::seed_fold;
use vmplace_core::{Algorithm, MetaVp, SolveCtx};
use vmplace_sim::{Scenario, ScenarioConfig};

fn time_mean<F: FnMut() -> Option<f64>>(reps: usize, mut f: F) -> (f64, Option<f64>) {
    let mut out = None;
    // Warm-up.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        out = f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, out)
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // (hosts, services, cov, slack, seed): the paper's mid-grid point at
    // two sizes, plus a high-heterogeneity / low-slack point where early
    // roster members fail often (the fold re-scans the roster there).
    let scenarios: Vec<(usize, usize, f64, f64, u64)> = vec![
        (64, 100, 0.5, 0.5, 1),
        (64, 250, 0.5, 0.5, 1),
        (64, 250, 1.0, 0.3, 1),
    ];
    let effective = vmplace_bench::effective_parallelism();
    println!("{{");
    println!("  \"note\": \"seconds, mean of {reps} reps after warm-up; seed_fold replicates the pre-engine sequential META* (per-probe allocation, first-member-wins fold); when effective_parallelism is 1 the t8 column shows engine overhead, not parallel speedup\",");
    println!("  \"configured_threads\": {},", vmplace_par::num_threads());
    println!("  \"effective_parallelism\": {effective},");
    println!("  \"parallel_speedup_meaningful\": {},", effective > 1);
    println!("  \"results\": [");
    let mut first = true;
    for (hosts, services, cov, slack, seed) in scenarios {
        let instance = Scenario::new(ScenarioConfig {
            hosts,
            services,
            cov,
            memory_slack: slack,
            ..ScenarioConfig::default()
        })
        .instance(seed);
        for (algo, meta) in [
            ("METAVP", MetaVp::metavp()),
            ("METAHVP", MetaVp::metahvp()),
            ("METAHVPLIGHT", MetaVp::metahvp_light()),
        ] {
            let (t_seed, y_seed) = time_mean(reps, || seed_fold(&meta, &instance));
            let mut ctx1 = SolveCtx::new().with_threads(1);
            let (t_e1, y_e1) = time_mean(reps, || {
                meta.solve_with(&instance, &mut ctx1).map(|s| s.min_yield)
            });
            let probes1 = ctx1.take_report().map(|r| r.total_probes()).unwrap_or(0);
            let mut ctx8 = SolveCtx::new().with_threads(8);
            let (t_e8, _) = time_mean(reps, || {
                meta.solve_with(&instance, &mut ctx8).map(|s| s.min_yield)
            });
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "    {{\"algo\": \"{algo}\", \"hosts\": {hosts}, \"services\": {services}, \
                 \"cov\": {cov}, \"slack\": {slack}, \
                 \"seed_fold_s\": {t_seed:.4}, \"engine_t1_s\": {t_e1:.4}, \"engine_t8_s\": {t_e8:.4}, \
                 \"speedup_t1\": {:.2}, \"speedup_t8\": {:.2}, \
                 \"engine_probes\": {probes1}, \
                 \"yield_seed\": {}, \"yield_engine\": {}}}",
                t_seed / t_e1,
                t_seed / t_e8,
                y_seed.map(|y| format!("{y:.4}")).unwrap_or("null".into()),
                y_e1.map(|y| format!("{y:.4}")).unwrap_or("null".into()),
            );
            eprintln!(
                "{algo:<13} J={services:<4} seed {t_seed:.3}s  engine_t1 {t_e1:.3}s ({:.2}x)  engine_t8 {t_e8:.3}s ({:.2}x)",
                t_seed / t_e1,
                t_seed / t_e8
            );
        }
    }
    println!();
    println!("  ],");

    // Table-1 smoke sweep through the engine-aware roster (instance-level
    // par_map outside, engine inline via the nested-parallelism guard).
    let sweep_cfg = vmplace_experiments::Table1Config::smoke_scale("/tmp/portfolio_stats_out");
    std::fs::create_dir_all("/tmp/portfolio_stats_out").ok();
    let roster = vmplace_experiments::Roster::new();
    let t0 = Instant::now();
    let rows = vmplace_experiments::run_sweep(&sweep_cfg.sweep, &roster);
    let sweep_s = t0.elapsed().as_secs_f64();
    eprintln!("table1 smoke sweep: {} rows in {sweep_s:.2}s", rows.len());
    println!(
        "  \"table1_smoke_sweep\": {{\"rows\": {}, \"seconds\": {sweep_s:.3}}}",
        rows.len()
    );
    println!("}}");
}
