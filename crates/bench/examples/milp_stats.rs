//! Ad-hoc MILP solver telemetry on the benchmark instances (not a bench).
use vmplace_bench::{milp_seed, small_instance};
use vmplace_lp::{MilpOptions, YieldLp};

fn main() {
    for &(hosts, services) in &[(3usize, 8usize), (4, 8), (4, 10), (4, 12)] {
        let seed = milp_seed(hosts, services);
        let inst = small_instance(hosts, services, seed);
        let ylp = YieldLp::build(&inst).unwrap();
        let ints = ylp.integer_vars();
        let t = std::time::Instant::now();
        let r = vmplace_lp::solve_milp(ylp.lp(), &ints, &MilpOptions::default());
        println!(
            "{hosts}h_{services}s: {:?} nodes={} obj={:.6} simplex_iters={} ({:.1}/node) in {:.3}s",
            r.status,
            r.nodes,
            r.objective.unwrap_or(f64::NAN),
            r.simplex_iterations,
            r.simplex_iterations as f64 / r.nodes as f64,
            t.elapsed().as_secs_f64()
        );
        let f = &r.factor;
        println!(
            "          refactor={} warm_reuse={:.2} fill_nnz={} eta_folds={} snapshots={} eta_clones={} \
             ftran_sparsity={:.3} btran_sparse={}/{} btran_sparsity={:.3} batched_cols={}",
            f.refactorisations,
            f.warm_reuse_ratio(),
            f.fill_nnz,
            f.eta_folds,
            f.snapshots,
            f.snapshot_eta_clones,
            f.ftran_sparsity(),
            f.btran_sparse,
            f.btran_solves,
            f.btran_sparsity(),
            f.pricing_batched_cols
        );
    }
}
