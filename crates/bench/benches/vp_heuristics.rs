//! Individual vector-packing heuristics: a single `pack()` call at a fixed
//! yield, isolating heuristic cost from the binary search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::paper_instance;
use vmplace_core::vp::{
    BestFit, BinSort, FirstFit, ItemSort, PackingHeuristic, PermutationPack, SortOrder,
    VectorMetric, VpProblem,
};

fn bench_single_packs(c: &mut Criterion) {
    let mut group = c.benchmark_group("vp_pack");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let item = ItemSort(Some((VectorMetric::Max, SortOrder::Descending)));
    let bin = BinSort(Some((VectorMetric::Sum, SortOrder::Ascending)));
    for &services in &[100usize, 500] {
        let instance = paper_instance(services, 1);
        let vp = VpProblem::new(&instance, 0.4);
        let ff = FirstFit {
            item_sort: item,
            bin_sort: bin,
        };
        let bf = BestFit {
            item_sort: item,
            heterogeneous: true,
        };
        let pp = PermutationPack {
            item_sort: item,
            bin_sort: bin,
            window: usize::MAX,
            choose: false,
            heterogeneous: true,
        };
        group.bench_with_input(BenchmarkId::new("first_fit", services), &vp, |b, vp| {
            b.iter(|| ff.pack(vp))
        });
        group.bench_with_input(BenchmarkId::new("best_fit", services), &vp, |b, vp| {
            b.iter(|| bf.pack(vp))
        });
        group.bench_with_input(BenchmarkId::new("perm_pack", services), &vp, |b, vp| {
            b.iter(|| pp.pack(vp))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_packs);
criterion_main!(benches);
