//! Instance generation throughput (platform + workload + normalisations) —
//! the paper's sweeps mint >100k instances, so generation must be cheap
//! relative to the solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_sim::{Scenario, ScenarioConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(4));
    for &services in &[100usize, 500, 2000] {
        let scenario = Scenario::new(ScenarioConfig {
            hosts: if services == 2000 { 512 } else { 64 },
            services,
            cov: 0.5,
            memory_slack: 0.4,
            ..ScenarioConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("instance", services),
            &scenario,
            |b, sc| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    sc.instance(seed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
