//! Portfolio engine vs the sequential seed path.
//!
//! `seed_fold` replicates the pre-engine META* algorithm: one binary
//! search whose probe tries every roster member in order until one packs
//! (fresh `VpProblem` and scratch per probe, as the seed code allocated).
//! The `engine_*` entries run the same roster through the portfolio
//! engine — per-member searches with shared-incumbent pruning and
//! per-worker scratch — at 1 and 8 worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::{paper_instance, seed_fold};
use vmplace_core::{Algorithm, MetaVp, SolveCtx};

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    let instance = paper_instance(100, 1);
    for (label, meta) in [
        ("metavp", MetaVp::metavp()),
        ("metahvp", MetaVp::metahvp()),
        ("metahvp_light", MetaVp::metahvp_light()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("seed_fold", label),
            &instance,
            |b, inst| b.iter(|| seed_fold(&meta, inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("engine_t1", label),
            &instance,
            |b, inst| {
                let mut ctx = SolveCtx::new().with_threads(1);
                b.iter(|| meta.solve_with(inst, &mut ctx).map(|s| s.min_yield))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_t8", label),
            &instance,
            |b, inst| {
                let mut ctx = SolveCtx::new().with_threads(8);
                b.iter(|| meta.solve_with(inst, &mut ctx).map(|s| s.min_yield))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
