//! LP substrate: relaxation solves of the paper's MILP encoding (the inner
//! loop of RRND/RRNZ), full branch & bound solves (the warm-start path),
//! and the effect of presolve on encoding size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::{milp_seed, small_instance};
use vmplace_lp::{MilpOptions, SimplexOptions, YieldLp};

fn bench_relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_relaxation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for &(hosts, services) in &[(8usize, 16usize), (16, 32), (32, 50)] {
        let instance = small_instance(hosts, services, 3);
        if YieldLp::build(&instance).is_none() {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{hosts}h_{services}s")),
            &instance,
            |b, inst| {
                b.iter(|| {
                    let ylp = YieldLp::build(inst).unwrap();
                    ylp.solve_relaxed(&SimplexOptions::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    // Full branch & bound: thousands of node LP solves per call, the
    // workload the warm-started persistent solver targets.
    let mut group = c.benchmark_group("lp_milp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for &(hosts, services) in &[(3usize, 8usize), (4, 10), (4, 12)] {
        let seed = milp_seed(hosts, services);
        let instance = small_instance(hosts, services, seed);
        let Some(ylp) = YieldLp::build(&instance) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", format!("{hosts}h_{services}s")),
            &ylp,
            |b, ylp| b.iter(|| ylp.solve_exact(&MilpOptions::default())),
        );
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_encoding");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(4));
    let instance = small_instance(64, 100, 3);
    group.bench_function("build_with_presolve", |b| {
        b.iter(|| YieldLp::build(&instance))
    });
    group.finish();
}

criterion_group!(benches, bench_relaxation, bench_milp, bench_encoding);
criterion_main!(benches);
