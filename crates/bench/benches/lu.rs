//! Factorisation kernels: cold vs warm (partial-prefix) factorise, single
//! vs batched right-hand sides, and dense vs sparse-RHS transpose solves —
//! the per-node costs the warm partial refactorisation work targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_lp::lu::{SolveScratch, SparseLu};

const N: usize = 200;
/// Off-diagonal entries per column (besides the dominant diagonal).
const COL_NNZ: usize = 6;
const BATCH: usize = 8;

/// Deterministic sparse diagonally-dominant test matrix, stored densely for
/// trivial column extraction.
#[allow(clippy::needless_range_loop)] // `a[col][col]` / `a[row][col]` mirror matrix subscripts
fn test_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut a = vec![vec![0.0; n]; n];
    for col in 0..n {
        a[col][col] = 4.0 + rnd();
        for _ in 0..COL_NNZ {
            let row = (rnd() * n as f64) as usize % n;
            a[row][col] += rnd() - 0.5;
        }
    }
    a
}

fn column_of(a: &[Vec<f64>]) -> impl FnMut(usize, &mut Vec<(usize, f64)>) + '_ {
    move |j, buf| {
        for (row, col) in a.iter().enumerate() {
            if col[j] != 0.0 {
                buf.push((row, col[j]));
            }
        }
    }
}

fn bench_factorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factorize");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let a = test_matrix(N, 1);
    // A "basis change" touching only the trailing columns: the simplex
    // refactorisation pattern partial reuse exploits.
    let mut b = a.clone();
    for col in b.iter_mut().take(N).skip(N - N / 8) {
        for v in col.iter_mut() {
            *v *= 1.5;
        }
    }
    let prev = SparseLu::factorize(N, column_of(&a)).unwrap();
    group.bench_function("cold", |bch| {
        bch.iter(|| SparseLu::factorize(N, column_of(&b)).unwrap())
    });
    group.bench_with_input(
        BenchmarkId::new("warm_prefix", format!("keep_{}", N - N / 8)),
        &prev,
        |bch, prev| {
            bch.iter(|| SparseLu::refactorize_from(prev, N - N / 8, column_of(&b)).unwrap())
        },
    );
    group.finish();
}

fn bench_rhs_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_rhs");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let a = test_matrix(N, 2);
    let lu = SparseLu::factorize(N, column_of(&a)).unwrap();
    let rhs: Vec<Vec<f64>> = (0..BATCH)
        .map(|lane| (0..N).map(|i| ((i + lane) % 17) as f64 - 8.0).collect())
        .collect();

    group.bench_function(format!("solve_seq_x{BATCH}"), |bch| {
        let mut b = vec![0.0; N];
        let mut x = vec![0.0; N];
        bch.iter(|| {
            let mut acc = 0.0;
            for lane in rhs.iter() {
                b.copy_from_slice(lane);
                lu.solve(&mut b, &mut x);
                acc += x[0];
            }
            acc
        })
    });
    group.bench_function(format!("solve_batch_x{BATCH}"), |bch| {
        let mut b = vec![[0.0f64; BATCH]; N];
        let mut x = vec![[0.0f64; BATCH]; N];
        bch.iter(|| {
            for (i, row) in b.iter_mut().enumerate() {
                for (lane, slot) in row.iter_mut().enumerate() {
                    *slot = rhs[lane][i];
                }
            }
            lu.solve_batch(&mut b, &mut x);
            x[0][0]
        })
    });
    group.finish();
}

fn bench_btran(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_btran");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let a = test_matrix(N, 3);
    let lu = SparseLu::factorize(N, column_of(&a)).unwrap();
    // The pricing-loop shape: a right-hand side with 2 nonzeros.
    let pattern = [3usize, N / 2];

    group.bench_function("transpose_dense", |bch| {
        let mut cvec = vec![0.0; N];
        let mut y = vec![0.0; N];
        bch.iter(|| {
            cvec.fill(0.0);
            for &k in &pattern {
                cvec[k] = 1.0;
            }
            lu.solve_transpose(&mut cvec, &mut y);
            y[0]
        })
    });
    group.bench_function("transpose_sparse", |bch| {
        let mut cvec = vec![0.0; N];
        let mut y = vec![0.0; N];
        let mut y_pattern = Vec::new();
        let mut scratch = SolveScratch::default();
        bch.iter(|| {
            for &k in &pattern {
                cvec[k] = 1.0;
            }
            let r = {
                lu.solve_transpose_sparse(
                    &mut cvec,
                    &pattern,
                    &mut y,
                    &mut y_pattern,
                    &mut scratch,
                );
                y[pattern[0]]
            };
            for &k in &y_pattern {
                y[k] = 0.0;
            }
            y_pattern.clear();
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorize, bench_rhs_batching, bench_btran);
criterion_main!(benches);
