//! The §6 work-conserving redistribution and the per-node max–min yield
//! evaluator — both sit on the hot path of every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::paper_instance;
use vmplace_core::{Algorithm, MetaVp};
use vmplace_model::evaluate_placement;
use vmplace_sim::weighted_water_fill;

fn bench_water_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill");
    group
        .sample_size(100)
        .measurement_time(Duration::from_secs(4));
    for &n in &[8usize, 64, 512] {
        let demands: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.13).collect();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        group.bench_with_input(BenchmarkId::new("shares", n), &n, |b, _| {
            b.iter(|| weighted_water_fill(2.5, &demands, &weights))
        });
    }
    group.finish();
}

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("yield_evaluator");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(5));
    let light = MetaVp::metahvp_light();
    for &services in &[100usize, 500] {
        let instance = paper_instance(services, 0);
        let Some(sol) = light.solve(&instance) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new("evaluate_placement", services),
            &instance,
            |b, inst| b.iter(|| evaluate_placement(inst, &sol.placement)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_water_fill, bench_evaluator);
criterion_main!(benches);
