//! **Table 2**: algorithm run times at 100/250/500 services.
//!
//! The paper reports (Intel Xeon 2.27 GHz, 64 hosts, averaged over all
//! instances): RRNZ 4.9/45.8/270.2 s, METAGREEDY 0.014/0.061/0.154 s,
//! METAVP 0.14/0.56/1.7 s, METAHVP 0.51/1.9/6.4 s. Absolute numbers differ
//! on modern hardware; the shape claims are the orderings and the
//! METAHVP ≈ 3–4 × METAVP ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::{feasible_seed, milp_seed, paper_instance, small_instance};
use vmplace_core::{Algorithm, ExactMilp, MetaGreedy, MetaVp};

fn bench_metas(c: &mut Criterion) {
    let metagreedy = MetaGreedy;
    let metavp = MetaVp::metavp();
    let metahvp = MetaVp::metahvp();
    let light = MetaVp::metahvp_light();

    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for &services in &[100usize, 250, 500] {
        let instance = paper_instance(services, feasible_seed(services));
        group.bench_with_input(
            BenchmarkId::new("METAGREEDY", services),
            &instance,
            |b, inst| b.iter(|| metagreedy.solve(inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("METAVP", services),
            &instance,
            |b, inst| b.iter(|| metavp.solve(inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("METAHVP", services),
            &instance,
            |b, inst| b.iter(|| metahvp.solve(inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("METAHVPLIGHT", services),
            &instance,
            |b, inst| b.iter(|| light.solve(inst)),
        );
    }
    group.finish();
}

fn bench_exact_milp(c: &mut Criterion) {
    // The exact MILP row of Table 2 is intractable at the paper's 64-host
    // scale, so it is tracked at reduced sizes: each call is a full branch &
    // bound run (hundreds to thousands of node LP solves).
    let exact = ExactMilp::default();
    let mut group = c.benchmark_group("table2_milp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for &services in &[8usize, 10, 12] {
        let instance = small_instance(4, services, milp_seed(4, services));
        group.bench_with_input(
            BenchmarkId::new("EXACT_MILP", services),
            &instance,
            |b, inst| b.iter(|| exact.solve(inst)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_metas, bench_exact_milp);
criterion_main!(benches);
