//! Network front-end overhead: a loopback server-mediated replay against
//! the in-process pool it fronts, and the response cache against real
//! re-solves.
//!
//! The wire adds parse + frame + two socket hops per request; on solver
//! traffic (milliseconds per request) that overhead must disappear into
//! the noise — `BENCH_net.json` (see the `net_stats` example) quantifies
//! it across a connections × workers grid.

use criterion::{criterion_group, criterion_main, Criterion};
use vmplace_model::{AllocRequest, RequestKind};
use vmplace_net::wire::PROTOCOL_V2;
use vmplace_net::{codec, Client, IoBackend, Server, ServerConfig};
use vmplace_service::trace_io::{write_request, BlockAssembler};
use vmplace_service::{ServiceConfig, SolverPool};
use vmplace_sim::{ScenarioConfig, TraceConfig};

fn trace_config() -> TraceConfig {
    TraceConfig {
        streams: 3,
        requests: 24,
        scenario: ScenarioConfig {
            hosts: 16,
            services: 40,
            cov: 0.5,
            memory_slack: 0.6,
            ..ScenarioConfig::default()
        },
        ..TraceConfig::default()
    }
}

/// One `New` followed by identical `Resolve`s: the response cache's
/// target workload.
fn resolve_burst_trace(resolves: usize) -> Vec<AllocRequest> {
    let mut trace = trace_config().generate(2);
    trace.truncate(1); // the stream-0 opening New
    for i in 0..resolves as u64 {
        trace.push(AllocRequest {
            id: 1 + i,
            stream: 0,
            kind: RequestKind::Resolve,
            budget: None,
            policy: Default::default(),
        });
    }
    trace
}

fn bench_net(c: &mut Criterion) {
    let trace = trace_config().generate(1);
    let mut group = c.benchmark_group("net_replay");

    let config = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };

    let mut pool = SolverPool::new(&config);
    group.bench_function("inprocess_pool", |b| b.iter(|| pool.replay(trace.clone())));

    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            service: config.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    group.bench_function("loopback_threads_v1", |b| {
        b.iter(|| client.replay(&trace).expect("remote replay"))
    });
    drop(client);
    drop(server);

    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            service: config.clone(),
            io: IoBackend::Events,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect_with(server.local_addr(), PROTOCOL_V2).expect("connect");
    group.bench_function("loopback_events_v2", |b| {
        b.iter(|| client.replay(&trace).expect("remote replay"))
    });
    drop(client);
    drop(server);

    // Codec alone, no sockets: one instance-carrying New body through
    // each wire generation's encode and decode path.
    let request = trace
        .iter()
        .find(|r| matches!(r.kind, RequestKind::New(_)))
        .expect("trace opens with a New")
        .clone();
    let mut text = String::new();
    write_request(&mut text, &request);
    group.bench_function("codec_v1_text_encode", |b| {
        b.iter(|| {
            let mut s = String::with_capacity(text.len());
            write_request(&mut s, &request);
            s
        })
    });
    group.bench_function("codec_v1_text_decode", |b| {
        b.iter(|| {
            let mut asm = BlockAssembler::new();
            let mut out = None;
            for (i, line) in text.lines().enumerate() {
                if let Some(req) = asm.feed(i + 1, line).expect("v1 parse") {
                    out = Some(req);
                }
            }
            out
        })
    });
    let mut bin = Vec::new();
    codec::encode_request(&mut bin, &request);
    let mut head = [0u8; codec::HEADER_LEN];
    head.copy_from_slice(&bin[..codec::HEADER_LEN]);
    let (kind, _len) = codec::parse_header(&head);
    let body = bin[codec::HEADER_LEN..].to_vec();
    group.bench_function("codec_v2_binary_encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bin.len());
            codec::encode_request(&mut out, &request);
            out
        })
    });
    group.bench_function("codec_v2_binary_decode", |b| {
        b.iter(|| codec::decode_client_frame(kind, &body).expect("v2 decode"))
    });

    let bursts = resolve_burst_trace(16);
    let mut cached_pool = SolverPool::new(&config);
    group.bench_function("resolves_cached", |b| {
        b.iter(|| cached_pool.replay(bursts.clone()))
    });
    let mut uncached_pool = SolverPool::new(&ServiceConfig {
        response_cache: false,
        ..config
    });
    group.bench_function("resolves_uncached", |b| {
        b.iter(|| uncached_pool.replay(bursts.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
