//! Network front-end overhead: a loopback server-mediated replay against
//! the in-process pool it fronts, and the response cache against real
//! re-solves.
//!
//! The wire adds parse + frame + two socket hops per request; on solver
//! traffic (milliseconds per request) that overhead must disappear into
//! the noise — `BENCH_net.json` (see the `net_stats` example) quantifies
//! it across a connections × workers grid.

use criterion::{criterion_group, criterion_main, Criterion};
use vmplace_model::{AllocRequest, RequestKind};
use vmplace_net::{Client, Server, ServerConfig};
use vmplace_service::{ServiceConfig, SolverPool};
use vmplace_sim::{ScenarioConfig, TraceConfig};

fn trace_config() -> TraceConfig {
    TraceConfig {
        streams: 3,
        requests: 24,
        scenario: ScenarioConfig {
            hosts: 16,
            services: 40,
            cov: 0.5,
            memory_slack: 0.6,
            ..ScenarioConfig::default()
        },
        ..TraceConfig::default()
    }
}

/// One `New` followed by identical `Resolve`s: the response cache's
/// target workload.
fn resolve_burst_trace(resolves: usize) -> Vec<AllocRequest> {
    let mut trace = trace_config().generate(2);
    trace.truncate(1); // the stream-0 opening New
    for i in 0..resolves as u64 {
        trace.push(AllocRequest {
            id: 1 + i,
            stream: 0,
            kind: RequestKind::Resolve,
            budget: None,
            policy: Default::default(),
        });
    }
    trace
}

fn bench_net(c: &mut Criterion) {
    let trace = trace_config().generate(1);
    let mut group = c.benchmark_group("net_replay");

    let config = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };

    let mut pool = SolverPool::new(&config);
    group.bench_function("inprocess_pool", |b| b.iter(|| pool.replay(trace.clone())));

    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            service: config.clone(),
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    group.bench_function("loopback_server", |b| {
        b.iter(|| client.replay(&trace).expect("remote replay"))
    });

    let bursts = resolve_burst_trace(16);
    let mut cached_pool = SolverPool::new(&config);
    group.bench_function("resolves_cached", |b| {
        b.iter(|| cached_pool.replay(bursts.clone()))
    });
    let mut uncached_pool = SolverPool::new(&ServiceConfig {
        response_cache: false,
        ..config
    });
    group.bench_function("resolves_uncached", |b| {
        b.iter(|| uncached_pool.replay(bursts.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
