//! Allocation-service throughput: pooled warm replay vs the cold one-shot
//! reference on a generated request trace.
//!
//! The pooled path keeps resident workers alive across the whole trace
//! (roster, packing scratch and per-stream warm yields amortised); the
//! one-shot path rebuilds everything per request — what a caller without
//! `vmplace-service` would do. `BENCH_service.json` (see the
//! `service_stats` example) records the same comparison across trace
//! sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use vmplace_service::{replay_oneshot, ServiceConfig, SolverPool};
use vmplace_sim::{ScenarioConfig, TraceConfig};

fn trace_config() -> TraceConfig {
    TraceConfig {
        streams: 3,
        requests: 24,
        scenario: ScenarioConfig {
            hosts: 16,
            services: 40,
            cov: 0.5,
            memory_slack: 0.6,
            ..ScenarioConfig::default()
        },
        ..TraceConfig::default()
    }
}

fn bench_service(c: &mut Criterion) {
    let trace = trace_config().generate(1);
    let mut group = c.benchmark_group("service_replay");

    let warm = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let mut pool = SolverPool::new(&warm);
    group.bench_function("pooled_warm", |b| b.iter(|| pool.replay(trace.clone())));

    let cold = ServiceConfig {
        workers: 1,
        warm_start: false,
        ordered_roster: false,
        ..ServiceConfig::default()
    };
    group.bench_function("oneshot_cold", |b| {
        b.iter(|| replay_oneshot(trace.clone(), &cold))
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
