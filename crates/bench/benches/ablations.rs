//! Ablations of the design choices called out in `DESIGN.md` §7:
//!
//! * **METAHVPLIGHT subset** (§5.1 of the paper): full 253-strategy roster
//!   vs the 60-strategy subset on the same instance — the paper claims a
//!   ~10× speed-up at essentially equal quality;
//! * **binary-search resolution**: the paper's 1e-4 vs coarser/finer
//!   settings — time grows logarithmically, quality saturates;
//! * **Permutation-Pack window**: `w = 1` vs full `w = D`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vmplace_bench::{feasible_seed, paper_instance};
use vmplace_core::vp::{
    binary_search_yield, BinSort, ItemSort, PermutationPack, SortOrder, VectorMetric,
};
use vmplace_core::{Algorithm, MetaVp};

fn bench_light_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_light_vs_full");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let full = MetaVp::metahvp();
    let light = MetaVp::metahvp_light();
    let instance = paper_instance(250, feasible_seed(250));
    group.bench_function("METAHVP_250", |b| b.iter(|| full.solve(&instance)));
    group.bench_function("METAHVPLIGHT_250", |b| b.iter(|| light.solve(&instance)));
    group.finish();
}

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bsearch_resolution");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let light = MetaVp::metahvp_light();
    let instance = paper_instance(250, feasible_seed(250));
    for &res in &[1e-2f64, 1e-4, 1e-6] {
        group.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, &res| {
            b.iter(|| binary_search_yield(&instance, &light, res))
        });
    }
    group.finish();
}

fn bench_pp_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pp_window");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let instance = paper_instance(500, feasible_seed(500));
    for &w in &[1usize, 2] {
        let pp = PermutationPack {
            item_sort: ItemSort(Some((VectorMetric::Max, SortOrder::Descending))),
            bin_sort: BinSort(Some((VectorMetric::Sum, SortOrder::Ascending))),
            window: w,
            choose: false,
            heterogeneous: true,
        };
        group.bench_with_input(BenchmarkId::new("window", w), &w, |b, _| {
            b.iter(|| binary_search_yield(&instance, &pp, 1e-4))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_light_vs_full,
    bench_resolution,
    bench_pp_window
);
criterion_main!(benches);
