//! Request-scoped tracing: trace ids minted at admission and stage spans
//! recorded into latency histograms.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-wide trace id source (ids start at 1; 0 is reserved for "no
/// trace").
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Identity of one request's trace, minted when the request is admitted
/// at the front door and carried alongside it through the stack. The
/// network layer keys its in-flight table by the request's namespaced id
/// and stores the `TraceId` next to the admission timestamp, so a
/// response (or a dropped response) can always be attributed back to its
/// admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints a fresh process-unique id.
    pub fn mint() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A stage timer: started when the stage begins, it records the elapsed
/// time into its histogram when dropped (or explicitly
/// [`finish`](Span::finish)ed) — an early return cannot leave the clock
/// running.
///
/// ```
/// let registry = vmplace_obs::Registry::new();
/// let solve_us = registry.histogram("service.solve_us");
/// {
///     let _span = vmplace_obs::Span::start(&solve_us);
///     // … the stage's work …
/// } // recorded here
/// assert_eq!(solve_us.snapshot().count, 1);
/// ```
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Starts timing a stage recorded into `hist`.
    pub fn start(hist: &Histogram) -> Span {
        Span {
            hist: hist.clone(),
            start: Instant::now(),
        }
    }

    /// Stops the clock and records now (the drop would do the same; the
    /// explicit spelling marks the measurement boundary in code).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert!(a.0 > 0 && b.0 > 0);
        assert!(format!("{a}").starts_with("0x"));
    }

    #[test]
    fn span_records_on_drop_and_on_finish() {
        let r = Registry::new();
        let h = r.histogram("stage_us");
        {
            let _s = Span::start(&h);
        }
        Span::start(&h).finish();
        assert_eq!(h.snapshot().count, 2);
    }
}
