//! Observability for the vmplace stack: a process-wide registry of named
//! lock-free counters, gauges and log-bucketed latency histograms, plus
//! request-scoped trace spans — `std`-only, with **zero allocation on the
//! record path**.
//!
//! ## Design
//!
//! The registry splits cleanly into a cold path and a hot path:
//!
//! * **Registration** (`Registry::counter` / `gauge` / `histogram`) takes
//!   a mutex, interns the metric name once and hands back a cheap
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handle — an `Arc` around the
//!   metric's atomics. Handles for the same name share the same atomics,
//!   so every worker thread that asks for `"service.solve_us"` records
//!   into one histogram.
//! * **Recording** (`Counter::inc`, `Histogram::record`, …) touches only
//!   those atomics with `Relaxed` ordering: no locks, no allocation, no
//!   branches beyond the bucket index — cheap enough to leave enabled in
//!   production (the loopback benchmark grid cannot tell it apart from
//!   noise).
//! * **Snapshots** ([`Registry::snapshot`]) re-take the registration
//!   mutex, read every atomic and return an owned [`Snapshot`] that
//!   renders to JSON. Recording never blocks on a snapshot and vice
//!   versa; counters are monotone across snapshots and histograms are
//!   never torn (each bucket is read at least as late as the previous
//!   snapshot read it — see the concurrency test).
//!
//! Components that publish values they already maintain (a worker queue
//! depth, a cache's internal hit counter) register **readers** instead
//! ([`Registry::counter_reader`] / [`Registry::gauge_reader`]): a closure
//! polled at snapshot time, so the owning data structure stays the single
//! source of truth.
//!
//! ## Spans
//!
//! A request's trace starts with a [`TraceId`] minted at admission (the
//! network front door) and correlates the per-stage timings recorded as
//! the request moves `net → service → engine`: queue wait, cache lookup,
//! repair, solve, encode/write. Stages are timed with [`Span`] guards
//! that record their elapsed time into a stage histogram on drop — the
//! stage cannot forget to stop its clock on an early return.
//!
//! Everything here is strictly **off the result path**: recording (or
//! not recording) a metric never changes a solver input, an ordering
//! decision or a wire byte, so differential suites pass bit-for-bit with
//! metrics on or off.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod host;
pub mod json;
mod metrics;
mod span;

pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot};
pub use span::{Span, TraceId};
