//! Host-capability detection shared by everything that reports machine
//! context next to its numbers (the stats examples, bench JSON, the
//! `stats` wire verb).

/// Effective CPU parallelism of this process: what
/// `std::thread::available_parallelism` reports (which honours cgroup
/// quotas and the CPU affinity mask on Linux), cross-checked against the
/// affinity mask in `/proc/self/status` (`Cpus_allowed_list`) where
/// available — the larger lie wins, the smaller truth is reported.
///
/// Every surface that publishes thread counts (bench JSON, the stats
/// examples, the live `stats` snapshot) reports this one value, so a
/// single-core container can no longer silently publish `t8 ≈ t1` rows
/// as if they demonstrated (absent) multicore scaling.
pub fn effective_parallelism() -> usize {
    let advertised = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let affinity = affinity_mask_cpus().unwrap_or(advertised);
    advertised.min(affinity).max(1)
}

/// CPUs in this process's affinity mask, from `/proc/self/status`'s
/// `Cpus_allowed_list` line (e.g. `0-3,8` → 5). `None` off Linux or when
/// the file is unreadable.
fn affinity_mask_cpus() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let list = status
        .lines()
        .find_map(|l| l.strip_prefix("Cpus_allowed_list:"))?
        .trim();
    let mut count = 0usize;
    for part in list.split(',') {
        match part.split_once('-') {
            Some((a, b)) => {
                let (a, b): (usize, usize) = (a.trim().parse().ok()?, b.trim().parse().ok()?);
                count += b.checked_sub(a)? + 1;
            }
            None => {
                let _: usize = part.trim().parse().ok()?;
                count += 1;
            }
        }
    }
    Some(count.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_parallelism_is_sane() {
        let eff = effective_parallelism();
        let advertised = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(eff >= 1);
        assert!(
            eff <= advertised,
            "effective {eff} > advertised {advertised}"
        );
    }
}
