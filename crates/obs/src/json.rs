//! A small recursive-descent JSON reader — just enough for the tools
//! that consume a [`Snapshot`](crate::Snapshot)'s rendering (`vmplace
//! top`, the round-trip tests) without pulling a serialization crate
//! into an otherwise dependency-free workspace.
//!
//! It accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) and rejects trailing garbage. It is a
//! *reader*, not a validator of every corner of RFC 8259 — good enough
//! for machine-generated snapshots, which is all it is fed.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`; snapshot integers stay exact below
    /// 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON value (surrounding whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at offset {pos}",
            char::from(b),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by the snapshot
                        // renderer; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // boundaries are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_snapshot_shapes() {
        let v = Json::parse(
            r#"{"counters":{"net.requests":42},"gauges":{},"histograms":{"lat":{"count":2,"p50_us":15}},"derived":{"ratio":0.5},"list":[1,-2.5,true,null,"x\n"]}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("net.requests"))
                .and_then(|n| n.as_u64()),
            Some(42)
        );
        assert_eq!(
            v.get("gauges").and_then(|g| g.members()).map(<[_]>::len),
            Some(0)
        );
        assert_eq!(
            v.get("derived")
                .and_then(|d| d.get("ratio"))
                .and_then(|n| n.as_f64()),
            Some(0.5)
        );
        let Some(Json::Arr(items)) = v.get("list") else {
            panic!("list");
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[3], Json::Null);
        assert_eq!(items[4].as_str(), Some("x\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"open",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip_through_the_renderer() {
        let mut s = String::new();
        crate::metrics::push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
