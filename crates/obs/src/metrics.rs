//! The metrics registry: named lock-free counters, gauges and
//! log-bucketed latency histograms, snapshotted to JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A snapshot-time reader: a closure polled when the registry is
/// snapshotted, for values some other structure already maintains.
type Reader = Box<dyn Fn() -> u64 + Send + Sync>;

/// A monotone event counter. Handles are cheap clones sharing one atomic;
/// recording is a single `Relaxed` `fetch_add`.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (queue depth, open connections). Unlike a
/// [`Counter`] it moves both ways.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (callers keep add/sub balanced; the gauge does not
    /// guard against underflow).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of logarithmic buckets: bucket `i ≥ 1` holds values `v` (in
/// microseconds) with `2^(i-1) ≤ v < 2^i`; bucket 0 holds `v == 0`. 64
/// buckets cover the full `u64` range.
const BUCKETS: usize = 64;

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values, µs (for the mean).
    sum_us: AtomicU64,
    /// Largest recorded value, µs (exact — quantile estimates are capped
    /// by it).
    max_us: AtomicU64,
}

/// A latency histogram with power-of-two buckets and atomic counts.
///
/// Recording is two `Relaxed` atomic ops plus a `fetch_max` — no locks,
/// no allocation. Quantiles are derived at snapshot time from the bucket
/// counts: an estimate errs by at most one bucket (a factor of two),
/// which is the right resolution for latency distributions spanning
/// nanoseconds to seconds; `max` is exact. The total count is the sum of
/// the buckets, so a snapshot can never report a count its buckets do
/// not account for.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one duration (truncated to whole microseconds).
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one value in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = bucket_index(us);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
        self.0.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Reads the histogram's current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        HistSnapshot {
            count: buckets.iter().sum(),
            sum_us: self.0.sum_us.load(Ordering::Relaxed),
            max_us: self.0.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Bucket for a value in µs: 0 stays in bucket 0, otherwise
/// `floor(log2(v)) + 1`.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i`, reported as the bucket's
/// representative value (the largest value the bucket can hold).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// An owned, consistent read of one [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Recorded samples (sum of the bucket counts).
    pub count: u64,
    /// Sum of recorded values, µs.
    pub sum_us: u64,
    /// Largest recorded value, µs (exact).
    pub max_us: u64,
    buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) in µs: the upper bound of the
    /// bucket holding the ranked sample, capped at the exact maximum.
    /// Zero when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean of the recorded values, µs (zero when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    counter_readers: BTreeMap<String, Reader>,
    gauge_readers: BTreeMap<String, Reader>,
}

/// A registry of named metrics.
///
/// One registry normally serves a whole server (the pool and the network
/// front door record into the same one, and the `stats` wire verb
/// snapshots it); tests create private registries for isolation. See the
/// crate docs for the cold-registration / hot-record split.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty registry behind an `Arc`, ready to share across the
    /// components of one server.
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    /// The counter named `name`, created on first use. Every handle for
    /// one name shares the same atomic.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers (or replaces) a snapshot-time reader reported among the
    /// counters — for monotone values some other structure already
    /// counts.
    pub fn counter_reader(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counter_readers.insert(name.to_string(), Box::new(f));
    }

    /// Registers (or replaces) a snapshot-time reader reported among the
    /// gauges — for instantaneous values some other structure already
    /// maintains.
    pub fn gauge_reader(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauge_readers.insert(name.to_string(), Box::new(f));
    }

    /// Reads every metric (polling the registered readers) into an owned
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        for (k, f) in &inner.counter_readers {
            counters.insert(k.clone(), f());
        }
        let mut gauges: BTreeMap<String, u64> = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        for (k, f) in &inner.gauge_readers {
            gauges.insert(k.clone(), f());
        }
        let histograms = inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            derived: BTreeMap::new(),
        }
    }
}

/// An owned point-in-time read of a [`Registry`], renderable as JSON.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Caller-computed derived values (ratios and the like) carried into
    /// the JSON rendering — see [`Snapshot::derive`].
    pub derived: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Adds a derived value (rendered in the snapshot's `"derived"`
    /// section). Non-finite values are dropped — JSON cannot carry them.
    pub fn derive(&mut self, name: &str, value: f64) {
        if value.is_finite() {
            self.derived.insert(name.to_string(), value);
        }
    }

    /// The sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Renders the snapshot as a single-line JSON object with four
    /// sections: `counters` and `gauges` (name → integer), `histograms`
    /// (name → `{count, mean_us, p50_us, p90_us, p99_us, max_us}`) and
    /// `derived` (name → float). Keys are sorted, so equal states render
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                h.count,
                h.mean_us(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max_us,
            );
        }
        out.push_str("},\"derived\":{");
        for (i, (k, v)) in self.derived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            // Finite by construction (`derive` drops the rest); Rust's
            // shortest round-trip float formatting is valid JSON for
            // finite values except that it can omit a fractional part,
            // which JSON also allows.
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}");
        out
    }
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        let _ = write!(out, ":{v}");
    }
}

/// Appends `s` as a JSON string literal (metric names are plain
/// identifiers, but escape correctly anyway).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Buckets partition: every value's bucket upper bound is ≥ it,
        // and the previous bucket's is < it.
        for v in [1u64, 2, 3, 7, 8, 100, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "v={v} i={i}");
            assert!(bucket_upper(i - 1) < v, "v={v} i={i}");
        }
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max_us, 5000);
        // p50 falls in the bucket of the 5th sample (50 → bucket [32,64)),
        // reported as its upper bound.
        assert_eq!(s.quantile(0.5), 63);
        // p99 lands on the outlier; the estimate is capped by the exact max.
        assert_eq!(s.quantile(0.99), 5000);
        assert_eq!(s.quantile(1.0), 5000);
        assert!(s.mean_us() >= 500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.max_us, s.mean_us()), (0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn handles_share_one_atomic_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        let g = r.gauge("d");
        g.set(5);
        g.sub(2);
        assert_eq!(r.gauge("d").get(), 3);
    }

    #[test]
    fn snapshot_polls_readers() {
        let r = Registry::new();
        let v = Arc::new(AtomicU64::new(7));
        let v2 = v.clone();
        r.counter_reader("ext.count", move || v2.load(Ordering::Relaxed));
        r.gauge_reader("ext.depth", || 3);
        let s = r.snapshot();
        assert_eq!(s.counters["ext.count"], 7);
        assert_eq!(s.gauges["ext.depth"], 3);
        v.store(9, Ordering::Relaxed);
        assert_eq!(r.snapshot().counters["ext.count"], 9);
    }

    #[test]
    fn json_snapshot_is_sorted_and_parseable() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.gauge("depth").set(4);
        r.histogram("lat_us").record_us(100);
        let mut s = r.snapshot();
        s.derive("ratio", 0.25);
        s.derive("bad", f64::NAN); // dropped
        let json = s.to_json();
        assert!(json.find("a.one").unwrap() < json.find("b.two").unwrap());
        assert!(!json.contains("bad"));
        let v = crate::json::Json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.one"))
                .and_then(|n| n.as_u64()),
            Some(1)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|c| c.get("depth"))
                .and_then(|n| n.as_u64()),
            Some(4)
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("lat_us"))
            .expect("hist");
        assert_eq!(hist.get("count").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(
            v.get("derived")
                .and_then(|d| d.get("ratio"))
                .and_then(|n| n.as_f64()),
            Some(0.25)
        );
    }

    /// The satellite consistency contract: concurrent recorders vs a
    /// snapshot reader — counters monotone, histograms never torn (count
    /// always equals the bucket sum; quantiles bracketed by max).
    #[test]
    fn concurrent_recorders_never_tear_a_snapshot() {
        let r = Arc::new(Registry::new());
        let stop = Arc::new(AtomicU64::new(0));
        const PER_THREAD: u64 = 20_000;
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let r = r.clone();
            writers.push(std::thread::spawn(move || {
                let c = r.counter("events");
                let h = r.histogram("lat_us");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record_us((t * 37 + i) % 900);
                }
            }));
        }
        let reader = {
            let (r, stop) = (r.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut last_count = 0u64;
                let mut last_hist = 0u64;
                let mut iterations = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let s = r.snapshot();
                    let c = s.counters.get("events").copied().unwrap_or(0);
                    assert!(
                        c >= last_count,
                        "counter went backwards: {last_count} → {c}"
                    );
                    last_count = c;
                    if let Some(h) = s.histograms.get("lat_us") {
                        // count is the bucket sum by construction — but it
                        // must also be monotone across snapshots, and the
                        // quantile estimates bounded by the exact max.
                        assert!(h.count >= last_hist, "histogram shrank");
                        last_hist = h.count;
                        assert!(h.quantile(0.5) <= h.quantile(0.99).max(h.max_us));
                        assert!(h.quantile(0.99) <= h.max_us.max(1023));
                    }
                    iterations += 1;
                }
                iterations
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
        let s = r.snapshot();
        assert_eq!(s.counters["events"], 4 * PER_THREAD);
        assert_eq!(s.histograms["lat_us"].count, 4 * PER_THREAD);
    }
}
