//! Allocation-service request/response types and workload deltas.
//!
//! A long-lived allocator is invoked repeatedly as workloads arrive and
//! change; these types describe one such invocation. A *stream* is a
//! sequence of requests against one evolving instance: it opens with a
//! full [`RequestKind::New`] instance, evolves through
//! [`RequestKind::Delta`] mutations (service arrival, departure,
//! demand change) and can be re-solved in place with
//! [`RequestKind::Resolve`] (e.g. under a tightened wall-clock budget).
//! Requests in different streams are independent; requests within a
//! stream must be applied in order.

use crate::{ModelError, Placement, ProblemInstance, Service, Solution};
use std::time::Duration;

/// A change to the service set of a running instance.
///
/// `scale_need` and `remove` index services of the *current* instance
/// (before this delta); removals are applied as a set, then surviving
/// services keep their relative order and `add` appends at the end. This
/// keeps the service list of a delta chain identical to the list obtained
/// by building the final instance from scratch in the same order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadDelta {
    /// Multiply the fluid needs (elementary and aggregate, every
    /// dimension) of service `j` by `factor` — a demand change.
    pub scale_need: Vec<(usize, f64)>,
    /// Services departing (indices into the current instance).
    pub remove: Vec<usize>,
    /// Services arriving (appended after removals).
    pub add: Vec<Service>,
}

impl WorkloadDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.scale_need.is_empty() && self.remove.is_empty() && self.add.is_empty()
    }

    /// Carries a placement of the *pre-delta* instance across this delta:
    /// surviving services keep their node under the post-delta index
    /// space, arrivals appear unplaced.
    ///
    /// This is the starting point of the incremental repair path: scaling
    /// needs never touches rigid requirements and removals only free
    /// capacity, so every surviving assignment remains rigidly feasible —
    /// only the arrivals need placing and only the yields shift.
    ///
    /// `prev` must cover the pre-delta service count exactly; removal
    /// indices beyond it are ignored (callers validate deltas through
    /// [`ProblemInstance::apply_delta`] first).
    pub fn remap_placement(&self, prev: &Placement) -> Placement {
        let mut keep = vec![true; prev.len()];
        for &j in &self.remove {
            if j < keep.len() {
                keep[j] = false;
            }
        }
        let mut node_of = Vec::with_capacity(prev.len() + self.add.len());
        for (j, k) in keep.iter().enumerate() {
            if *k {
                node_of.push(prev.node_of(j));
            }
        }
        node_of.extend(std::iter::repeat(None).take(self.add.len()));
        Placement::from_assignment(node_of)
    }
}

impl ProblemInstance {
    /// Applies a workload delta, producing the successor instance.
    ///
    /// Only the affected services are rebuilt and re-validated — the
    /// platform and every untouched service are reused as-is, so applying
    /// a delta is `O(changed + J)` rather than a full instance
    /// construction with `O((H + J) · D)` validation.
    ///
    /// Within one delta the application order is **scale, then remove,
    /// then add**: `scale_need` and `remove` index the pre-delta service
    /// list, survivors keep their relative order and arrivals append at
    /// the end.
    ///
    /// ```
    /// use vmplace_model::{Node, ProblemInstance, Service, WorkloadDelta};
    ///
    /// let inst = ProblemInstance::new(
    ///     vec![Node::multicore(2, 1.0, 1.0)],
    ///     vec![
    ///         Service::rigid(vec![0.2, 0.2], vec![0.2, 0.2]),
    ///         Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1]),
    ///     ],
    /// )
    /// .unwrap();
    /// // Service 0 departs, one service arrives: still two services, and
    /// // the old service 1 is now service 0.
    /// let next = inst
    ///     .apply_delta(&WorkloadDelta {
    ///         remove: vec![0],
    ///         add: vec![Service::rigid(vec![0.3, 0.3], vec![0.3, 0.3])],
    ///         ..WorkloadDelta::default()
    ///     })
    ///     .unwrap();
    /// assert_eq!(next.num_services(), 2);
    /// assert_eq!(&next.services()[0], &inst.services()[1]);
    /// ```
    pub fn apply_delta(&self, delta: &WorkloadDelta) -> Result<ProblemInstance, ModelError> {
        let j_count = self.num_services();
        let mut services: Vec<Service> = self.services().to_vec();

        for &(j, factor) in &delta.scale_need {
            if j >= j_count {
                return Err(ModelError::ServiceOutOfRange {
                    service: j,
                    len: j_count,
                });
            }
            if !(factor.is_finite() && factor >= 0.0) {
                return Err(ModelError::InvalidValue {
                    what: "need scale factor",
                    value: factor,
                });
            }
            let s = &mut services[j];
            s.need_elem.scale_assign(factor);
            s.need_agg.scale_assign(factor);
            s.validate(&j.to_string())?;
        }

        if !delta.remove.is_empty() {
            let mut keep = vec![true; j_count];
            for &j in &delta.remove {
                if j >= j_count {
                    return Err(ModelError::ServiceOutOfRange {
                        service: j,
                        len: j_count,
                    });
                }
                keep[j] = false;
            }
            let mut idx = 0;
            services.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
        }

        for (k, s) in delta.add.iter().enumerate() {
            if s.dims() != self.dims() {
                return Err(ModelError::DimensionMismatch {
                    expected: self.dims(),
                    actual: s.dims(),
                });
            }
            s.validate(&format!("+{k}"))?;
            services.push(s.clone());
        }

        if services.is_empty() {
            return Err(ModelError::EmptyInstance);
        }
        Ok(self.with_same_platform(services))
    }
}

/// What an [`AllocRequest`] asks the allocator to do.
#[derive(Clone, Debug)]
pub enum RequestKind {
    /// Open (or replace) the stream's instance and solve it from scratch.
    New(ProblemInstance),
    /// Mutate the stream's current instance and re-solve warm.
    Delta(WorkloadDelta),
    /// Re-solve the stream's current instance unchanged (typically with a
    /// different wall-clock budget).
    Resolve,
}

/// How the allocator may answer a request — the service's semantics
/// contract, chosen per request.
///
/// * [`ResponsePolicy::Exact`] (the default) always runs the full
///   deterministic solve: replies are bit-for-bit identical to the
///   one-shot reference path, whatever the worker count.
/// * [`ResponsePolicy::Repaired`] trades a bounded yield gap for
///   placement stability: on a delta the service keeps the previous
///   placement, places only the arrivals and migrates at most
///   `max_migrations` surviving services. The repaired answer is accepted
///   only when its minimum yield provably sits within `tolerance` of the
///   best any solver could achieve (an admissible upper bound is compared
///   against, so the guarantee holds versus the exact optimum, not just
///   the previous yield); otherwise the service silently falls back to
///   the full solve. On `New` requests — where no previous placement
///   exists — `Repaired` behaves exactly like `Exact`.
///
/// The policy travels on the wire as `exact` or
/// `repaired:<tolerance>:<max_migrations>`; requests omitting it are
/// `Exact`, which keeps v1 traces and old clients byte-compatible.
///
/// ```
/// use vmplace_model::ResponsePolicy;
///
/// assert_eq!(ResponsePolicy::parse("exact"), Some(ResponsePolicy::Exact));
/// let p = ResponsePolicy::parse("repaired:0.05:3").unwrap();
/// assert_eq!(
///     p,
///     ResponsePolicy::Repaired { tolerance: 0.05, max_migrations: 3 }
/// );
/// // The wire spelling round-trips.
/// assert_eq!(ResponsePolicy::parse(&p.wire_name()), Some(p));
/// assert_eq!(ResponsePolicy::default(), ResponsePolicy::Exact);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ResponsePolicy {
    /// Full deterministic re-solve on every request (the default).
    #[default]
    Exact,
    /// Keep the current placement and repair incrementally; fall back to
    /// the full solve when the repair is infeasible, migrates too much or
    /// cannot be proven close enough to optimal.
    Repaired {
        /// Largest acceptable gap between the repaired minimum yield and
        /// an admissible upper bound on the optimal minimum yield.
        tolerance: f64,
        /// Most surviving services allowed to change nodes (arrivals are
        /// placed for free; they had no node to migrate from).
        max_migrations: usize,
    },
}

impl ResponsePolicy {
    /// Default tolerance when the CLI spelling `repaired` carries no
    /// parameters.
    pub const DEFAULT_TOLERANCE: f64 = 0.05;
    /// Default migration budget when the CLI spelling `repaired` carries
    /// no parameters.
    pub const DEFAULT_MAX_MIGRATIONS: usize = 4;

    /// Parses the wire/CLI spelling: `exact`, `repaired` (defaults), or
    /// `repaired:<tolerance>:<max_migrations>`.
    pub fn parse(s: &str) -> Option<ResponsePolicy> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("exact") {
            return Some(ResponsePolicy::Exact);
        }
        let rest = if s.eq_ignore_ascii_case("repaired") {
            ""
        } else {
            let rest = s.strip_prefix("repaired:")?;
            rest
        };
        if rest.is_empty() {
            return Some(ResponsePolicy::Repaired {
                tolerance: Self::DEFAULT_TOLERANCE,
                max_migrations: Self::DEFAULT_MAX_MIGRATIONS,
            });
        }
        let (tol, mig) = rest.split_once(':')?;
        let tolerance: f64 = tol.parse().ok()?;
        let max_migrations: usize = mig.parse().ok()?;
        if !(tolerance.is_finite() && tolerance >= 0.0) {
            return None;
        }
        Some(ResponsePolicy::Repaired {
            tolerance,
            max_migrations,
        })
    }

    /// The policy's spelling in traces and the `vmplace-net` wire protocol
    /// (the inverse of [`ResponsePolicy::parse`]; floats use Rust's
    /// shortest round-trip `Display`, so the spelling is bit-exact).
    pub fn wire_name(&self) -> String {
        match self {
            ResponsePolicy::Exact => "exact".to_string(),
            ResponsePolicy::Repaired {
                tolerance,
                max_migrations,
            } => format!("repaired:{tolerance}:{max_migrations}"),
        }
    }

    /// Whether this is the exact (default) policy.
    pub fn is_exact(&self) -> bool {
        matches!(self, ResponsePolicy::Exact)
    }
}

/// One unit of work for the allocation service.
#[derive(Clone, Debug)]
pub struct AllocRequest {
    /// Caller-chosen identifier echoed in the response (unique per trace).
    pub id: u64,
    /// Stream this request belongs to (requests within a stream are
    /// processed in submission order; streams are independent).
    pub stream: u64,
    /// The work itself.
    pub kind: RequestKind,
    /// Optional wall-clock budget for this solve (overrides the service
    /// default); the best feasible incumbent found in time is returned.
    pub budget: Option<Duration>,
    /// The answer-quality contract for this request (see
    /// [`ResponsePolicy`]).
    pub policy: ResponsePolicy,
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Solved to the algorithm's normal termination.
    Solved,
    /// Some rigid requirement cannot be satisfied.
    Infeasible,
    /// The wall-clock budget expired; `solution` carries the best feasible
    /// incumbent found in time, if any.
    TimedOut,
    /// The request was malformed (delta on an empty stream, index out of
    /// range, …) and no solve was attempted.
    Rejected,
    /// The solve crashed (a worker panic). The stream's server-side state
    /// was discarded; follow-up requests on it answer
    /// [`RequestOutcome::StaleStream`] until the client re-sends `New`.
    Failed,
    /// The service shed this request under load (queue full, or its
    /// budget had already expired on arrival) without solving it.
    /// [`AllocResponse::retry_after`] hints when to retry.
    Overloaded,
    /// The request addressed a stream whose state was discarded (after a
    /// failure or a shed mutation). Nothing was solved; the client
    /// recovers by re-sending `New` and replaying the stream.
    StaleStream,
}

impl RequestOutcome {
    /// The outcome's spelling in the `vmplace-net` wire protocol.
    pub fn wire_name(self) -> &'static str {
        match self {
            RequestOutcome::Solved => "solved",
            RequestOutcome::Infeasible => "infeasible",
            RequestOutcome::TimedOut => "timed-out",
            RequestOutcome::Rejected => "rejected",
            RequestOutcome::Failed => "failed",
            RequestOutcome::Overloaded => "overloaded",
            RequestOutcome::StaleStream => "stale-stream",
        }
    }

    /// Parses a wire spelling (the inverse of
    /// [`RequestOutcome::wire_name`]).
    pub fn from_wire(s: &str) -> Option<RequestOutcome> {
        match s {
            "solved" => Some(RequestOutcome::Solved),
            "infeasible" => Some(RequestOutcome::Infeasible),
            "timed-out" => Some(RequestOutcome::TimedOut),
            "rejected" => Some(RequestOutcome::Rejected),
            "failed" => Some(RequestOutcome::Failed),
            "overloaded" => Some(RequestOutcome::Overloaded),
            "stale-stream" => Some(RequestOutcome::StaleStream),
            _ => None,
        }
    }

    /// Whether a client may usefully retry a request that got this
    /// outcome ([`RequestOutcome::Failed`], [`RequestOutcome::Overloaded`]
    /// and [`RequestOutcome::StaleStream`] — the transient failure
    /// answers; deterministic outcomes would only repeat).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            RequestOutcome::Failed | RequestOutcome::Overloaded | RequestOutcome::StaleStream
        )
    }
}

/// The allocator's answer to one [`AllocRequest`].
#[derive(Clone, Debug)]
pub struct AllocResponse {
    /// Echo of [`AllocRequest::id`].
    pub id: u64,
    /// Echo of [`AllocRequest::stream`].
    pub stream: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// The placement and achieved yields, when one was found.
    pub solution: Option<Solution>,
    /// Label of the winning portfolio member, when the solve ran on the
    /// portfolio engine.
    pub winner: Option<String>,
    /// Total packing probes (or trials / B&B nodes) spent on the request.
    pub probes: u64,
    /// Wall-clock time spent solving this request.
    pub wall: Duration,
    /// Rejection detail for [`RequestOutcome::Rejected`].
    pub error: Option<String>,
    /// Whether this response was answered from the service's response
    /// cache (an identical re-solve of an unchanged instance). Cached
    /// responses are bit-for-bit equal to what the uncached solve would
    /// have produced — only `wall` (and this marker) differ.
    pub cached: bool,
    /// Number of surviving services the repair path moved to a different
    /// node. `Some` exactly when the response came from the incremental
    /// repair path of [`ResponsePolicy::Repaired`]; `None` for every full
    /// solve (including repair fallbacks), so old clients — which never
    /// request repair — never see the field on the wire.
    pub migrations: Option<u64>,
    /// For [`RequestOutcome::Overloaded`]: how long the shedding service
    /// suggests waiting before retrying (`retry-after-ms` on the wire).
    /// `None` on every other outcome, so old clients never see the
    /// attribute.
    pub retry_after: Option<Duration>,
}

impl AllocResponse {
    fn error_response(
        id: u64,
        stream: u64,
        outcome: RequestOutcome,
        error: String,
    ) -> AllocResponse {
        AllocResponse {
            id,
            stream,
            outcome,
            solution: None,
            winner: None,
            probes: 0,
            wall: Duration::ZERO,
            error: Some(error),
            cached: false,
            migrations: None,
            retry_after: None,
        }
    }

    /// A rejection response (no solve was attempted).
    pub fn rejected(id: u64, stream: u64, error: String) -> AllocResponse {
        Self::error_response(id, stream, RequestOutcome::Rejected, error)
    }

    /// A failure response: the solve crashed and the stream's state was
    /// discarded (see [`RequestOutcome::Failed`]).
    pub fn failed(id: u64, stream: u64, error: String) -> AllocResponse {
        Self::error_response(id, stream, RequestOutcome::Failed, error)
    }

    /// A load-shed response carrying a retry hint (see
    /// [`RequestOutcome::Overloaded`]).
    pub fn overloaded(id: u64, stream: u64, retry_after: Duration) -> AllocResponse {
        let mut r = Self::error_response(
            id,
            stream,
            RequestOutcome::Overloaded,
            "request shed under load".into(),
        );
        r.retry_after = Some(retry_after);
        r
    }

    /// A stale-stream response: the stream's server-side state is gone
    /// and the request was not processed (see
    /// [`RequestOutcome::StaleStream`]).
    pub fn stale_stream(id: u64, stream: u64) -> AllocResponse {
        Self::error_response(
            id,
            stream,
            RequestOutcome::StaleStream,
            "stream state was discarded; re-send New".into(),
        )
    }

    /// The achieved minimum yield, when a solution was found.
    pub fn min_yield(&self) -> Option<f64> {
        self.solution.as_ref().map(|s| s.min_yield)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, ResourceVector};

    fn base() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let mk = |cpu: f64, mem: f64| {
            Service::new(
                vec![cpu / 2.0, mem],
                vec![cpu, mem],
                vec![cpu / 2.0, 0.0],
                vec![cpu, 0.0],
            )
        };
        let services = vec![mk(0.2, 0.1), mk(0.3, 0.2), mk(0.1, 0.05)];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn delta_matches_from_scratch_build() {
        let inst = base();
        let arriving = Service::rigid(vec![0.05, 0.05], vec![0.05, 0.05]);
        let delta = WorkloadDelta {
            scale_need: vec![(0, 0.5)],
            remove: vec![1],
            add: vec![arriving.clone()],
        };
        let next = inst.apply_delta(&delta).unwrap();

        // Same list as scaling + filtering + appending by hand.
        let mut expect = inst.services().to_vec();
        expect[0].need_elem.scale_assign(0.5);
        expect[0].need_agg.scale_assign(0.5);
        expect.remove(1);
        expect.push(arriving);
        assert_eq!(next.services(), &expect[..]);
        assert_eq!(next.nodes(), inst.nodes());
        assert_eq!(next.num_services(), 3);
    }

    #[test]
    fn delta_chain_equals_fresh_instance() {
        let inst = base();
        let d1 = WorkloadDelta {
            remove: vec![2],
            ..WorkloadDelta::default()
        };
        let d2 = WorkloadDelta {
            scale_need: vec![(1, 1.5)],
            add: vec![Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1])],
            ..WorkloadDelta::default()
        };
        let chained = inst.apply_delta(&d1).unwrap().apply_delta(&d2).unwrap();
        let fresh = ProblemInstance::new(chained.nodes().to_vec(), chained.services().to_vec())
            .expect("chained instance validates fully");
        assert_eq!(fresh.services(), chained.services());
    }

    #[test]
    fn delta_rejects_bad_indices_and_factors() {
        let inst = base();
        let bad_remove = WorkloadDelta {
            remove: vec![7],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&bad_remove),
            Err(ModelError::ServiceOutOfRange { service: 7, len: 3 })
        ));
        let bad_scale = WorkloadDelta {
            scale_need: vec![(0, f64::NAN)],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&bad_scale),
            Err(ModelError::InvalidValue { .. })
        ));
        let empty = WorkloadDelta {
            remove: vec![0, 1, 2],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&empty),
            Err(ModelError::EmptyInstance)
        ));
    }

    #[test]
    fn delta_rejects_mismatched_arrival_dims() {
        let inst = base();
        let delta = WorkloadDelta {
            add: vec![Service::rigid(
                ResourceVector::new(vec![0.1]),
                ResourceVector::new(vec![0.1]),
            )],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&delta),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_removals_are_a_set() {
        let inst = base();
        let delta = WorkloadDelta {
            remove: vec![1, 1],
            ..WorkloadDelta::default()
        };
        assert_eq!(inst.apply_delta(&delta).unwrap().num_services(), 2);
    }

    #[test]
    fn delta_targeting_a_departed_service_is_rejected() {
        // After service 2 departs, only indices {0, 1} exist; a follow-up
        // delta still addressing index 2 must be rejected — repair leans
        // on indices always meaning the *current* instance's services.
        let inst = base();
        let shrunk = inst
            .apply_delta(&WorkloadDelta {
                remove: vec![2],
                ..WorkloadDelta::default()
            })
            .unwrap();
        let stale = WorkloadDelta {
            scale_need: vec![(2, 0.5)],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            shrunk.apply_delta(&stale),
            Err(ModelError::ServiceOutOfRange { service: 2, len: 2 })
        ));
        let stale_remove = WorkloadDelta {
            remove: vec![2],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            shrunk.apply_delta(&stale_remove),
            Err(ModelError::ServiceOutOfRange { service: 2, len: 2 })
        ));
    }

    #[test]
    fn repeated_deltas_compose_like_a_rebuild() {
        // A chain of scale/remove/add deltas must land on exactly the
        // service list a from-scratch rebuild produces at every step.
        let inst = base();
        let deltas = [
            WorkloadDelta {
                scale_need: vec![(0, 1.25), (2, 0.8)],
                ..WorkloadDelta::default()
            },
            WorkloadDelta {
                remove: vec![0],
                add: vec![Service::rigid(vec![0.07, 0.07], vec![0.07, 0.07])],
                ..WorkloadDelta::default()
            },
            WorkloadDelta {
                scale_need: vec![(1, 0.5)],
                remove: vec![0],
                ..WorkloadDelta::default()
            },
        ];
        let mut chained = inst.clone();
        let mut manual = inst.services().to_vec();
        for delta in &deltas {
            chained = chained.apply_delta(delta).unwrap();
            // Replay the same delta by hand on the raw list.
            for &(j, f) in &delta.scale_need {
                manual[j].need_elem.scale_assign(f);
                manual[j].need_agg.scale_assign(f);
            }
            let mut idx = 0;
            manual.retain(|_| {
                let keep = !delta.remove.contains(&idx);
                idx += 1;
                keep
            });
            manual.extend(delta.add.iter().cloned());
            let rebuilt = ProblemInstance::new(inst.nodes().to_vec(), manual.clone()).unwrap();
            assert_eq!(chained.services(), rebuilt.services());
        }
    }

    #[test]
    fn scale_flips_feasibility_and_back() {
        // Scaling needs never touches rigid requirements, so an instance
        // stays *constructible* through wild swings; the same factor
        // chain down and back up restores the yields bit-for-bit as far
        // as the service list is concerned.
        let inst = base();
        let blown = inst
            .apply_delta(&WorkloadDelta {
                scale_need: vec![(0, 1000.0)],
                ..WorkloadDelta::default()
            })
            .unwrap();
        // The instance still validates fully (needs are fluid).
        assert!(blown.with_services(blown.services().to_vec()).is_ok());
        let restored = blown
            .apply_delta(&WorkloadDelta {
                scale_need: vec![(0, 1.0 / 1000.0)],
                ..WorkloadDelta::default()
            })
            .unwrap();
        for (a, b) in restored.services().iter().zip(inst.services()) {
            assert_eq!(a.req_elem, b.req_elem);
            assert_eq!(a.req_agg, b.req_agg);
            for d in 0..a.dims() {
                assert!((a.need_agg[d] - b.need_agg[d]).abs() < 1e-12);
                assert!((a.need_elem[d] - b.need_elem[d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn remap_carries_survivors_and_leaves_arrivals_unplaced() {
        let mut prev = Placement::empty(3);
        prev.assign(0, 1);
        prev.assign(1, 0);
        prev.assign(2, 1);
        let delta = WorkloadDelta {
            remove: vec![1],
            add: vec![Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1])],
            ..WorkloadDelta::default()
        };
        let next = delta.remap_placement(&prev);
        assert_eq!(next.len(), 3);
        assert_eq!(next.node_of(0), Some(1)); // old service 0
        assert_eq!(next.node_of(1), Some(1)); // old service 2, shifted down
        assert_eq!(next.node_of(2), None); // the arrival
    }

    #[test]
    fn remap_of_a_pure_scale_delta_is_identity() {
        let mut prev = Placement::empty(2);
        prev.assign(0, 0);
        prev.assign(1, 1);
        let delta = WorkloadDelta {
            scale_need: vec![(0, 2.0)],
            ..WorkloadDelta::default()
        };
        assert_eq!(delta.remap_placement(&prev), prev);
    }

    #[test]
    fn failure_outcomes_roundtrip_and_classify() {
        for outcome in [
            RequestOutcome::Solved,
            RequestOutcome::Infeasible,
            RequestOutcome::TimedOut,
            RequestOutcome::Rejected,
            RequestOutcome::Failed,
            RequestOutcome::Overloaded,
            RequestOutcome::StaleStream,
        ] {
            assert_eq!(
                RequestOutcome::from_wire(outcome.wire_name()),
                Some(outcome)
            );
        }
        assert!(RequestOutcome::Failed.is_retryable());
        assert!(RequestOutcome::Overloaded.is_retryable());
        assert!(RequestOutcome::StaleStream.is_retryable());
        assert!(!RequestOutcome::Solved.is_retryable());
        assert!(!RequestOutcome::Rejected.is_retryable());

        let shed = AllocResponse::overloaded(4, 2, Duration::from_millis(25));
        assert_eq!(shed.outcome, RequestOutcome::Overloaded);
        assert_eq!(shed.retry_after, Some(Duration::from_millis(25)));
        let failed = AllocResponse::failed(1, 0, "boom".into());
        assert_eq!(failed.outcome, RequestOutcome::Failed);
        assert!(failed.retry_after.is_none());
        let stale = AllocResponse::stale_stream(2, 0);
        assert_eq!(stale.outcome, RequestOutcome::StaleStream);
        assert!(stale.error.is_some());
    }

    #[test]
    fn policy_parse_rejects_garbage() {
        assert_eq!(ResponsePolicy::parse("exactish"), None);
        assert_eq!(ResponsePolicy::parse("repaired:0.1"), None);
        assert_eq!(ResponsePolicy::parse("repaired:-0.1:2"), None);
        assert_eq!(ResponsePolicy::parse("repaired:NaN:2"), None);
        assert_eq!(ResponsePolicy::parse("repaired:0.1:two"), None);
        let defaulted = ResponsePolicy::parse("repaired").unwrap();
        assert_eq!(
            defaulted,
            ResponsePolicy::Repaired {
                tolerance: ResponsePolicy::DEFAULT_TOLERANCE,
                max_migrations: ResponsePolicy::DEFAULT_MAX_MIGRATIONS,
            }
        );
    }
}
