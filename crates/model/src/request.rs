//! Allocation-service request/response types and workload deltas.
//!
//! A long-lived allocator is invoked repeatedly as workloads arrive and
//! change; these types describe one such invocation. A *stream* is a
//! sequence of requests against one evolving instance: it opens with a
//! full [`RequestKind::New`] instance, evolves through
//! [`RequestKind::Delta`] mutations (service arrival, departure,
//! demand change) and can be re-solved in place with
//! [`RequestKind::Resolve`] (e.g. under a tightened wall-clock budget).
//! Requests in different streams are independent; requests within a
//! stream must be applied in order.

use crate::{ModelError, ProblemInstance, Service, Solution};
use std::time::Duration;

/// A change to the service set of a running instance.
///
/// `scale_need` and `remove` index services of the *current* instance
/// (before this delta); removals are applied as a set, then surviving
/// services keep their relative order and `add` appends at the end. This
/// keeps the service list of a delta chain identical to the list obtained
/// by building the final instance from scratch in the same order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadDelta {
    /// Multiply the fluid needs (elementary and aggregate, every
    /// dimension) of service `j` by `factor` — a demand change.
    pub scale_need: Vec<(usize, f64)>,
    /// Services departing (indices into the current instance).
    pub remove: Vec<usize>,
    /// Services arriving (appended after removals).
    pub add: Vec<Service>,
}

impl WorkloadDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.scale_need.is_empty() && self.remove.is_empty() && self.add.is_empty()
    }
}

impl ProblemInstance {
    /// Applies a workload delta, producing the successor instance.
    ///
    /// Only the affected services are rebuilt and re-validated — the
    /// platform and every untouched service are reused as-is, so applying
    /// a delta is `O(changed + J)` rather than a full instance
    /// construction with `O((H + J) · D)` validation.
    pub fn apply_delta(&self, delta: &WorkloadDelta) -> Result<ProblemInstance, ModelError> {
        let j_count = self.num_services();
        let mut services: Vec<Service> = self.services().to_vec();

        for &(j, factor) in &delta.scale_need {
            if j >= j_count {
                return Err(ModelError::ServiceOutOfRange {
                    service: j,
                    len: j_count,
                });
            }
            if !(factor.is_finite() && factor >= 0.0) {
                return Err(ModelError::InvalidValue {
                    what: "need scale factor",
                    value: factor,
                });
            }
            let s = &mut services[j];
            s.need_elem.scale_assign(factor);
            s.need_agg.scale_assign(factor);
            s.validate(&j.to_string())?;
        }

        if !delta.remove.is_empty() {
            let mut keep = vec![true; j_count];
            for &j in &delta.remove {
                if j >= j_count {
                    return Err(ModelError::ServiceOutOfRange {
                        service: j,
                        len: j_count,
                    });
                }
                keep[j] = false;
            }
            let mut idx = 0;
            services.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
        }

        for (k, s) in delta.add.iter().enumerate() {
            if s.dims() != self.dims() {
                return Err(ModelError::DimensionMismatch {
                    expected: self.dims(),
                    actual: s.dims(),
                });
            }
            s.validate(&format!("+{k}"))?;
            services.push(s.clone());
        }

        if services.is_empty() {
            return Err(ModelError::EmptyInstance);
        }
        Ok(self.with_same_platform(services))
    }
}

/// What an [`AllocRequest`] asks the allocator to do.
#[derive(Clone, Debug)]
pub enum RequestKind {
    /// Open (or replace) the stream's instance and solve it from scratch.
    New(ProblemInstance),
    /// Mutate the stream's current instance and re-solve warm.
    Delta(WorkloadDelta),
    /// Re-solve the stream's current instance unchanged (typically with a
    /// different wall-clock budget).
    Resolve,
}

/// One unit of work for the allocation service.
#[derive(Clone, Debug)]
pub struct AllocRequest {
    /// Caller-chosen identifier echoed in the response (unique per trace).
    pub id: u64,
    /// Stream this request belongs to (requests within a stream are
    /// processed in submission order; streams are independent).
    pub stream: u64,
    /// The work itself.
    pub kind: RequestKind,
    /// Optional wall-clock budget for this solve (overrides the service
    /// default); the best feasible incumbent found in time is returned.
    pub budget: Option<Duration>,
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Solved to the algorithm's normal termination.
    Solved,
    /// Some rigid requirement cannot be satisfied.
    Infeasible,
    /// The wall-clock budget expired; `solution` carries the best feasible
    /// incumbent found in time, if any.
    TimedOut,
    /// The request was malformed (delta on an empty stream, index out of
    /// range, …) and no solve was attempted.
    Rejected,
}

impl RequestOutcome {
    /// The outcome's spelling in the `vmplace-net` wire protocol.
    pub fn wire_name(self) -> &'static str {
        match self {
            RequestOutcome::Solved => "solved",
            RequestOutcome::Infeasible => "infeasible",
            RequestOutcome::TimedOut => "timed-out",
            RequestOutcome::Rejected => "rejected",
        }
    }

    /// Parses a wire spelling (the inverse of
    /// [`RequestOutcome::wire_name`]).
    pub fn from_wire(s: &str) -> Option<RequestOutcome> {
        match s {
            "solved" => Some(RequestOutcome::Solved),
            "infeasible" => Some(RequestOutcome::Infeasible),
            "timed-out" => Some(RequestOutcome::TimedOut),
            "rejected" => Some(RequestOutcome::Rejected),
            _ => None,
        }
    }
}

/// The allocator's answer to one [`AllocRequest`].
#[derive(Clone, Debug)]
pub struct AllocResponse {
    /// Echo of [`AllocRequest::id`].
    pub id: u64,
    /// Echo of [`AllocRequest::stream`].
    pub stream: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// The placement and achieved yields, when one was found.
    pub solution: Option<Solution>,
    /// Label of the winning portfolio member, when the solve ran on the
    /// portfolio engine.
    pub winner: Option<String>,
    /// Total packing probes (or trials / B&B nodes) spent on the request.
    pub probes: u64,
    /// Wall-clock time spent solving this request.
    pub wall: Duration,
    /// Rejection detail for [`RequestOutcome::Rejected`].
    pub error: Option<String>,
    /// Whether this response was answered from the service's response
    /// cache (an identical re-solve of an unchanged instance). Cached
    /// responses are bit-for-bit equal to what the uncached solve would
    /// have produced — only `wall` (and this marker) differ.
    pub cached: bool,
}

impl AllocResponse {
    /// A rejection response (no solve was attempted).
    pub fn rejected(id: u64, stream: u64, error: String) -> AllocResponse {
        AllocResponse {
            id,
            stream,
            outcome: RequestOutcome::Rejected,
            solution: None,
            winner: None,
            probes: 0,
            wall: Duration::ZERO,
            error: Some(error),
            cached: false,
        }
    }

    /// The achieved minimum yield, when a solution was found.
    pub fn min_yield(&self) -> Option<f64> {
        self.solution.as_ref().map(|s| s.min_yield)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, ResourceVector};

    fn base() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let mk = |cpu: f64, mem: f64| {
            Service::new(
                vec![cpu / 2.0, mem],
                vec![cpu, mem],
                vec![cpu / 2.0, 0.0],
                vec![cpu, 0.0],
            )
        };
        let services = vec![mk(0.2, 0.1), mk(0.3, 0.2), mk(0.1, 0.05)];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn delta_matches_from_scratch_build() {
        let inst = base();
        let arriving = Service::rigid(vec![0.05, 0.05], vec![0.05, 0.05]);
        let delta = WorkloadDelta {
            scale_need: vec![(0, 0.5)],
            remove: vec![1],
            add: vec![arriving.clone()],
        };
        let next = inst.apply_delta(&delta).unwrap();

        // Same list as scaling + filtering + appending by hand.
        let mut expect = inst.services().to_vec();
        expect[0].need_elem.scale_assign(0.5);
        expect[0].need_agg.scale_assign(0.5);
        expect.remove(1);
        expect.push(arriving);
        assert_eq!(next.services(), &expect[..]);
        assert_eq!(next.nodes(), inst.nodes());
        assert_eq!(next.num_services(), 3);
    }

    #[test]
    fn delta_chain_equals_fresh_instance() {
        let inst = base();
        let d1 = WorkloadDelta {
            remove: vec![2],
            ..WorkloadDelta::default()
        };
        let d2 = WorkloadDelta {
            scale_need: vec![(1, 1.5)],
            add: vec![Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1])],
            ..WorkloadDelta::default()
        };
        let chained = inst.apply_delta(&d1).unwrap().apply_delta(&d2).unwrap();
        let fresh = ProblemInstance::new(chained.nodes().to_vec(), chained.services().to_vec())
            .expect("chained instance validates fully");
        assert_eq!(fresh.services(), chained.services());
    }

    #[test]
    fn delta_rejects_bad_indices_and_factors() {
        let inst = base();
        let bad_remove = WorkloadDelta {
            remove: vec![7],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&bad_remove),
            Err(ModelError::ServiceOutOfRange { service: 7, len: 3 })
        ));
        let bad_scale = WorkloadDelta {
            scale_need: vec![(0, f64::NAN)],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&bad_scale),
            Err(ModelError::InvalidValue { .. })
        ));
        let empty = WorkloadDelta {
            remove: vec![0, 1, 2],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&empty),
            Err(ModelError::EmptyInstance)
        ));
    }

    #[test]
    fn delta_rejects_mismatched_arrival_dims() {
        let inst = base();
        let delta = WorkloadDelta {
            add: vec![Service::rigid(
                ResourceVector::new(vec![0.1]),
                ResourceVector::new(vec![0.1]),
            )],
            ..WorkloadDelta::default()
        };
        assert!(matches!(
            inst.apply_delta(&delta),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_removals_are_a_set() {
        let inst = base();
        let delta = WorkloadDelta {
            remove: vec![1, 1],
            ..WorkloadDelta::default()
        };
        assert_eq!(inst.apply_delta(&delta).unwrap().num_services(), 2);
    }
}
