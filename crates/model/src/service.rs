use crate::{ModelError, ResourceVector};

/// A hosted service (one virtual machine instance).
///
/// Per §2 of the paper, a service is described by:
///
/// * **requirements** `(rᵉ, rᵃ)` — the allocation needed to run at the
///   minimum acceptable service level; resource allocation *fails* if these
///   cannot be met;
/// * **needs** `(nᵉ, nᵃ)` — the *additional* resources required to reach the
///   maximum performance observed on the reference machine.
///
/// Running at yield `y ∈ [0, 1]` consumes `rᵉ + y·nᵉ` per element and
/// `rᵃ + y·nᵃ` in aggregate, in every dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct Service {
    /// Maximum elementary (per-element) requirement per dimension.
    pub req_elem: ResourceVector,
    /// Aggregate requirement per dimension.
    pub req_agg: ResourceVector,
    /// Maximum elementary need per dimension.
    pub need_elem: ResourceVector,
    /// Aggregate need per dimension.
    pub need_agg: ResourceVector,
}

impl Service {
    /// Creates a service from its four descriptor vectors.
    pub fn new(
        req_elem: impl Into<ResourceVector>,
        req_agg: impl Into<ResourceVector>,
        need_elem: impl Into<ResourceVector>,
        need_agg: impl Into<ResourceVector>,
    ) -> Self {
        Service {
            req_elem: req_elem.into(),
            req_agg: req_agg.into(),
            need_elem: need_elem.into(),
            need_agg: need_agg.into(),
        }
    }

    /// A service with requirements only (zero needs): it runs at yield 1 as
    /// soon as its requirements are satisfied.
    pub fn rigid(req_elem: impl Into<ResourceVector>, req_agg: impl Into<ResourceVector>) -> Self {
        let req_elem = req_elem.into();
        let req_agg = req_agg.into();
        let dims = req_agg.dims();
        Service {
            req_elem,
            req_agg,
            need_elem: ResourceVector::zeros(dims),
            need_agg: ResourceVector::zeros(dims),
        }
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.req_agg.dims()
    }

    /// Elementary consumption at yield `y`: `rᵉ + y·nᵉ`.
    pub fn demand_elem(&self, y: f64) -> ResourceVector {
        self.req_elem.add_scaled(&self.need_elem, y)
    }

    /// Aggregate consumption at yield `y`: `rᵃ + y·nᵃ`.
    pub fn demand_agg(&self, y: f64) -> ResourceVector {
        self.req_agg.add_scaled(&self.need_agg, y)
    }

    /// True if the service has no fluid needs in any dimension, in which
    /// case its yield is 1 by definition once the requirements are met.
    #[inline]
    pub fn is_rigid(&self, tol: f64) -> bool {
        self.need_agg.is_zero(tol) && self.need_elem.is_zero(tol)
    }

    /// Checks internal consistency: matching dimensions, non-negative finite
    /// values, and elementary ≤ aggregate for both requirements and needs.
    pub fn validate(&self, label: &str) -> Result<(), ModelError> {
        let dims = self.req_agg.dims();
        for (what, v) in [
            ("service elementary requirement", &self.req_elem),
            ("service aggregate requirement", &self.req_agg),
            ("service elementary need", &self.need_elem),
            ("service aggregate need", &self.need_agg),
        ] {
            if v.dims() != dims {
                return Err(ModelError::DimensionMismatch {
                    expected: dims,
                    actual: v.dims(),
                });
            }
            v.validate(what)?;
        }
        for d in 0..dims {
            if self.req_elem[d] > self.req_agg[d] + crate::EPSILON {
                return Err(ModelError::ElementaryExceedsAggregate {
                    what: format!("service {label} requirement"),
                    dim: d,
                });
            }
            if self.need_elem[d] > self.need_agg[d] + crate::EPSILON {
                return Err(ModelError::ElementaryExceedsAggregate {
                    what: format!("service {label} need"),
                    dim: d,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The service of the paper's Figure 1.
    pub(crate) fn figure1_service() -> Service {
        Service::new(
            vec![0.5, 0.5], // elementary requirement (CPU, mem)
            vec![1.0, 0.5], // aggregate requirement
            vec![0.5, 0.0], // elementary need
            vec![1.0, 0.0], // aggregate need
        )
    }

    #[test]
    fn demand_interpolates_between_requirement_and_full_need() {
        let s = figure1_service();
        let d0 = s.demand_agg(0.0);
        assert!((d0[0] - 1.0).abs() < 1e-12);
        let d1 = s.demand_agg(1.0);
        assert!((d1[0] - 2.0).abs() < 1e-12);
        assert!((d1[1] - 0.5).abs() < 1e-12);
        let e = s.demand_elem(0.6);
        assert!((e[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rigid_service_has_zero_needs() {
        let s = Service::rigid(vec![0.1, 0.2], vec![0.1, 0.2]);
        assert!(s.is_rigid(0.0));
        s.validate("r").unwrap();
    }

    #[test]
    fn validate_rejects_elementary_need_above_aggregate() {
        let s = Service::new(
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![0.1, 0.0],
        );
        assert!(matches!(
            s.validate("x"),
            Err(ModelError::ElementaryExceedsAggregate { dim: 0, .. })
        ));
    }

    #[test]
    fn validate_accepts_uneven_aggregate_vs_elementary() {
        // The paper's 110%-aggregate / 100%-elementary CPU example: aggregate
        // need not be an integer multiple of the elementary value.
        let s = Service::new(
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.1, 0.0],
        );
        s.validate("x").unwrap();
    }
}
