use crate::{ModelError, Node, ResourceVector, Service};

/// A complete problem instance: a heterogeneous platform plus the set of
/// services to place on it.
#[derive(Clone, Debug)]
pub struct ProblemInstance {
    nodes: Vec<Node>,
    services: Vec<Service>,
    dims: usize,
}

impl ProblemInstance {
    /// Builds and validates an instance.
    pub fn new(nodes: Vec<Node>, services: Vec<Service>) -> Result<Self, ModelError> {
        if nodes.is_empty() || services.is_empty() {
            return Err(ModelError::EmptyInstance);
        }
        let dims = nodes[0].dims();
        for (h, n) in nodes.iter().enumerate() {
            if n.dims() != dims {
                return Err(ModelError::DimensionMismatch {
                    expected: dims,
                    actual: n.dims(),
                });
            }
            n.validate(&h.to_string())?;
        }
        for (j, s) in services.iter().enumerate() {
            if s.dims() != dims {
                return Err(ModelError::DimensionMismatch {
                    expected: dims,
                    actual: s.dims(),
                });
            }
            s.validate(&j.to_string())?;
        }
        Ok(ProblemInstance {
            nodes,
            services,
            dims,
        })
    }

    /// Number of resource dimensions `D`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The platform's nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The services to place.
    #[inline]
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// Number of nodes `H`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of services `J`.
    #[inline]
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Returns a copy of this instance with different services (used by the
    /// error-experiment pipeline, which solves with *estimated* needs and
    /// evaluates with *true* needs).
    pub fn with_services(&self, services: Vec<Service>) -> Result<Self, ModelError> {
        ProblemInstance::new(self.nodes.clone(), services)
    }

    /// Internal constructor for delta application: reuses this instance's
    /// (already validated) platform with a service list whose changed
    /// members the caller has validated individually.
    pub(crate) fn with_same_platform(&self, services: Vec<Service>) -> ProblemInstance {
        debug_assert!(!services.is_empty());
        ProblemInstance {
            nodes: self.nodes.clone(),
            services,
            dims: self.dims,
        }
    }

    /// Whether a service's rigid requirements can be satisfied on a node
    /// that is otherwise empty (elementary and aggregate, every dimension).
    pub fn service_fits_empty_node(&self, j: usize, h: usize) -> bool {
        let s = &self.services[j];
        let n = &self.nodes[h];
        s.req_elem.le(&n.elementary, crate::EPSILON) && s.req_agg.le(&n.aggregate, crate::EPSILON)
    }

    /// Aggregate statistics used by generators and reports.
    pub fn stats(&self) -> InstanceStats {
        let mut total_capacity = ResourceVector::zeros(self.dims);
        for n in &self.nodes {
            total_capacity.add_assign(&n.aggregate);
        }
        let mut total_requirement = ResourceVector::zeros(self.dims);
        let mut total_need = ResourceVector::zeros(self.dims);
        for s in &self.services {
            total_requirement.add_assign(&s.req_agg);
            total_need.add_assign(&s.need_agg);
        }
        InstanceStats {
            total_capacity,
            total_requirement,
            total_need,
        }
    }
}

/// Sums of capacities, requirements and needs across an instance.
#[derive(Clone, Debug)]
pub struct InstanceStats {
    /// Σ over nodes of aggregate capacity, per dimension.
    pub total_capacity: ResourceVector,
    /// Σ over services of aggregate requirement, per dimension.
    pub total_requirement: ResourceVector,
    /// Σ over services of aggregate need, per dimension.
    pub total_need: ResourceVector,
}

impl InstanceStats {
    /// Fraction of dimension `d`'s total capacity left free when every
    /// requirement is satisfied (the paper's *slack* for the memory
    /// dimension).
    pub fn slack(&self, d: usize) -> f64 {
        if self.total_capacity[d] <= 0.0 {
            0.0
        } else {
            1.0 - self.total_requirement[d] / self.total_capacity[d]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn stats_and_slack() {
        let inst = small_instance();
        let st = inst.stats();
        assert!((st.total_capacity[0] - 5.2).abs() < 1e-12);
        assert!((st.total_capacity[1] - 1.5).abs() < 1e-12);
        assert!((st.total_requirement[1] - 0.5).abs() < 1e-12);
        assert!((st.slack(1) - (1.0 - 0.5 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn fits_empty_node_checks_both_vectors() {
        let inst = small_instance();
        // Node 0: elementary CPU 0.8 ≥ 0.5, aggregate CPU 3.2 ≥ 1.0 — fits.
        assert!(inst.service_fits_empty_node(0, 0));
        // Node 1: elementary CPU 1.0 ≥ 0.5, aggregate 2.0 ≥ 1.0, mem 0.5 ≥ 0.5.
        assert!(inst.service_fits_empty_node(0, 1));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            ProblemInstance::new(vec![], vec![]),
            Err(ModelError::EmptyInstance)
        ));
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let nodes = vec![
            Node::multicore(1, 1.0, 1.0),
            Node::new(vec![1.0], vec![1.0]),
        ];
        let services = vec![Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1])];
        assert!(ProblemInstance::new(nodes, services).is_err());
    }
}
