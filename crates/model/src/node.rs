use crate::{ModelError, ResourceVector};

/// A physical host of the platform.
///
/// Following §2 of the paper, a node is an ordered pair of `D`-dimensional
/// vectors: the **elementary capacity** gives the capacity of a single
/// resource element in each dimension (one core, one memory bank, …) and the
/// **aggregate capacity** gives the total capacity over all elements.
///
/// Poolable resources such as memory have identical elementary and aggregate
/// capacities; partitionable-but-not-poolable resources such as CPU cores
/// have `elementary = aggregate / #elements`.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Capacity of one resource element per dimension.
    pub elementary: ResourceVector,
    /// Total capacity per dimension.
    pub aggregate: ResourceVector,
}

impl Node {
    /// Creates a node from its elementary and aggregate capacity vectors.
    pub fn new(
        elementary: impl Into<ResourceVector>,
        aggregate: impl Into<ResourceVector>,
    ) -> Self {
        Node {
            elementary: elementary.into(),
            aggregate: aggregate.into(),
        }
    }

    /// Convenience constructor for the paper's two-dimensional (CPU, memory)
    /// evaluation platform: a machine with `cores` identical cores of
    /// `per_core` CPU capacity each and a fully poolable memory of capacity
    /// `memory`.
    pub fn multicore(cores: usize, per_core: f64, memory: f64) -> Self {
        Node {
            elementary: ResourceVector::new(vec![per_core, memory]),
            aggregate: ResourceVector::new(vec![per_core * cores as f64, memory]),
        }
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.aggregate.dims()
    }

    /// Checks internal consistency (matching dimensions, non-negative finite
    /// values, elementary ≤ aggregate).
    pub fn validate(&self, label: &str) -> Result<(), ModelError> {
        if self.elementary.dims() != self.aggregate.dims() {
            return Err(ModelError::DimensionMismatch {
                expected: self.aggregate.dims(),
                actual: self.elementary.dims(),
            });
        }
        self.elementary.validate("node elementary capacity")?;
        self.aggregate.validate("node aggregate capacity")?;
        for d in 0..self.dims() {
            if self.elementary[d] > self.aggregate[d] + crate::EPSILON {
                return Err(ModelError::ElementaryExceedsAggregate {
                    what: format!("node {label}"),
                    dim: d,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicore_constructor_matches_paper_example() {
        // Node A of Figure 1: 4 cores of 0.8 each, memory 1.0.
        let a = Node::multicore(4, 0.8, 1.0);
        assert!((a.elementary[0] - 0.8).abs() < 1e-12);
        assert!((a.aggregate[0] - 3.2).abs() < 1e-12);
        assert_eq!(a.elementary[1], 1.0);
        assert_eq!(a.aggregate[1], 1.0);
        a.validate("A").unwrap();
    }

    #[test]
    fn validate_rejects_elementary_above_aggregate() {
        let n = Node::new(vec![2.0, 0.5], vec![1.0, 0.5]);
        assert!(matches!(
            n.validate("x"),
            Err(ModelError::ElementaryExceedsAggregate { dim: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let n = Node::new(vec![0.5], vec![1.0, 1.0]);
        assert!(matches!(
            n.validate("x"),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }
}
