use crate::{ModelError, ProblemInstance, ResourceVector};

/// A mapping of services to nodes.
///
/// `node_of[j] = Some(h)` means service `j` runs on node `h`; `None` means
/// the service is unplaced (only valid in intermediate states — a complete
/// solution places every service, per Constraint 3 of the MILP).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Placement {
    node_of: Vec<Option<usize>>,
}

impl Placement {
    /// A placement with every service unassigned.
    pub fn empty(num_services: usize) -> Self {
        Placement {
            node_of: vec![None; num_services],
        }
    }

    /// Builds a placement from an explicit assignment vector.
    pub fn from_assignment(node_of: Vec<Option<usize>>) -> Self {
        Placement { node_of }
    }

    /// Clears the placement and resizes it to `num_services` unassigned
    /// slots, reusing the existing allocation (hot packing loops reset one
    /// placement per probe instead of allocating).
    pub fn reset(&mut self, num_services: usize) {
        self.node_of.clear();
        self.node_of.resize(num_services, None);
    }

    /// Assigns service `j` to node `h`.
    #[inline]
    pub fn assign(&mut self, service: usize, node: usize) {
        self.node_of[service] = Some(node);
    }

    /// Removes the assignment of service `j`.
    #[inline]
    pub fn unassign(&mut self, service: usize) {
        self.node_of[service] = None;
    }

    /// Node hosting service `j`, if any.
    #[inline]
    pub fn node_of(&self, service: usize) -> Option<usize> {
        self.node_of[service]
    }

    /// Number of services covered by this placement.
    #[inline]
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// True if no services are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// True if every service is assigned to some node.
    pub fn is_complete(&self) -> bool {
        self.node_of.iter().all(|n| n.is_some())
    }

    /// Iterator over `(service, node)` pairs for assigned services.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.node_of
            .iter()
            .enumerate()
            .filter_map(|(j, n)| n.map(|h| (j, h)))
    }

    /// Groups services by hosting node: `result[h]` lists the services on
    /// node `h`.
    pub fn services_per_node(&self, num_nodes: usize) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); num_nodes];
        for (j, h) in self.iter() {
            groups[h].push(j);
        }
        groups
    }

    /// Validates node indices against an instance.
    pub fn validate(&self, instance: &ProblemInstance) -> Result<(), ModelError> {
        for (j, h) in self.iter() {
            if h >= instance.num_nodes() {
                return Err(ModelError::NodeOutOfRange {
                    service: j,
                    node: h,
                });
            }
        }
        Ok(())
    }

    /// Checks that the placement satisfies every rigid requirement and, for
    /// a uniform target yield `lambda`, every elementary and aggregate
    /// capacity constraint. `lambda = 0` checks requirement feasibility.
    pub fn feasible_at_yield(&self, instance: &ProblemInstance, lambda: f64) -> bool {
        let dims = instance.dims();
        let mut load = vec![ResourceVector::zeros(dims); instance.num_nodes()];
        for (j, h) in self.iter() {
            let s = &instance.services()[j];
            let node = &instance.nodes()[h];
            let elem = s.demand_elem(lambda);
            if !elem.le(&node.elementary, crate::EPSILON) {
                return false;
            }
            let agg = s.demand_agg(lambda);
            load[h].add_assign(&agg);
        }
        load.iter()
            .zip(instance.nodes())
            .all(|(l, n)| l.le(&n.aggregate, crate::EPSILON))
    }
}

/// A complete resource-allocation solution: a placement together with the
/// per-service yields it achieves under the shared water-filling evaluator.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Where each service runs.
    pub placement: Placement,
    /// Achieved yield per service, each in `[0, 1]`.
    pub yields: Vec<f64>,
    /// The objective value: `min_j yields[j]`.
    pub min_yield: f64,
}

impl Solution {
    /// Mean yield across services (secondary metric in the paper's prose).
    pub fn mean_yield(&self) -> f64 {
        if self.yields.is_empty() {
            0.0
        } else {
            self.yields.iter().sum::<f64>() / self.yields.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, Service};

    fn instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![
            Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            ),
            Service::rigid(vec![0.2, 0.3], vec![0.2, 0.3]),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn assignment_bookkeeping() {
        let mut p = Placement::empty(2);
        assert!(!p.is_complete());
        p.assign(0, 1);
        p.assign(1, 0);
        assert!(p.is_complete());
        assert_eq!(p.node_of(0), Some(1));
        let groups = p.services_per_node(2);
        assert_eq!(groups[0], vec![1]);
        assert_eq!(groups[1], vec![0]);
        p.unassign(0);
        assert!(!p.is_complete());
    }

    #[test]
    fn feasibility_at_yield_tracks_capacity() {
        let inst = instance();
        let mut p = Placement::empty(2);
        p.assign(0, 0);
        p.assign(1, 0);
        // Requirements: CPU 1.0 + 0.2 ≤ 3.2, mem 0.5 + 0.3 ≤ 1.0 — feasible.
        assert!(p.feasible_at_yield(&inst, 0.0));
        // At yield 0.6 service 0's elementary CPU demand is exactly 0.8 —
        // node 0's per-core limit (the Figure 1 bound).
        assert!(p.feasible_at_yield(&inst, 0.6));
        // At yield 1 the elementary demand 1.0 exceeds node 0's 0.8 cores.
        assert!(!p.feasible_at_yield(&inst, 1.0));
        // Node 1 cannot host both: memory 0.5 + 0.3 > 0.5.
        let mut q = Placement::empty(2);
        q.assign(0, 1);
        q.assign(1, 1);
        assert!(!q.feasible_at_yield(&inst, 0.0));
    }

    #[test]
    fn validate_detects_bad_node_index() {
        let inst = instance();
        let mut p = Placement::empty(2);
        p.assign(0, 7);
        assert!(matches!(
            p.validate(&inst),
            Err(ModelError::NodeOutOfRange {
                service: 0,
                node: 7
            })
        ));
    }
}
