//! The shared achieved-yield evaluator.
//!
//! Given a complete placement, the best possible minimum yield is computed
//! *exactly* per node by water-filling: on one node all hosted services share
//! the aggregate capacities, every service is additionally capped by the
//! node's elementary capacities, and the max–min allocation raises a common
//! level `λ` until some aggregate dimension is exhausted, freezing services
//! at their elementary caps along the way.
//!
//! Every algorithm in the workspace reports yields through this evaluator so
//! that heuristics are compared on identical terms (a binary-searched packing
//! can only gain from the final exact evaluation).

use crate::{Placement, ProblemInstance, Service, Solution, EPSILON};

/// Result of the per-node water-filling computation.
#[derive(Clone, Debug)]
pub struct NodeYield {
    /// Common water level `λ` reached on the node (∞-free: capped at 1).
    pub level: f64,
    /// Per-hosted-service yields, parallel to the input service list.
    pub yields: Vec<f64>,
}

/// Computes the exact max–min yield allocation on a single node.
///
/// `services` are the services hosted by `node` (indices into
/// `instance.services()`). Returns `None` if the rigid requirements alone do
/// not fit (elementary or aggregate, any dimension).
pub fn node_max_min_level(
    instance: &ProblemInstance,
    node: usize,
    services: &[usize],
) -> Option<NodeYield> {
    let n = &instance.nodes()[node];
    let dims = instance.dims();
    if services.is_empty() {
        return Some(NodeYield {
            level: 1.0,
            yields: Vec::new(),
        });
    }

    // Elementary feasibility + per-service caps from elementary needs.
    let mut caps = Vec::with_capacity(services.len());
    for &j in services {
        let s = &instance.services()[j];
        let mut cap: f64 = 1.0;
        for d in 0..dims {
            if s.req_elem[d] > n.elementary[d] + EPSILON {
                return None;
            }
            if s.need_elem[d] > EPSILON {
                cap = cap.min((n.elementary[d] - s.req_elem[d]) / s.need_elem[d]);
            }
        }
        caps.push(cap.clamp(0.0, 1.0));
    }

    // Aggregate requirement feasibility and residual capacity.
    let mut avail = vec![0.0f64; dims];
    for d in 0..dims {
        let used: f64 = services
            .iter()
            .map(|&j| instance.services()[j].req_agg[d])
            .sum();
        if used > n.aggregate[d] + EPSILON {
            return None;
        }
        avail[d] = (n.aggregate[d] - used).max(0.0);
    }

    // Water level per dimension; overall level is the minimum.
    let mut level: f64 = 1.0;
    // Scratch: (cap, need_d) pairs sorted by cap, rebuilt per dimension.
    let mut by_cap: Vec<(f64, f64)> = Vec::with_capacity(services.len());
    for d in 0..dims {
        by_cap.clear();
        let mut total_need = 0.0;
        for (k, &j) in services.iter().enumerate() {
            let nd = instance.services()[j].need_agg[d];
            if nd > EPSILON {
                by_cap.push((caps[k], nd));
                total_need += nd;
            }
        }
        if by_cap.is_empty() {
            continue; // no fluid demand in this dimension
        }
        // If every service saturates its cap within capacity, dimension d
        // imposes no level below the caps.
        let full: f64 = by_cap.iter().map(|&(c, nd)| c * nd).sum();
        if full <= avail[d] + EPSILON {
            continue;
        }
        by_cap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Walk the piecewise-linear consumption curve
        //   f(λ) = Σ need_j · min(λ, cap_j)
        // to find f(λ) = avail[d].
        let mut frozen = 0.0; // Σ need_j · cap_j over frozen services
        let mut active_need = total_need;
        let mut lambda_d = 0.0f64;
        let mut prev_cap = 0.0f64;
        let mut solved = false;
        for &(cap, nd) in &by_cap {
            if active_need > EPSILON {
                let candidate = (avail[d] - frozen) / active_need;
                if candidate <= cap + EPSILON {
                    lambda_d = candidate.clamp(prev_cap.min(1.0), 1.0).min(cap);
                    solved = true;
                    break;
                }
            }
            frozen += cap * nd;
            active_need -= nd;
            prev_cap = cap;
        }
        if !solved {
            // All services frozen at caps but `full > avail` contradicts the
            // loop; numerically this means the level equals the last cap.
            lambda_d = prev_cap;
        }
        level = level.min(lambda_d.clamp(0.0, 1.0));
    }

    let yields: Vec<f64> = services
        .iter()
        .enumerate()
        .map(|(k, &j)| service_yield(&instance.services()[j], level, caps[k]))
        .collect();
    Some(NodeYield { level, yields })
}

#[inline]
fn service_yield(s: &Service, level: f64, cap: f64) -> f64 {
    if s.is_rigid(EPSILON) {
        // A service with no fluid needs runs at full performance once its
        // requirements are met (§2: needs are the *additional* resources to
        // reach maximum performance).
        1.0
    } else {
        level.min(cap).clamp(0.0, 1.0)
    }
}

/// Evaluates a complete placement, returning the achieved per-service yields
/// and minimum yield, or `None` if the placement is incomplete or violates a
/// rigid requirement.
pub fn evaluate_placement(instance: &ProblemInstance, placement: &Placement) -> Option<Solution> {
    if !placement.is_complete() || placement.len() != instance.num_services() {
        return None;
    }
    let groups = placement.services_per_node(instance.num_nodes());
    let mut yields = vec![0.0f64; instance.num_services()];
    let mut min_yield: f64 = 1.0;
    for (h, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let ny = node_max_min_level(instance, h, group)?;
        for (k, &j) in group.iter().enumerate() {
            yields[j] = ny.yields[k];
            min_yield = min_yield.min(ny.yields[k]);
        }
    }
    Some(Solution {
        placement: placement.clone(),
        yields,
        min_yield,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, ProblemInstance, Service};

    /// Figure 1 of the paper: one service, two candidate nodes, yields 0.6
    /// (node A) and 1.0 (node B).
    fn figure1() -> ProblemInstance {
        let nodes = vec![
            Node::multicore(4, 0.8, 1.0), // Node A
            Node::multicore(2, 1.0, 0.5), // Node B
        ];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn figure1_node_a_yields_0_6() {
        let inst = figure1();
        let ny = node_max_min_level(&inst, 0, &[0]).unwrap();
        assert!((ny.yields[0] - 0.6).abs() < 1e-9, "got {}", ny.yields[0]);
    }

    #[test]
    fn figure1_node_b_yields_1_0() {
        let inst = figure1();
        let ny = node_max_min_level(&inst, 1, &[0]).unwrap();
        assert!((ny.yields[0] - 1.0).abs() < 1e-9, "got {}", ny.yields[0]);
    }

    #[test]
    fn evaluate_placement_picks_up_per_node_results() {
        let inst = figure1();
        let mut p = crate::Placement::empty(1);
        p.assign(0, 1);
        let sol = evaluate_placement(&inst, &p).unwrap();
        assert!((sol.min_yield - 1.0).abs() < 1e-9);
        p.assign(0, 0);
        let sol = evaluate_placement(&inst, &p).unwrap();
        assert!((sol.min_yield - 0.6).abs() < 1e-9);
    }

    #[test]
    fn infeasible_requirements_return_none() {
        let nodes = vec![Node::multicore(1, 0.4, 0.2)];
        let services = vec![Service::rigid(vec![0.5, 0.1], vec![0.5, 0.1])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(node_max_min_level(&inst, 0, &[0]).is_none());
    }

    #[test]
    fn aggregate_sharing_splits_capacity() {
        // Two identical CPU-hungry services on one node: each can use a full
        // core (elementary 1.0), node has 2 cores; aggregate need 2.0 each but
        // only 2.0 total available → each gets yield 0.5.
        let nodes = vec![Node::multicore(2, 1.0, 1.0)];
        let svc = Service::new(
            vec![0.0, 0.1],
            vec![0.0, 0.1],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
        );
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        let ny = node_max_min_level(&inst, 0, &[0, 1]).unwrap();
        assert!((ny.yields[0] - 0.5).abs() < 1e-9);
        assert!((ny.yields[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn elementary_cap_freezes_small_service_and_lifts_level() {
        // Service 0 capped at 0.25 by the elementary CPU limit; service 1
        // takes the remaining aggregate capacity.
        // Node: 2 cores of 0.5 → aggregate 1.0. Requirements zero.
        // s0: elementary need 2.0 (cap = 0.5/2.0 = 0.25), aggregate need 2.0.
        // s1: elementary need 0.5 (cap = 1.0), aggregate need 0.5.
        // Water-fill in CPU: avail 1.0; f(λ) = 2 min(λ,.25) + 0.5 λ.
        // At λ=0.25: 0.5+0.125=0.625 < 1.0 → freeze s0; remaining 0.375/0.5=0.75...
        // continue: λ = (1.0-0.5)/0.5 = 1.0 → level 1.0, but s0 stuck at 0.25.
        let nodes = vec![Node::multicore(2, 0.5, 1.0)];
        let s0 = Service::new(
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 0.0],
        );
        let s1 = Service::new(
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![0.5, 0.0],
        );
        let inst = ProblemInstance::new(nodes, vec![s0, s1]).unwrap();
        let ny = node_max_min_level(&inst, 0, &[0, 1]).unwrap();
        assert!((ny.yields[0] - 0.25).abs() < 1e-9, "got {}", ny.yields[0]);
        assert!((ny.yields[1] - 1.0).abs() < 1e-9, "got {}", ny.yields[1]);
    }

    #[test]
    fn rigid_services_always_yield_one() {
        let nodes = vec![Node::multicore(1, 1.0, 1.0)];
        let services = vec![
            Service::rigid(vec![0.3, 0.3], vec![0.3, 0.3]),
            Service::new(
                vec![0.0, 0.0],
                vec![0.0, 0.0],
                vec![0.7, 0.0],
                vec![0.7, 0.0],
            ),
        ];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let ny = node_max_min_level(&inst, 0, &[0, 1]).unwrap();
        assert_eq!(ny.yields[0], 1.0);
        assert!((ny.yields[1] - 1.0).abs() < 1e-9); // 0.7 available for its 0.7 need
    }

    #[test]
    fn empty_node_is_fine() {
        let inst = figure1();
        let ny = node_max_min_level(&inst, 0, &[]).unwrap();
        assert_eq!(ny.level, 1.0);
        assert!(ny.yields.is_empty());
    }

    #[test]
    fn zero_available_capacity_gives_zero_level() {
        // Requirements exactly exhaust CPU; any fluid need gets nothing.
        let nodes = vec![Node::multicore(1, 1.0, 1.0)];
        let services = vec![Service::new(
            vec![1.0, 0.1],
            vec![1.0, 0.1],
            vec![0.0, 0.0],
            vec![0.5, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let ny = node_max_min_level(&inst, 0, &[0]).unwrap();
        assert!(ny.yields[0].abs() < 1e-9);
    }
}
