//! Plain-text instance serialisation.
//!
//! A simple line-oriented format so instances can be exchanged with other
//! tools (and with the CLI) without pulling in a serialisation framework:
//!
//! ```text
//! # comments and blank lines are ignored
//! dims 2
//! # node  <elementary capacities…>  |  <aggregate capacities…>
//! node 0.8 1.0 | 3.2 1.0
//! node 1.0 0.5 | 2.0 0.5
//! # service  <req elem…> | <req agg…> | <need elem…> | <need agg…>
//! service 0.5 0.5 | 1.0 0.5 | 0.5 0.0 | 1.0 0.0
//! ```

use crate::{ModelError, Node, ProblemInstance, ResourceVector, Service};
use std::fmt::Write as _;

/// Errors raised while parsing the instance text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line had an unknown keyword.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending keyword.
        word: String,
    },
    /// A number failed to parse or a section had the wrong arity.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        what: String,
    },
    /// The assembled instance failed model validation.
    Invalid(ModelError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownDirective { line, word } => {
                write!(f, "line {line}: unknown directive `{word}`")
            }
            ParseError::Malformed { line, what } => write!(f, "line {line}: {what}"),
            ParseError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn fmt_vec(v: &ResourceVector) -> String {
    v.as_slice()
        .iter()
        .map(|x| format!("{x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serialises the four descriptor vectors of a service as the text
/// format's `|`-separated body (everything after the `service` keyword).
/// Round-trips exactly through [`parse_service_body`].
pub fn write_service_body(s: &Service) -> String {
    format!(
        "{} | {} | {} | {}",
        fmt_vec(&s.req_elem),
        fmt_vec(&s.req_agg),
        fmt_vec(&s.need_elem),
        fmt_vec(&s.need_agg)
    )
}

/// Parses a service from its `|`-separated body (see
/// [`write_service_body`]); `line` feeds error positions.
pub fn parse_service_body(body: &str, dims: usize, line: usize) -> Result<Service, ParseError> {
    let mut v = parse_sections(body, 4, dims, line)?;
    let need_agg = v.pop().unwrap();
    let need_elem = v.pop().unwrap();
    let req_agg = v.pop().unwrap();
    let req_elem = v.pop().unwrap();
    Ok(Service {
        req_elem,
        req_agg,
        need_elem,
        need_agg,
    })
}

/// Serialises an instance to the text format.
pub fn write_instance(instance: &ProblemInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dims {}", instance.dims());
    for n in instance.nodes() {
        let _ = writeln!(
            out,
            "node {} | {}",
            fmt_vec(&n.elementary),
            fmt_vec(&n.aggregate)
        );
    }
    for s in instance.services() {
        let _ = writeln!(out, "service {}", write_service_body(s));
    }
    out
}

fn parse_sections(
    rest: &str,
    expect: usize,
    dims: usize,
    line: usize,
) -> Result<Vec<ResourceVector>, ParseError> {
    let sections: Vec<&str> = rest.split('|').collect();
    if sections.len() != expect {
        return Err(ParseError::Malformed {
            line,
            what: format!(
                "expected {expect} `|`-separated sections, got {}",
                sections.len()
            ),
        });
    }
    sections
        .into_iter()
        .map(|sec| {
            let values: Result<Vec<f64>, _> = sec.split_whitespace().map(str::parse).collect();
            match values {
                Ok(v) if v.len() == dims => Ok(ResourceVector::new(v)),
                Ok(v) => Err(ParseError::Malformed {
                    line,
                    what: format!("expected {dims} values per section, got {}", v.len()),
                }),
                Err(e) => Err(ParseError::Malformed {
                    line,
                    what: format!("bad number: {e}"),
                }),
            }
        })
        .collect()
}

/// Parses an instance from the text format.
pub fn read_instance(text: &str) -> Result<ProblemInstance, ParseError> {
    let mut dims: Option<usize> = None;
    let mut nodes: Vec<Node> = Vec::new();
    let mut services: Vec<Service> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (word, rest) = trimmed
            .split_once(char::is_whitespace)
            .unwrap_or((trimmed, ""));
        match word {
            "dims" => {
                dims = Some(rest.trim().parse().map_err(|e| ParseError::Malformed {
                    line,
                    what: format!("bad dims: {e}"),
                })?);
            }
            "node" => {
                let d = dims.ok_or(ParseError::Malformed {
                    line,
                    what: "`dims` must come first".to_string(),
                })?;
                let mut v = parse_sections(rest, 2, d, line)?;
                let aggregate = v.pop().unwrap();
                let elementary = v.pop().unwrap();
                nodes.push(Node {
                    elementary,
                    aggregate,
                });
            }
            "service" => {
                let d = dims.ok_or(ParseError::Malformed {
                    line,
                    what: "`dims` must come first".to_string(),
                })?;
                services.push(parse_service_body(rest, d, line)?);
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    word: other.to_string(),
                })
            }
        }
    }
    ProblemInstance::new(nodes, services).map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn roundtrip() {
        let inst = figure1();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back.nodes(), inst.nodes());
        assert_eq!(back.services(), inst.services());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hello\ndims 1\n  # indented comment\nnode 1.0 | 2.0\nservice 0.1 | 0.1 | 0.2 | 0.4\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.num_nodes(), 1);
        assert_eq!(inst.num_services(), 1);
        assert_eq!(inst.services()[0].need_agg[0], 0.4);
    }

    #[test]
    fn error_on_wrong_arity() {
        let text = "dims 2\nnode 1.0 | 2.0 2.0\n";
        let err = read_instance(text).unwrap_err();
        assert!(
            matches!(err, ParseError::Malformed { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn error_on_unknown_directive() {
        let err = read_instance("dims 1\nfrobnicate 1\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownDirective { line: 2, .. }));
    }

    #[test]
    fn error_on_missing_dims() {
        let err = read_instance("node 1.0 | 1.0\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn invalid_instance_rejected() {
        // Elementary exceeds aggregate.
        let text = "dims 1\nnode 2.0 | 1.0\nservice 0 | 0 | 0 | 0\n";
        let err = read_instance(text).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }
}
