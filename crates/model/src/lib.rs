//! Problem model for virtual-machine resource allocation on heterogeneous
//! distributed platforms.
//!
//! This crate implements the formal model of
//! *Casanova, Stillwell, Vivien — "Virtual Machine Resource Allocation for
//! Service Hosting on Heterogeneous Distributed Platforms"* (IPDPS 2012,
//! INRIA RR-7772):
//!
//! * a platform is a set of [`Node`]s, each described by an **elementary**
//!   and an **aggregate** capacity vector over `D` resource dimensions;
//! * a [`Service`] is described by rigid **requirements** and fluid
//!   **needs**, each again an (elementary, aggregate) vector pair;
//! * a service running at *yield* `y ∈ [0, 1]` consumes
//!   `requirement + y × need` in every dimension;
//! * the optimisation objective is to **maximise the minimum yield** over
//!   all services.
//!
//! The crate also provides the shared *achieved-yield evaluator*
//! ([`evaluate_placement`]): given a mapping of services to nodes it computes
//! the exact per-node max–min yield by water-filling, honouring both
//! elementary caps and aggregate capacities. Every algorithm in the
//! workspace is scored through this single evaluator so that comparisons
//! between heuristics are meaningful.

#![deny(missing_docs)]
// Index-based loops are kept where they mirror the paper's subscript
// notation (d over dimensions, i/j over rows/services) or index several
// arrays in lockstep.
#![allow(clippy::needless_range_loop)]

mod error;
mod instance;
pub mod io;
mod node;
mod placement;
mod request;
mod service;
mod vector;
mod yield_eval;

pub use error::ModelError;
pub use instance::{InstanceStats, ProblemInstance};
pub use node::Node;
pub use placement::{Placement, Solution};
pub use request::{
    AllocRequest, AllocResponse, RequestKind, RequestOutcome, ResponsePolicy, WorkloadDelta,
};
pub use service::Service;
pub use vector::ResourceVector;
pub use yield_eval::{evaluate_placement, node_max_min_level, NodeYield};

/// Names for the two resource dimensions used throughout the paper's
/// evaluation section. The model itself supports arbitrary `D`.
pub mod dims {
    /// CPU dimension index in two-dimensional instances.
    pub const CPU: usize = 0;
    /// Memory dimension index in two-dimensional instances.
    pub const MEM: usize = 1;
}

/// Numeric tolerance used for feasibility comparisons throughout the
/// workspace. Capacities and demands live in `[0, 1]`-ish scales, so an
/// absolute epsilon is appropriate.
pub const EPSILON: f64 = 1e-9;
