use crate::ModelError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A non-negative resource quantity per dimension.
///
/// Used for node capacities, service requirements/needs, loads and
/// allocations. All arithmetic helpers are component-wise. The number of
/// dimensions `D` is small (the paper's evaluation uses `D = 2`), so the
/// representation is a plain boxed slice.
#[derive(Clone, PartialEq)]
pub struct ResourceVector {
    values: Box<[f64]>,
}

impl ResourceVector {
    /// Builds a vector from the given components.
    pub fn new(values: impl Into<Vec<f64>>) -> Self {
        ResourceVector {
            values: values.into().into_boxed_slice(),
        }
    }

    /// An all-zero vector with `dims` dimensions.
    pub fn zeros(dims: usize) -> Self {
        ResourceVector {
            values: vec![0.0; dims].into_boxed_slice(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Read-only view of the components.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all components.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest component (0.0 for an empty vector).
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Smallest component (0.0 for an empty vector).
    #[inline]
    pub fn min_component(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// True if every component is zero (within `tol`).
    #[inline]
    pub fn is_zero(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| v.abs() <= tol)
    }

    /// Component-wise `self + scale × other`. Dimensions must match.
    pub fn add_scaled(&self, other: &ResourceVector, scale: f64) -> ResourceVector {
        debug_assert_eq!(self.dims(), other.dims());
        ResourceVector::new(
            self.values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| a + scale * b)
                .collect::<Vec<_>>(),
        )
    }

    /// In-place component-wise `self += other`.
    pub fn add_assign(&mut self, other: &ResourceVector) {
        debug_assert_eq!(self.dims(), other.dims());
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }

    /// In-place uniform scaling `self *= factor`.
    pub fn scale_assign(&mut self, factor: f64) {
        for a in self.values.iter_mut() {
            *a *= factor;
        }
    }

    /// In-place component-wise `self -= other`.
    pub fn sub_assign(&mut self, other: &ResourceVector) {
        debug_assert_eq!(self.dims(), other.dims());
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a -= b;
        }
    }

    /// True if `self ≤ other + tol` component-wise.
    #[inline]
    pub fn le(&self, other: &ResourceVector, tol: f64) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| *a <= *b + tol)
    }

    /// Validates that every component is finite and non-negative.
    pub fn validate(&self, what: &'static str) -> Result<(), ModelError> {
        for &v in self.values.iter() {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidValue { what, value: v });
            }
        }
        Ok(())
    }
}

impl Index<usize> for ResourceVector {
    type Output = f64;
    #[inline]
    fn index(&self, d: usize) -> &f64 {
        &self.values[d]
    }
}

impl IndexMut<usize> for ResourceVector {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut f64 {
        &mut self.values[d]
    }
}

impl fmt::Debug for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for ResourceVector {
    fn from(v: Vec<f64>) -> Self {
        ResourceVector::new(v)
    }
}

impl From<&[f64]> for ResourceVector {
    fn from(v: &[f64]) -> Self {
        ResourceVector::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let v = ResourceVector::new(vec![0.5, 1.0]);
        assert_eq!(v.dims(), 2);
        assert_eq!(v[0], 0.5);
        assert_eq!(v[1], 1.0);
        assert_eq!(v.sum(), 1.5);
        assert_eq!(v.max_component(), 1.0);
        assert_eq!(v.min_component(), 0.5);
        assert!(!v.is_zero(1e-12));
        assert!(ResourceVector::zeros(3).is_zero(0.0));
    }

    #[test]
    fn add_scaled_combines_requirement_and_need() {
        let req = ResourceVector::new(vec![0.2, 0.4]);
        let need = ResourceVector::new(vec![0.6, 0.0]);
        let at_half = req.add_scaled(&need, 0.5);
        assert!((at_half[0] - 0.5).abs() < 1e-12);
        assert!((at_half[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn le_uses_tolerance() {
        let a = ResourceVector::new(vec![1.0 + 1e-12]);
        let b = ResourceVector::new(vec![1.0]);
        assert!(a.le(&b, 1e-9));
        assert!(!a.le(&b, 0.0));
    }

    #[test]
    fn validate_rejects_negative_and_nan() {
        assert!(ResourceVector::new(vec![0.0, 0.1]).validate("x").is_ok());
        assert!(ResourceVector::new(vec![-0.1]).validate("x").is_err());
        assert!(ResourceVector::new(vec![f64::NAN]).validate("x").is_err());
        assert!(ResourceVector::new(vec![f64::INFINITY])
            .validate("x")
            .is_err());
    }

    #[test]
    fn add_and_sub_assign_roundtrip() {
        let mut a = ResourceVector::new(vec![0.3, 0.7]);
        let b = ResourceVector::new(vec![0.1, 0.2]);
        a.add_assign(&b);
        assert!((a[0] - 0.4).abs() < 1e-12);
        a.sub_assign(&b);
        assert!((a[0] - 0.3).abs() < 1e-12);
        assert!((a[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_vector_extrema() {
        let v = ResourceVector::zeros(0);
        assert_eq!(v.max_component(), 0.0);
        assert_eq!(v.min_component(), 0.0);
        assert_eq!(v.sum(), 0.0);
    }
}
