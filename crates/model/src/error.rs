use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Two vectors that must share a dimension count do not.
    DimensionMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Number of dimensions actually provided.
        actual: usize,
    },
    /// A capacity, requirement or need was negative or not finite.
    InvalidValue {
        /// Human-readable description of the offending field.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An elementary vector exceeds its aggregate counterpart in some
    /// dimension (a single element can never provide more than the total).
    ElementaryExceedsAggregate {
        /// Description of the object ("node 3", "service 17 requirement"…).
        what: String,
        /// Dimension in which the violation occurs.
        dim: usize,
    },
    /// The instance has no nodes or no services.
    EmptyInstance,
    /// A placement refers to a node index outside the instance.
    NodeOutOfRange {
        /// Service whose placement is invalid.
        service: usize,
        /// The invalid node index.
        node: usize,
    },
    /// A workload delta refers to a service index outside the instance.
    ServiceOutOfRange {
        /// The invalid service index.
        service: usize,
        /// Number of services in the instance.
        len: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            ModelError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            ModelError::ElementaryExceedsAggregate { what, dim } => {
                write!(f, "{what}: elementary exceeds aggregate in dimension {dim}")
            }
            ModelError::EmptyInstance => write!(f, "instance has no nodes or no services"),
            ModelError::NodeOutOfRange { service, node } => {
                write!(f, "service {service} placed on nonexistent node {node}")
            }
            ModelError::ServiceOutOfRange { service, len } => {
                write!(
                    f,
                    "delta refers to service {service} but the instance has {len}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}
