//! Placement and resource-allocation algorithms for heterogeneous
//! virtualized platforms.
//!
//! This crate implements every algorithm evaluated in
//! *Casanova, Stillwell, Vivien — IPDPS 2012*:
//!
//! | Paper name | Here |
//! |------------|------|
//! | greedy S1–S7 × P1–P7 | [`greedy::GreedyAlgorithm`] |
//! | METAGREEDY | [`greedy::MetaGreedy`] |
//! | VP First/Best-Fit, Permutation/Choose-Pack | [`vp`] |
//! | METAVP (33 strategies) | [`vp::MetaVp::metavp`] |
//! | heterogeneous HVP variants, METAHVP (253) | [`vp::MetaVp::metahvp`] |
//! | METAHVPLIGHT (60) | [`vp::MetaVp::metahvp_light`] |
//! | RRND / RRNZ | [`rounding::RandomizedRounding`] |
//! | exact MILP (small instances) | [`exact::ExactMilp`] |
//!
//! All algorithms consume a [`vmplace_model::ProblemInstance`] and produce an
//! `Option<Solution>` — `None` encodes *failure* (some rigid requirement
//! cannot be met), matching the paper's success-rate metric. Achieved yields
//! are always computed by the shared water-filling evaluator so that
//! solution quality is comparable across algorithms.

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the paper's subscript
// notation (d over dimensions, i/j over rows/services) or index several
// arrays in lockstep.
#![allow(clippy::needless_range_loop)]

pub mod algorithm;
pub mod engine;
pub mod exact;
pub mod greedy;
pub mod portfolio;
pub mod rounding;
pub mod vp;

pub use algorithm::Algorithm;
pub use engine::{EngineHandle, EngineRun};
pub use exact::ExactMilp;
pub use greedy::{GreedyAlgorithm, GreedyScratch, MetaGreedy, NodePicker, ServiceSort};
pub use portfolio::{MemberOutcome, MemberReport, PortfolioReport, SolveCtx};
pub use rounding::RandomizedRounding;
pub use vp::{
    binary_search_yield, telemetry_execution_order, BinSort, ItemSort, MetaVp, PackScratch,
    PackingHeuristic, SortOrder, VectorMetric, VpAlgorithm, VpProblem,
};
