//! Vector-to-scalar metrics and the 11 sorting strategies (§3.5).
//!
//! "The largest source of difficulty in designing vector-packing heuristics
//! is that there is no single unambiguous definition of vector size" — the
//! paper therefore evaluates five mappings (MAX, SUM, MAXRATIO,
//! MAXDIFFERENCE, plus full lexicographic comparison) in both directions,
//! and the option not to sort: 11 strategies for items and, in the
//! heterogeneous algorithms, the same 11 for bins.

use super::VpProblem;
use std::cmp::Ordering;

/// Scalar "size" metric of a vector (or LEX for full lexicographic order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorMetric {
    /// Largest component.
    Max,
    /// Sum of components.
    Sum,
    /// Ratio of largest to smallest component (∞-guarded).
    MaxRatio,
    /// Difference between largest and smallest component.
    MaxDifference,
    /// Lexicographic comparison, dimension 0 first (CPU before memory in
    /// the paper's two-dimensional experiments).
    Lex,
}

/// Sorting direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

impl VectorMetric {
    /// All five metrics.
    pub const ALL: [VectorMetric; 5] = [
        VectorMetric::Max,
        VectorMetric::Sum,
        VectorMetric::MaxRatio,
        VectorMetric::MaxDifference,
        VectorMetric::Lex,
    ];

    /// Scalar value of the metric (`Lex` has no scalar; callers must use
    /// [`VectorMetric::compare`] instead, which all sorting here does).
    pub fn scalar(&self, v: &[f64]) -> f64 {
        let mut mx = f64::NEG_INFINITY;
        let mut mn = f64::INFINITY;
        let mut sum = 0.0;
        for &x in v {
            mx = mx.max(x);
            mn = mn.min(x);
            sum += x;
        }
        match self {
            VectorMetric::Max => mx,
            VectorMetric::Sum => sum,
            VectorMetric::MaxRatio => {
                if mn.abs() < 1e-12 {
                    mx / 1e-12
                } else {
                    mx / mn
                }
            }
            VectorMetric::MaxDifference => mx - mn,
            VectorMetric::Lex => 0.0,
        }
    }

    /// Compares two vectors under this metric (ascending orientation).
    pub fn compare(&self, a: &[f64], b: &[f64]) -> Ordering {
        match self {
            VectorMetric::Lex => {
                for (x, y) in a.iter().zip(b) {
                    match x.partial_cmp(y).unwrap_or(Ordering::Equal) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            _ => self
                .scalar(a)
                .partial_cmp(&self.scalar(b))
                .unwrap_or(Ordering::Equal),
        }
    }

    /// Short label used in heuristic names.
    pub fn label(&self) -> &'static str {
        match self {
            VectorMetric::Max => "MAX",
            VectorMetric::Sum => "SUM",
            VectorMetric::MaxRatio => "MAXRATIO",
            VectorMetric::MaxDifference => "MAXDIFF",
            VectorMetric::Lex => "LEX",
        }
    }
}

/// Item ordering strategy: one of the 5 metrics × 2 directions, or natural
/// order (`None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ItemSort(pub Option<(VectorMetric, SortOrder)>);

/// Bin ordering strategy (heterogeneous algorithms sort bins by capacity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinSort(pub Option<(VectorMetric, SortOrder)>);

/// Fills `idx` with `0..count` sorted under `strategy`, using `keys` as
/// scratch for cached scalar metric values — no per-call allocation once
/// the two buffers have grown to size.
///
/// Scalar metrics are evaluated once per vector (the seed code recomputed
/// them inside every comparison); `Lex` compares the slices directly.
fn sorted_indices_into<'v, F>(
    count: usize,
    vec_of: F,
    strategy: Option<(VectorMetric, SortOrder)>,
    idx: &mut Vec<usize>,
    keys: &mut Vec<f64>,
) where
    F: Fn(usize) -> &'v [f64],
{
    idx.clear();
    idx.extend(0..count);
    let Some((metric, order)) = strategy else {
        return;
    };
    if metric == VectorMetric::Lex {
        idx.sort_by(|&a, &b| {
            let o = metric.compare(vec_of(a), vec_of(b));
            let o = match order {
                SortOrder::Ascending => o,
                SortOrder::Descending => o.reverse(),
            };
            o.then(a.cmp(&b)) // stable & deterministic
        });
        return;
    }
    keys.clear();
    keys.extend((0..count).map(|i| metric.scalar(vec_of(i))));
    idx.sort_by(|&a, &b| {
        let o = keys[a].partial_cmp(&keys[b]).unwrap_or(Ordering::Equal);
        let o = match order {
            SortOrder::Ascending => o,
            SortOrder::Descending => o.reverse(),
        };
        o.then(a.cmp(&b))
    });
}

impl ItemSort {
    /// Natural order.
    pub const NONE: ItemSort = ItemSort(None);

    /// All 11 strategies (5 metrics × 2 directions + natural).
    pub fn all() -> Vec<ItemSort> {
        let mut out = vec![ItemSort::NONE];
        for m in VectorMetric::ALL {
            for o in [SortOrder::Descending, SortOrder::Ascending] {
                out.push(ItemSort(Some((m, o))));
            }
        }
        out
    }

    /// Item indices in packing order, keyed on aggregate size at the
    /// problem's target yield.
    pub fn order(&self, vp: &VpProblem) -> Vec<usize> {
        let mut idx = Vec::new();
        let mut keys = Vec::new();
        self.order_into(vp, &mut idx, &mut keys);
        idx
    }

    /// As [`ItemSort::order`], writing into caller-provided buffers
    /// (allocation-free once the buffers have grown to size).
    pub fn order_into(&self, vp: &VpProblem, idx: &mut Vec<usize>, keys: &mut Vec<f64>) {
        sorted_indices_into(vp.num_items(), |j| vp.item_agg(j), self.0, idx, keys);
    }

    /// Label used in heuristic names.
    pub fn label(&self) -> String {
        match self.0 {
            None => "NONE".to_string(),
            Some((m, SortOrder::Ascending)) => format!("{}_ASC", m.label()),
            Some((m, SortOrder::Descending)) => format!("{}_DESC", m.label()),
        }
    }
}

impl BinSort {
    /// Natural order.
    pub const NONE: BinSort = BinSort(None);

    /// All 11 strategies.
    pub fn all() -> Vec<BinSort> {
        let mut out = vec![BinSort::NONE];
        for m in VectorMetric::ALL {
            for o in [SortOrder::Ascending, SortOrder::Descending] {
                out.push(BinSort(Some((m, o))));
            }
        }
        out
    }

    /// Bin indices in packing order, keyed on aggregate capacity.
    pub fn order(&self, vp: &VpProblem) -> Vec<usize> {
        let mut idx = Vec::new();
        let mut keys = Vec::new();
        self.order_into(vp, &mut idx, &mut keys);
        idx
    }

    /// As [`BinSort::order`], writing into caller-provided buffers
    /// (allocation-free once the buffers have grown to size).
    pub fn order_into(&self, vp: &VpProblem, idx: &mut Vec<usize>, keys: &mut Vec<f64>) {
        sorted_indices_into(
            vp.num_bins(),
            |h| vp.instance.nodes()[h].aggregate.as_slice(),
            self.0,
            idx,
            keys,
        );
    }

    /// Label used in heuristic names.
    pub fn label(&self) -> String {
        match self.0 {
            None => "NAT".to_string(),
            Some((m, SortOrder::Ascending)) => format!("CAP_{}_ASC", m.label()),
            Some((m, SortOrder::Descending)) => format!("CAP_{}_DESC", m.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::small_hetero;
    use crate::vp::VpProblem;

    #[test]
    fn eleven_strategies_each() {
        assert_eq!(ItemSort::all().len(), 11);
        assert_eq!(BinSort::all().len(), 11);
    }

    #[test]
    fn metric_scalars() {
        let v = [0.2, 0.8];
        assert_eq!(VectorMetric::Max.scalar(&v), 0.8);
        assert!((VectorMetric::Sum.scalar(&v) - 1.0).abs() < 1e-12);
        assert!((VectorMetric::MaxRatio.scalar(&v) - 4.0).abs() < 1e-12);
        assert!((VectorMetric::MaxDifference.scalar(&v) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_min_ratio_is_guarded() {
        let v = [0.0, 0.5];
        assert!(VectorMetric::MaxRatio.scalar(&v).is_finite());
        assert!(VectorMetric::MaxRatio.scalar(&v) > 1e9);
    }

    #[test]
    fn lex_compares_first_dimension_first() {
        assert_eq!(
            VectorMetric::Lex.compare(&[0.1, 0.9], &[0.2, 0.0]),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            VectorMetric::Lex.compare(&[0.2, 0.1], &[0.2, 0.3]),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn descending_max_puts_biggest_item_first() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 1.0);
        let order = ItemSort(Some((VectorMetric::Max, SortOrder::Descending))).order(&vp);
        // Largest aggregate CPU at yield 1: item 0 (0.2+0.8=1.0).
        assert_eq!(order[0], 0);
    }

    #[test]
    fn bin_sort_ascending_sum_puts_smallest_bin_first() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        let order = BinSort(Some((VectorMetric::Sum, SortOrder::Ascending))).order(&vp);
        // Capacity sums: node0 3.2+1.0=4.2, node1 2.0+0.5=2.5, node2 1.2+0.8=2.0.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn natural_order_is_identity() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.5);
        assert_eq!(ItemSort::NONE.order(&vp), vec![0, 1, 2, 3, 4]);
        assert_eq!(BinSort::NONE.order(&vp), vec![0, 1, 2]);
    }
}
