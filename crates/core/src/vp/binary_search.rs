//! The binary search on yield that turns any packing heuristic into a
//! minimum-yield maximiser (§3.5).

use super::{PackingHeuristic, VpProblem};
use crate::algorithm::Algorithm;
use vmplace_model::{evaluate_placement, Placement, ProblemInstance, Solution};

/// The paper's binary-search resolution (0.0001).
pub const DEFAULT_RESOLUTION: f64 = 1e-4;

/// Runs the binary search for the largest uniform yield at which
/// `heuristic` finds a packing. Returns `None` when even the rigid
/// requirements (`λ = 0`) cannot be packed.
///
/// The final placement is scored with the shared water-filling evaluator,
/// which can only improve on the search's lower bound (e.g. services capped
/// by elementary limits free aggregate capacity for the others).
pub fn binary_search_yield<H: PackingHeuristic + ?Sized>(
    instance: &ProblemInstance,
    heuristic: &H,
    resolution: f64,
) -> Option<Solution> {
    let best = binary_search_placement(instance, heuristic, resolution)?;
    evaluate_placement(instance, &best.1)
}

/// As [`binary_search_yield`] but returns the raw searched yield and
/// placement without re-evaluation (used by the error-mitigation pipeline,
/// which needs the *target* allocations computed from estimated needs).
pub fn binary_search_placement<H: PackingHeuristic + ?Sized>(
    instance: &ProblemInstance,
    heuristic: &H,
    resolution: f64,
) -> Option<(f64, Placement)> {
    let p0 = heuristic.pack(&VpProblem::new(instance, 0.0))?;
    // Cheap upper probe: many under-constrained instances pack at yield 1.
    if let Some(p1) = heuristic.pack(&VpProblem::new(instance, 1.0)) {
        return Some((1.0, p1));
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut best = p0;
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        match heuristic.pack(&VpProblem::new(instance, mid)) {
            Some(p) => {
                best = p;
                lo = mid;
            }
            None => hi = mid,
        }
    }
    Some((lo, best))
}

/// A packing heuristic lifted to a full [`Algorithm`] via binary search.
pub struct VpAlgorithm<H> {
    /// The packing heuristic.
    pub heuristic: H,
    /// Binary-search resolution.
    pub resolution: f64,
}

impl<H: PackingHeuristic> VpAlgorithm<H> {
    /// Wraps `heuristic` with the paper's default resolution.
    pub fn new(heuristic: H) -> Self {
        VpAlgorithm {
            heuristic,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

impl<H: PackingHeuristic> Algorithm for VpAlgorithm<H> {
    fn name(&self) -> String {
        self.heuristic.name()
    }

    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        binary_search_yield(instance, &self.heuristic, self.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::{BinSort, FirstFit, ItemSort, SortOrder, VectorMetric};
    use vmplace_model::{Node, ProblemInstance, Service};

    fn ff() -> FirstFit {
        FirstFit {
            item_sort: ItemSort(Some((VectorMetric::Max, SortOrder::Descending))),
            bin_sort: BinSort::NONE,
        }
    }

    #[test]
    fn figure1_single_service_reaches_yield_one() {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let sol = binary_search_yield(&inst, &ff(), DEFAULT_RESOLUTION).unwrap();
        // First-fit at λ=1 needs elementary 1.0 → node B works; search finds 1.
        assert!((sol.min_yield - 1.0).abs() < 1e-9);
    }

    #[test]
    fn search_respects_resolution() {
        // A single node and service where the achievable yield is 0.37:
        // CPU capacity 0.5 aggregate; req 0.13, need 1.0 → λ* = 0.37.
        let nodes = vec![Node::multicore(1, 0.5, 1.0)];
        let services = vec![Service::new(
            vec![0.13, 0.1],
            vec![0.13, 0.1],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let (lambda, _) = binary_search_placement(&inst, &ff(), 1e-4).unwrap();
        assert!((lambda - 0.37).abs() < 1e-3, "lambda = {lambda}");
        // And the evaluator recovers the exact value.
        let sol = binary_search_yield(&inst, &ff(), 1e-4).unwrap();
        assert!((sol.min_yield - 0.37).abs() < 1e-9, "{}", sol.min_yield);
    }

    #[test]
    fn evaluator_can_exceed_searched_lambda() {
        let inst = small_hetero();
        let (lambda, placement) = binary_search_placement(&inst, &ff(), 1e-4).unwrap();
        let sol = evaluate_placement(&inst, &placement).unwrap();
        assert!(sol.min_yield >= lambda - 1e-9);
    }

    #[test]
    fn infeasible_at_zero_returns_none() {
        let nodes = vec![Node::multicore(1, 0.5, 0.1)];
        let services = vec![Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(binary_search_yield(&inst, &ff(), 1e-4).is_none());
    }

    #[test]
    fn tight_instance_gets_partial_yield() {
        let inst = tight_memory();
        let sol = binary_search_yield(&inst, &ff(), 1e-4).unwrap();
        // Feasible at 0, infeasible at 1 → strictly between.
        assert!(
            sol.min_yield > 0.0 && sol.min_yield < 1.0,
            "{}",
            sol.min_yield
        );
    }
}
