//! The binary search on yield that turns any packing heuristic into a
//! minimum-yield maximiser (§3.5), plus the incumbent-aware member search
//! used by the portfolio engine.

use super::{PackScratch, PackingHeuristic, VpProblem};
use crate::algorithm::Algorithm;
use crate::portfolio::{MemberOutcome, SolveCtx};
use std::time::Instant;
use vmplace_model::{evaluate_placement, Placement, ProblemInstance, Solution};
use vmplace_par::Incumbent;

/// The paper's binary-search resolution (0.0001).
pub const DEFAULT_RESOLUTION: f64 = 1e-4;

/// Runs the binary search for the largest uniform yield at which
/// `heuristic` finds a packing. Returns `None` when even the rigid
/// requirements (`λ = 0`) cannot be packed.
///
/// The final placement is scored with the shared water-filling evaluator,
/// which can only improve on the search's lower bound (e.g. services capped
/// by elementary limits free aggregate capacity for the others).
pub fn binary_search_yield<H: PackingHeuristic + ?Sized>(
    instance: &ProblemInstance,
    heuristic: &H,
    resolution: f64,
) -> Option<Solution> {
    let best = binary_search_placement(instance, heuristic, resolution)?;
    evaluate_placement(instance, &best.1)
}

/// As [`binary_search_yield`] but returns the raw searched yield and
/// placement without re-evaluation (used by the error-mitigation pipeline,
/// which needs the *target* allocations computed from estimated needs).
pub fn binary_search_placement<H: PackingHeuristic + ?Sized>(
    instance: &ProblemInstance,
    heuristic: &H,
    resolution: f64,
) -> Option<(f64, Placement)> {
    let mut scratch = PackScratch::new();
    let mut vp = VpProblem::new(instance, 0.0);
    let run = search_member(
        &mut vp,
        heuristic,
        resolution,
        &mut scratch,
        &MemberGuards::unguarded(),
    );
    match run.outcome {
        MemberOutcome::Solved => Some((run.lo, run.placement?)),
        _ => None,
    }
}

/// Cross-member coordination for one engine run: the shared incumbent,
/// the optional deadline, and the optional warm-start hint.
/// [`MemberGuards::unguarded`] reproduces the plain standalone search.
pub(crate) struct MemberGuards<'a> {
    /// The shared incumbent, with this member's roster index; `None`
    /// disables pruning.
    pub incumbent: Option<(&'a Incumbent, usize)>,
    /// Wall-clock deadline checked at probe boundaries.
    pub deadline: Option<Instant>,
    /// Previously achieved yield used to seed the bisection bracket: the
    /// search probes a window of half-width [`WARM_WINDOW`] around the
    /// hint before bisecting, which collapses the bracket to `2·δ` when
    /// the new optimum stayed near the old one.
    pub warm: Option<f64>,
}

/// Half-width of the warm-start probing window around the hint. When the
/// optimum stayed inside the window, the two edge probes replace the λ = 0
/// and λ = 1 probes *and* shrink the initial bracket from `[0, 1]` to
/// `2 × WARM_WINDOW` — about `log₂(1 / (2·δ)) ≈ 6.6` bisection probes
/// saved on top of the two replaced ones. The width trades hit rate
/// against bracket size: re-solves and non-binding demand changes move
/// the optimum (much) less than 0.5%, the common case under service
/// traffic.
pub(crate) const WARM_WINDOW: f64 = 0.005;

impl MemberGuards<'static> {
    pub(crate) fn unguarded() -> Self {
        MemberGuards {
            incumbent: None,
            deadline: None,
            warm: None,
        }
    }
}

impl MemberGuards<'_> {
    fn dominated(&self, upper: f64) -> bool {
        match self.incumbent {
            Some((inc, member)) => inc.dominates(upper, member),
            None => false,
        }
    }

    fn publish(&self, lo: f64) {
        if let Some((inc, member)) = self.incumbent {
            inc.publish(lo, member);
        }
    }

    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Result of one member's guarded binary search.
pub(crate) struct MemberRun {
    pub outcome: MemberOutcome,
    /// Best proven yield (valid when `placement` is set).
    pub lo: f64,
    /// Placement achieving `lo`, when any probe succeeded.
    pub placement: Option<Placement>,
    /// Packing probes attempted.
    pub probes: u32,
}

impl MemberRun {
    fn ended(outcome: MemberOutcome, probes: u32) -> MemberRun {
        MemberRun {
            outcome,
            lo: 0.0,
            placement: None,
            probes,
        }
    }
}

/// One member's binary search with incumbent pruning and deadline checks.
///
/// Probe sequence and bracket updates are *identical* to the standalone
/// search; the guards only ever (a) publish this member's monotonically
/// growing lower bound, and (b) abandon the member once the incumbent
/// strictly dominates its remaining bracket (see
/// [`Incumbent::dominates`]) — which can never affect the member that ends
/// up winning, so engine results are independent of scheduling.
pub(crate) fn search_member<H: PackingHeuristic + ?Sized>(
    vp: &mut VpProblem,
    heuristic: &H,
    resolution: f64,
    scratch: &mut PackScratch,
    guards: &MemberGuards,
) -> MemberRun {
    let mut probes = 0u32;
    if guards.dominated(1.0) {
        return MemberRun::ended(MemberOutcome::Pruned, probes);
    }
    if guards.expired() {
        return MemberRun::ended(MemberOutcome::TimedOut, probes);
    }

    let warm = guards
        .warm
        .map(|h| h.clamp(0.0, 1.0))
        .filter(|&h| h > 0.0 && h < 1.0);

    let mut lo;
    let mut hi = 1.0f64;
    let mut best;

    if let Some(h) = warm {
        // Warm start: bracket the hint with two probes. The lower edge
        // goes first — its success simultaneously proves a yield of
        // `h − δ` *and* rigid-requirement feasibility, replacing the λ = 0
        // probe; when the upper edge then fails, the λ = 1 probe is
        // subsumed too and bisection starts from a `2·δ` bracket instead
        // of `[0, 1]`. When the optimum moved outside the window the
        // search degrades to a slightly offset cold bisection. Purely a
        // probe-sequence change: `lo` stays a proven yield and `hi` an
        // observed failure, identically on every thread count.
        let a = (h - WARM_WINDOW).max(0.0);
        vp.retarget(a);
        probes += 1;
        if heuristic.pack_with(vp, scratch) {
            best = scratch.take_placement();
            lo = a;
            if a > 0.0 {
                guards.publish(lo);
            }
            // Upper window edge (or λ = 1 when the hint sits next to it).
            let b = (h + WARM_WINDOW).min(1.0);
            if guards.dominated(hi) {
                return MemberRun {
                    outcome: MemberOutcome::Pruned,
                    lo,
                    placement: Some(best),
                    probes,
                };
            }
            if guards.expired() {
                return MemberRun {
                    outcome: MemberOutcome::TimedOut,
                    lo,
                    placement: Some(best),
                    probes,
                };
            }
            vp.retarget(b);
            probes += 1;
            if heuristic.pack_with(vp, scratch) {
                std::mem::swap(&mut best, &mut scratch.placement);
                lo = b;
                guards.publish(lo);
                if b >= 1.0 {
                    return MemberRun {
                        outcome: MemberOutcome::Solved,
                        lo: 1.0,
                        placement: Some(best),
                        probes,
                    };
                }
                // The yield improved past the window (e.g. departures
                // freed capacity): check the cheap λ = 1 probe before
                // bisecting `[b, 1]`.
                if !guards.expired() {
                    vp.retarget(1.0);
                    probes += 1;
                    if heuristic.pack_with(vp, scratch) {
                        guards.publish(1.0);
                        return MemberRun {
                            outcome: MemberOutcome::Solved,
                            lo: 1.0,
                            placement: Some(scratch.take_placement()),
                            probes,
                        };
                    }
                }
            } else {
                hi = b;
            }
        } else if a == 0.0 {
            // The window's lower edge *was* the rigid-requirement probe.
            return MemberRun::ended(MemberOutcome::Failed, probes);
        } else {
            // Window missed low: fall back to the rigid-requirement probe
            // and bisect `[0, h − δ)`.
            hi = a;
            if guards.expired() {
                return MemberRun::ended(MemberOutcome::TimedOut, probes);
            }
            vp.retarget(0.0);
            probes += 1;
            if !heuristic.pack_with(vp, scratch) {
                return MemberRun::ended(MemberOutcome::Failed, probes);
            }
            best = scratch.take_placement();
            lo = 0.0;
        }
    } else {
        // Cold start. Feasibility of the rigid requirements (λ = 0):
        // infeasible members fail after this single probe, exactly like
        // the seed fold's first sweep. Constructors keep the item tables
        // consistent with `vp.lambda`, so a problem already at 0 (the
        // common case — workers build with λ = 0) needs no rebuild.
        if vp.lambda != 0.0 {
            vp.retarget(0.0);
        }
        probes += 1;
        if !heuristic.pack_with(vp, scratch) {
            return MemberRun::ended(MemberOutcome::Failed, probes);
        }
        best = scratch.take_placement();
        lo = 0.0;

        // Cheap upper probe: many under-constrained instances pack at
        // yield 1 — and once any member publishes 1.0, every later member
        // is tie-pruned before doing any work at all.
        if !guards.expired() {
            vp.retarget(1.0);
            probes += 1;
            if heuristic.pack_with(vp, scratch) {
                guards.publish(1.0);
                return MemberRun {
                    outcome: MemberOutcome::Solved,
                    lo: 1.0,
                    placement: Some(scratch.take_placement()),
                    probes,
                };
            }
        }
    }

    while hi - lo > resolution {
        if guards.dominated(hi) {
            return MemberRun {
                outcome: MemberOutcome::Pruned,
                lo,
                placement: Some(best),
                probes,
            };
        }
        if guards.expired() {
            return MemberRun {
                outcome: MemberOutcome::TimedOut,
                lo,
                placement: Some(best),
                probes,
            };
        }
        let mid = 0.5 * (lo + hi);
        vp.retarget(mid);
        probes += 1;
        if heuristic.pack_with(vp, scratch) {
            // Keep the successful placement; the stale `best` buffer goes
            // back into the scratch for the next probe to overwrite.
            std::mem::swap(&mut best, &mut scratch.placement);
            lo = mid;
            guards.publish(lo);
        } else {
            hi = mid;
        }
    }
    MemberRun {
        outcome: MemberOutcome::Solved,
        lo,
        placement: Some(best),
        probes,
    }
}

/// A packing heuristic lifted to a full [`Algorithm`] via binary search.
pub struct VpAlgorithm<H> {
    /// The packing heuristic.
    pub heuristic: H,
    /// Binary-search resolution.
    pub resolution: f64,
    label: String,
}

impl<H: PackingHeuristic> VpAlgorithm<H> {
    /// Wraps `heuristic` with the paper's default resolution.
    pub fn new(heuristic: H) -> Self {
        Self::with_resolution(heuristic, DEFAULT_RESOLUTION)
    }

    /// Wraps `heuristic` with an explicit binary-search resolution.
    pub fn with_resolution(heuristic: H, resolution: f64) -> Self {
        let label = heuristic.describe();
        VpAlgorithm {
            heuristic,
            resolution,
            label,
        }
    }
}

impl<H: PackingHeuristic> Algorithm for VpAlgorithm<H> {
    fn name(&self) -> &str {
        &self.label
    }

    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        // Single member: reuse the context's caller-side scratch, honour
        // the deadline and warm hint, nothing to prune against.
        let deadline = ctx.deadline_from_now();
        let warm = ctx.take_warm_hint();
        let mut vp = VpProblem::with_buffers(
            instance,
            0.0,
            std::mem::take(&mut ctx.scratch.vp_elem),
            std::mem::take(&mut ctx.scratch.vp_agg),
        );
        let run = search_member(
            &mut vp,
            &self.heuristic,
            self.resolution,
            &mut ctx.scratch,
            &MemberGuards {
                incumbent: None,
                deadline,
                warm,
            },
        );
        (ctx.scratch.vp_elem, ctx.scratch.vp_agg) = vp.into_buffers();
        match run.outcome {
            MemberOutcome::Solved | MemberOutcome::TimedOut => {
                evaluate_placement(instance, &run.placement?)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::{BinSort, FirstFit, ItemSort, SortOrder, VectorMetric};
    use vmplace_model::{Node, ProblemInstance, Service};

    fn ff() -> FirstFit {
        FirstFit {
            item_sort: ItemSort(Some((VectorMetric::Max, SortOrder::Descending))),
            bin_sort: BinSort::NONE,
        }
    }

    #[test]
    fn figure1_single_service_reaches_yield_one() {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let sol = binary_search_yield(&inst, &ff(), DEFAULT_RESOLUTION).unwrap();
        // First-fit at λ=1 needs elementary 1.0 → node B works; search finds 1.
        assert!((sol.min_yield - 1.0).abs() < 1e-9);
    }

    #[test]
    fn search_respects_resolution() {
        // A single node and service where the achievable yield is 0.37:
        // CPU capacity 0.5 aggregate; req 0.13, need 1.0 → λ* = 0.37.
        let nodes = vec![Node::multicore(1, 0.5, 1.0)];
        let services = vec![Service::new(
            vec![0.13, 0.1],
            vec![0.13, 0.1],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let (lambda, _) = binary_search_placement(&inst, &ff(), 1e-4).unwrap();
        assert!((lambda - 0.37).abs() < 1e-3, "lambda = {lambda}");
        // And the evaluator recovers the exact value.
        let sol = binary_search_yield(&inst, &ff(), 1e-4).unwrap();
        assert!((sol.min_yield - 0.37).abs() < 1e-9, "{}", sol.min_yield);
    }

    #[test]
    fn evaluator_can_exceed_searched_lambda() {
        let inst = small_hetero();
        let (lambda, placement) = binary_search_placement(&inst, &ff(), 1e-4).unwrap();
        let sol = evaluate_placement(&inst, &placement).unwrap();
        assert!(sol.min_yield >= lambda - 1e-9);
    }

    #[test]
    fn infeasible_at_zero_returns_none() {
        let nodes = vec![Node::multicore(1, 0.5, 0.1)];
        let services = vec![Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(binary_search_yield(&inst, &ff(), 1e-4).is_none());
    }

    #[test]
    fn tight_instance_gets_partial_yield() {
        let inst = tight_memory();
        let sol = binary_search_yield(&inst, &ff(), 1e-4).unwrap();
        // Feasible at 0, infeasible at 1 → strictly between.
        assert!(
            sol.min_yield > 0.0 && sol.min_yield < 1.0,
            "{}",
            sol.min_yield
        );
    }

    #[test]
    fn guarded_search_matches_unguarded_when_incumbent_loses() {
        // An incumbent below everything this member achieves must not
        // change the searched yield or the probe count.
        let inst = tight_memory();
        let plain = binary_search_placement(&inst, &ff(), 1e-4).unwrap();

        let inc = Incumbent::new();
        inc.publish(0.01, 0); // weak incumbent from a lower-index member
        let mut scratch = PackScratch::new();
        let mut vp = VpProblem::new(&inst, 0.0);
        let run = search_member(
            &mut vp,
            &ff(),
            1e-4,
            &mut scratch,
            &MemberGuards {
                incumbent: Some((&inc, 5)),
                deadline: None,
                warm: None,
            },
        );
        assert_eq!(run.outcome, MemberOutcome::Solved);
        assert_eq!(run.lo, plain.0);
        assert_eq!(run.placement.unwrap(), plain.1);
    }

    #[test]
    fn dominating_incumbent_prunes_early() {
        let inst = tight_memory();
        // The true yield here is strictly below 1; an incumbent at 1.0 from
        // a lower-index member prunes without a single probe.
        let inc = Incumbent::new();
        inc.publish(1.0, 0);
        let mut scratch = PackScratch::new();
        let mut vp = VpProblem::new(&inst, 0.0);
        let run = search_member(
            &mut vp,
            &ff(),
            1e-4,
            &mut scratch,
            &MemberGuards {
                incumbent: Some((&inc, 3)),
                deadline: None,
                warm: None,
            },
        );
        assert_eq!(run.outcome, MemberOutcome::Pruned);
        assert_eq!(run.probes, 0);
    }

    #[test]
    fn expired_deadline_stops_before_work() {
        let inst = small_hetero();
        let mut scratch = PackScratch::new();
        let mut vp = VpProblem::new(&inst, 0.0);
        let run = search_member(
            &mut vp,
            &ff(),
            1e-4,
            &mut scratch,
            &MemberGuards {
                incumbent: None,
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                warm: None,
            },
        );
        assert_eq!(run.outcome, MemberOutcome::TimedOut);
        assert_eq!(run.probes, 0);
    }

    #[test]
    fn vp_algorithm_caches_its_label() {
        let alg = VpAlgorithm::new(ff());
        assert_eq!(alg.name(), "FF/MAX_DESC/NAT");
        let sol = alg.solve(&small_hetero()).unwrap();
        assert!(sol.min_yield > 0.0);
    }
}
