//! First-Fit vector packing (§3.5.1).

use super::{BinSort, ItemSort, PackScratch, PackingHeuristic, VpProblem};

/// First Fit: items in `item_sort` order, each placed into the first bin
/// (in `bin_sort` order) where it fits.
///
/// The homogeneous variant of §3.5.1 uses an arbitrary (natural) bin order;
/// the heterogeneous HVP variant sorts bins by capacity.
#[derive(Clone, Copy, Debug)]
pub struct FirstFit {
    /// Item ordering strategy.
    pub item_sort: ItemSort,
    /// Bin ordering strategy ([`BinSort::NONE`] = homogeneous variant).
    pub bin_sort: BinSort,
}

impl PackingHeuristic for FirstFit {
    fn describe(&self) -> String {
        format!("FF/{}/{}", self.item_sort.label(), self.bin_sort.label())
    }

    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        let PackScratch {
            loads,
            items,
            bins,
            sort_keys,
            placement,
            ..
        } = scratch;
        self.item_sort.order_into(vp, items, sort_keys);
        self.bin_sort.order_into(vp, bins, sort_keys);
        loads.clear();
        loads.resize(vp.num_bins() * vp.dims(), 0.0);
        placement.reset(vp.num_items());
        for &j in items.iter() {
            let mut placed = false;
            for &h in bins.iter() {
                if vp.fits(j, h, loads) {
                    vp.place(j, h, loads);
                    placement.assign(j, h);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::{SortOrder, VectorMetric};

    #[test]
    fn packs_feasible_instance_at_zero_yield() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        let ff = FirstFit {
            item_sort: ItemSort::NONE,
            bin_sort: BinSort::NONE,
        };
        let p = ff.pack(&vp).expect("feasible at yield 0");
        assert!(p.is_complete());
        assert!(p.feasible_at_yield(&inst, 0.0));
    }

    #[test]
    fn fails_when_aggregate_memory_is_exceeded() {
        let inst = tight_memory();
        // Four services × 0.5 memory on 2×1.0 nodes fits exactly at yield 0…
        let vp = VpProblem::new(&inst, 0.0);
        let ff = FirstFit {
            item_sort: ItemSort::NONE,
            bin_sort: BinSort::NONE,
        };
        assert!(ff.pack(&vp).is_some());
        // …but CPU demands at yield 1 (0.1+0.8 = 0.9 each, 1.8 per forced
        // pair vs 1.0 capacity) do not.
        let vp1 = VpProblem::new(&inst, 1.0);
        assert!(ff.pack(&vp1).is_none());
    }

    #[test]
    fn bin_order_is_respected() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        // Ascending capacity sum: bins in order [2, 1, 0]; the first small
        // item should land on node 2.
        let ff = FirstFit {
            item_sort: ItemSort::NONE,
            bin_sort: BinSort(Some((VectorMetric::Sum, SortOrder::Ascending))),
        };
        let p = ff.pack(&vp).unwrap();
        assert_eq!(p.node_of(0), Some(2));
    }

    #[test]
    fn sorted_items_change_the_packing() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 1.0);
        let natural = FirstFit {
            item_sort: ItemSort::NONE,
            bin_sort: BinSort::NONE,
        }
        .pack(&vp);
        let sorted = FirstFit {
            item_sort: ItemSort(Some((VectorMetric::Max, SortOrder::Descending))),
            bin_sort: BinSort::NONE,
        }
        .pack(&vp);
        // Both either succeed or fail, but when both succeed they need not
        // agree; here we just require determinism and validity.
        if let Some(p) = natural {
            assert!(p.feasible_at_yield(&inst, 1.0));
        }
        if let Some(p) = sorted {
            assert!(p.feasible_at_yield(&inst, 1.0));
        }
    }
}
