//! Permutation-Pack and Choose-Pack (§3.5.2, Leinberger et al.), with the
//! paper's `O(J²·D)` key-mapping improvement.
//!
//! The algorithms are bin-centric: for the current bin, items are selected
//! to *go against the bin's capacity imbalance* — an ideal item has its
//! largest demand in the dimension where the bin has the most headroom.
//!
//! Instead of Leinberger's `D!` permutation lists, each candidate item's
//! descending-size dimension permutation is mapped into the permutation
//! space defined by the bin's dimension ranking (an `O(D)` key), and the
//! lexicographically smallest key wins — `O(J·D)` per selection, `O(J²·D)`
//! per bin sweep, as described in the paper. With a window `w < D` only the
//! first `w` key positions are compared; Choose-Pack compares the windowed
//! key positions as a *set* rather than an ordered tuple.

use super::{BinSort, ItemSort, PackScratch, PackingHeuristic, VpProblem};

/// Permutation-Pack / Choose-Pack.
#[derive(Clone, Copy, Debug)]
pub struct PermutationPack {
    /// Item ordering strategy (tie-break among equal keys).
    pub item_sort: ItemSort,
    /// Bin ordering strategy (HVP variants sort bins by capacity).
    pub bin_sort: BinSort,
    /// Window size `w ∈ [1, D]`: number of leading key positions compared.
    pub window: usize,
    /// `true` for Choose-Pack (windowed positions compared as a set).
    pub choose: bool,
    /// Rank bin dimensions by remaining capacity (§3.5.4 heterogeneous
    /// variant) instead of by current load.
    pub heterogeneous: bool,
}

impl PermutationPack {
    /// Dimension ranking of the current bin: the dimension with the most
    /// headroom first. The homogeneous variant uses ascending load; the
    /// heterogeneous variant descending remaining capacity (identical when
    /// all bins share one capacity vector).
    fn bin_perm(&self, vp: &VpProblem, h: usize, loads: &[f64], out: &mut Vec<usize>) {
        let dims = vp.dims();
        out.clear();
        out.extend(0..dims);
        if self.heterogeneous {
            let node = &vp.instance.nodes()[h];
            out.sort_by(|&a, &b| {
                let ra = node.aggregate[a] - loads[h * dims + a];
                let rb = node.aggregate[b] - loads[h * dims + b];
                rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
            });
        } else {
            out.sort_by(|&a, &b| {
                let la = loads[h * dims + a];
                let lb = loads[h * dims + b];
                la.partial_cmp(&lb).unwrap().then(a.cmp(&b))
            });
        }
    }

    /// The item's key in the bin's permutation space: `key[i]` is the rank
    /// (within the bin's dimension ordering) of the item's `i`-th largest
    /// dimension. The perfectly matched item has key `(0, 1, 2, …)`.
    fn item_key(&self, vp: &VpProblem, j: usize, bin_rank_of_dim: &[usize], key: &mut Vec<usize>) {
        let dims = vp.dims();
        let sizes = vp.item_agg(j);
        key.clear();
        key.extend(0..dims);
        // Descending by item size; ties by dimension index for determinism.
        key.sort_by(|&a, &b| sizes[b].partial_cmp(&sizes[a]).unwrap().then(a.cmp(&b)));
        for slot in key.iter_mut() {
            *slot = bin_rank_of_dim[*slot];
        }
        if self.choose {
            let w = self.window.min(dims);
            key[..w].sort_unstable();
        }
    }
}

impl PackingHeuristic for PermutationPack {
    fn describe(&self) -> String {
        format!(
            "{}{}w{}/{}/{}",
            if self.heterogeneous { "H" } else { "" },
            if self.choose { "CP" } else { "PP" },
            self.window,
            self.item_sort.label(),
            self.bin_sort.label()
        )
    }

    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        let dims = vp.dims();
        let w = self.window.clamp(1, dims);
        let PackScratch {
            loads,
            items,
            bins,
            sort_keys,
            unplaced,
            bin_perm,
            rank_of_dim,
            key,
            best_key,
            placement,
            ..
        } = scratch;
        self.item_sort.order_into(vp, items, sort_keys);
        self.bin_sort.order_into(vp, bins, sort_keys);
        loads.clear();
        loads.resize(vp.num_bins() * dims, 0.0);
        placement.reset(vp.num_items());
        unplaced.clear();
        unplaced.extend_from_slice(items); // maintained in item-sort order
        rank_of_dim.clear();
        rank_of_dim.resize(dims, 0);

        for &h in bins.iter() {
            loop {
                if unplaced.is_empty() {
                    break;
                }
                self.bin_perm(vp, h, loads, bin_perm);
                for (rank, &d) in bin_perm.iter().enumerate() {
                    rank_of_dim[d] = rank;
                }
                // Select the fitting item whose windowed key is smallest;
                // ties resolve to the earliest item in item-sort order.
                let mut best: Option<usize> = None; // position in `unplaced`
                for (pos, &j) in unplaced.iter().enumerate() {
                    if !vp.fits(j, h, loads) {
                        continue;
                    }
                    self.item_key(vp, j, rank_of_dim, key);
                    let better = match best {
                        None => true,
                        Some(_) => key[..w] < best_key[..w],
                    };
                    if better {
                        best = Some(pos);
                        best_key.clear();
                        best_key.extend_from_slice(key);
                        // Perfect match cannot be beaten; stop scanning.
                        if best_key[..w].iter().enumerate().all(|(i, &r)| r == i) {
                            break;
                        }
                    }
                }
                match best {
                    None => break, // nothing fits; move to next bin
                    Some(pos) => {
                        let j = unplaced.remove(pos);
                        vp.place(j, h, loads);
                        placement.assign(j, h);
                    }
                }
            }
        }
        unplaced.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::{SortOrder, VectorMetric};
    use vmplace_model::{Node, ProblemInstance, Service};

    fn pp(window: usize, choose: bool) -> PermutationPack {
        PermutationPack {
            item_sort: ItemSort(Some((VectorMetric::Max, SortOrder::Descending))),
            bin_sort: BinSort::NONE,
            window,
            choose,
            heterogeneous: false,
        }
    }

    #[test]
    fn packs_feasible_instances() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        for (w, c) in [(1, false), (2, false), (2, true)] {
            let p = pp(w, c).pack(&vp).unwrap_or_else(|| panic!("w={w} c={c}"));
            assert!(p.feasible_at_yield(&inst, 0.0));
        }
    }

    #[test]
    fn goes_against_capacity_imbalance() {
        // One bin, CPU-heavy item A and memory-heavy item B, then the bin is
        // CPU-loaded: PP must select the memory-heavy item next.
        let nodes = vec![Node::multicore(1, 1.0, 1.0)];
        let cpu_heavy = Service::rigid(vec![0.6, 0.1], vec![0.6, 0.1]);
        let mem_heavy = Service::rigid(vec![0.1, 0.6], vec![0.1, 0.6]);
        let cpu_heavy2 = Service::rigid(vec![0.3, 0.05], vec![0.3, 0.05]);
        let inst = ProblemInstance::new(nodes, vec![cpu_heavy, cpu_heavy2, mem_heavy]).unwrap();
        let vp = VpProblem::new(&inst, 0.0);
        // Natural item order → first selection by key only.
        let alg = PermutationPack {
            item_sort: ItemSort::NONE,
            bin_sort: BinSort::NONE,
            window: 2,
            choose: false,
            heterogeneous: false,
        };
        let p = alg.pack(&vp).unwrap();
        // All fit on one node (CPU 1.0 = 0.6+0.3+0.1, mem 0.75).
        assert!(p.is_complete());
        assert!(p.feasible_at_yield(&inst, 0.0));
    }

    #[test]
    fn window_one_equals_permutation_and_choose() {
        // The paper: with window 1, PP and CP are identical.
        let inst = small_hetero();
        for lambda in [0.0, 0.4, 0.8] {
            let vp = VpProblem::new(&inst, lambda);
            let a = pp(1, false).pack(&vp);
            let b = pp(1, true).pack(&vp);
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x, y, "lambda={lambda}"),
                (None, None) => {}
                _ => panic!("divergent success at lambda={lambda}"),
            }
        }
    }

    #[test]
    fn fails_on_infeasible_instance() {
        let inst = tight_memory();
        let vp = VpProblem::new(&inst, 1.0);
        assert!(pp(2, false).pack(&vp).is_none());
    }

    #[test]
    fn heterogeneous_ranking_uses_remaining_capacity() {
        // Bin with asymmetric capacities (CPU 2.0, mem 0.5), zero loads:
        // homogeneous ranking ties (loads 0,0) → dim 0 first;
        // heterogeneous ranking puts CPU (more remaining) first too, but
        // after loading CPU to 1.8 the orders diverge: remaining CPU 0.2 <
        // mem 0.5, while loads say CPU 1.8 > mem 0.0.
        let nodes = vec![Node::multicore(4, 0.5, 0.5)];
        let filler = Service::rigid(vec![0.45, 0.0], vec![1.8, 0.0]);
        let cpu_item = Service::rigid(vec![0.1, 0.05], vec![0.1, 0.05]);
        let mem_item = Service::rigid(vec![0.05, 0.3], vec![0.05, 0.3]);
        let inst = ProblemInstance::new(nodes, vec![filler, cpu_item, mem_item]).unwrap();
        let vp = VpProblem::new(&inst, 0.0);
        for hetero in [false, true] {
            let alg = PermutationPack {
                item_sort: ItemSort(Some((VectorMetric::Sum, SortOrder::Descending))),
                bin_sort: BinSort::NONE,
                window: 2,
                choose: false,
                heterogeneous: hetero,
            };
            let p = alg.pack(&vp).unwrap();
            assert!(p.is_complete());
        }
    }
}
