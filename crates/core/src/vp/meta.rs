//! The META* combinations (§3.5.3–§3.5.5 and §5.1).
//!
//! At each step of the binary search the meta algorithm tries its whole
//! roster of packing heuristics until one succeeds — so the meta algorithm
//! succeeds at a yield whenever *any* member does, and necessarily performs
//! at least as well as every member.

use super::{
    binary_search_yield, BestFit, BinSort, FirstFit, ItemSort, PackingHeuristic, PermutationPack,
    SortOrder, VectorMetric, VpProblem, DEFAULT_RESOLUTION,
};
use crate::algorithm::Algorithm;
use vmplace_model::{Placement, ProblemInstance, Solution};

/// A roster of packing heuristics tried in order at every binary-search
/// step. Instantiate via [`MetaVp::metavp`], [`MetaVp::metahvp`] or
/// [`MetaVp::metahvp_light`].
pub struct MetaVp {
    label: String,
    heuristics: Vec<Box<dyn PackingHeuristic>>,
    /// Binary-search resolution (the paper's 1e-4 by default).
    pub resolution: f64,
}

impl MetaVp {
    /// METAVP (§3.5.3): the homogeneous-platform roster — First Fit, Best
    /// Fit and Permutation Pack, each under all 11 item sortings
    /// (3 × 11 = 33 strategies). Bins keep their natural order (FF/PP) or
    /// BF's own load-based ranking.
    // The constructor deliberately carries the paper's algorithm name
    // (METAVP), which coincides with the type name.
    #[allow(clippy::self_named_constructors)]
    pub fn metavp() -> MetaVp {
        let mut hs: Vec<Box<dyn PackingHeuristic>> = Vec::with_capacity(33);
        for item in ItemSort::all() {
            hs.push(Box::new(FirstFit {
                item_sort: item,
                bin_sort: BinSort::NONE,
            }));
        }
        for item in ItemSort::all() {
            hs.push(Box::new(BestFit {
                item_sort: item,
                heterogeneous: false,
            }));
        }
        for item in ItemSort::all() {
            hs.push(Box::new(PermutationPack {
                item_sort: item,
                bin_sort: BinSort::NONE,
                window: usize::MAX, // clamped to D
                choose: false,
                heterogeneous: false,
            }));
        }
        MetaVp {
            label: "METAVP".to_string(),
            heuristics: hs,
            resolution: DEFAULT_RESOLUTION,
        }
    }

    /// METAHVP (§3.5.5): the heterogeneous roster — FF and PP under all
    /// 11 item × 11 bin sortings, plus heterogeneous BF under the 11 item
    /// sortings: `11 + 2×11×11 = 253` strategies.
    pub fn metahvp() -> MetaVp {
        let items = ItemSort::all();
        let bins = BinSort::all();
        Self::hvp_roster("METAHVP", &items, &bins)
    }

    /// METAHVPLIGHT (§5.1): the engineered subset — item sortings
    /// descending by MAX, SUM, MAXDIFFERENCE and MAXRATIO; bin sortings
    /// ascending by LEX, MAX and SUM, descending by MAX, MAXDIFFERENCE and
    /// MAXRATIO, plus unsorted bins: `4 + 2×4×7 = 60` strategies, ~10×
    /// faster than METAHVP for near-identical quality.
    pub fn metahvp_light() -> MetaVp {
        let items: Vec<ItemSort> = [
            VectorMetric::Max,
            VectorMetric::Sum,
            VectorMetric::MaxDifference,
            VectorMetric::MaxRatio,
        ]
        .into_iter()
        .map(|m| ItemSort(Some((m, SortOrder::Descending))))
        .collect();
        let bins: Vec<BinSort> = vec![
            BinSort(Some((VectorMetric::Lex, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Max, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Sum, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Max, SortOrder::Descending))),
            BinSort(Some((VectorMetric::MaxDifference, SortOrder::Descending))),
            BinSort(Some((VectorMetric::MaxRatio, SortOrder::Descending))),
            BinSort::NONE,
        ];
        Self::hvp_roster("METAHVPLIGHT", &items, &bins)
    }

    fn hvp_roster(label: &str, items: &[ItemSort], bins: &[BinSort]) -> MetaVp {
        let mut hs: Vec<Box<dyn PackingHeuristic>> =
            Vec::with_capacity(items.len() * (1 + 2 * bins.len()));
        for &item in items {
            hs.push(Box::new(BestFit {
                item_sort: item,
                heterogeneous: true,
            }));
        }
        for &item in items {
            for &bin in bins {
                hs.push(Box::new(FirstFit {
                    item_sort: item,
                    bin_sort: bin,
                }));
            }
        }
        for &item in items {
            for &bin in bins {
                hs.push(Box::new(PermutationPack {
                    item_sort: item,
                    bin_sort: bin,
                    window: usize::MAX,
                    choose: false,
                    heterogeneous: true,
                }));
            }
        }
        MetaVp {
            label: label.to_string(),
            heuristics: hs,
            resolution: DEFAULT_RESOLUTION,
        }
    }

    /// Number of member strategies.
    pub fn len(&self) -> usize {
        self.heuristics.len()
    }

    /// Whether the roster is empty (never, for the stock constructors).
    pub fn is_empty(&self) -> bool {
        self.heuristics.is_empty()
    }

    /// Member heuristics (for diagnostics / ablation sweeps).
    pub fn members(&self) -> impl Iterator<Item = &dyn PackingHeuristic> {
        self.heuristics.iter().map(|h| h.as_ref())
    }

    /// Builds a custom roster.
    pub fn custom(label: &str, heuristics: Vec<Box<dyn PackingHeuristic>>) -> MetaVp {
        MetaVp {
            label: label.to_string(),
            heuristics,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

impl PackingHeuristic for MetaVp {
    fn name(&self) -> String {
        self.label.clone()
    }

    /// First member that packs the problem wins.
    fn pack(&self, vp: &VpProblem) -> Option<Placement> {
        self.heuristics.iter().find_map(|h| h.pack(vp))
    }
}

impl Algorithm for MetaVp {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        binary_search_yield(instance, self, self.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::VpAlgorithm;

    #[test]
    fn roster_sizes_match_the_paper() {
        assert_eq!(MetaVp::metavp().len(), 33);
        assert_eq!(MetaVp::metahvp().len(), 253);
        assert_eq!(MetaVp::metahvp_light().len(), 60);
    }

    #[test]
    fn metahvp_dominates_every_member_on_small_instance() {
        let inst = small_hetero();
        let meta = MetaVp::metahvp_light();
        let meta_sol = meta.solve(&inst).expect("feasible");
        for h in meta.members() {
            let member = VpAlgorithm {
                heuristic: h,
                resolution: DEFAULT_RESOLUTION,
            };
            if let Some(sol) = member.solve(&inst) {
                assert!(
                    meta_sol.min_yield >= sol.min_yield - 1e-9,
                    "meta {} < member {} ({})",
                    meta_sol.min_yield,
                    sol.min_yield,
                    h.name()
                );
            }
        }
    }

    #[test]
    fn metahvp_at_least_as_good_as_metavp() {
        for inst in [small_hetero(), tight_memory()] {
            let mv = MetaVp::metavp().solve(&inst);
            let mh = MetaVp::metahvp().solve(&inst);
            match (mv, mh) {
                (Some(a), Some(b)) => assert!(b.min_yield >= a.min_yield - 1e-4),
                (Some(_), None) => panic!("METAHVP failed where METAVP succeeded"),
                _ => {}
            }
        }
    }

    #[test]
    fn light_close_to_full_on_small_instances() {
        let inst = small_hetero();
        let full = MetaVp::metahvp().solve(&inst).unwrap();
        let light = MetaVp::metahvp_light().solve(&inst).unwrap();
        assert!((full.min_yield - light.min_yield).abs() < 0.05);
    }

    #[test]
    fn member_names_are_unique() {
        for meta in [MetaVp::metavp(), MetaVp::metahvp(), MetaVp::metahvp_light()] {
            let names: std::collections::HashSet<String> =
                meta.members().map(|h| h.name()).collect();
            assert_eq!(names.len(), meta.len(), "{}", meta.label);
        }
    }
}
