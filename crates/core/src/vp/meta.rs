//! The META* combinations (§3.5.3–§3.5.5 and §5.1) on the portfolio
//! engine.
//!
//! Every member strategy runs its own binary search on yield; the portfolio
//! succeeds whenever *any* member does and reports the best searched yield,
//! so it necessarily performs at least as well as every member. Members
//! race across worker threads through [`vmplace_par::portfolio_run`],
//! publish every improved lower bound to a shared [`Incumbent`] and abandon
//! as soon as their remaining bracket cannot beat it — which on easy
//! instances (the roster's first member reaches yield 1) prunes the other
//! members before their first probe, and on hard instances collapses losing
//! searches to a couple of probes. Pruning is result-invariant: the winner
//! and its yield are identical to the sequential fold, whatever the thread
//! count (see the engine notes in [`crate::portfolio`]).

use super::{
    BestFit, BinSort, FirstFit, ItemSort, PackScratch, PackingHeuristic, PermutationPack,
    SortOrder, VectorMetric, VpProblem, DEFAULT_RESOLUTION,
};
use crate::algorithm::Algorithm;
use crate::portfolio::{MemberOutcome, MemberReport, PortfolioReport, SolveCtx};
use crate::vp::binary_search::{search_member, MemberGuards, MemberRun};
use std::sync::Arc;
use std::time::Instant;
use vmplace_model::{evaluate_placement, Placement, ProblemInstance, Solution};
use vmplace_par::Incumbent;

/// A roster of packing heuristics, each lifted to a binary search on yield
/// and raced by the portfolio engine. Instantiate via [`MetaVp::metavp`],
/// [`MetaVp::metahvp`] or [`MetaVp::metahvp_light`].
pub struct MetaVp {
    label: String,
    heuristics: Vec<Box<dyn PackingHeuristic>>,
    labels: Arc<Vec<String>>,
    /// Execution schedule: `order[k]` is the roster index of the `k`-th
    /// member handed to a worker. Identity by default; see
    /// [`MetaVp::with_telemetry_order`]. Member *identity* (incumbent
    /// tie-break, reduce, reports) always uses roster indices, so the
    /// schedule affects probe counts only — never results.
    order: Vec<usize>,
    /// Binary-search resolution (the paper's 1e-4 by default).
    pub resolution: f64,
}

impl MetaVp {
    /// METAVP (§3.5.3): the homogeneous-platform roster — First Fit, Best
    /// Fit and Permutation Pack, each under all 11 item sortings
    /// (3 × 11 = 33 strategies). Bins keep their natural order (FF/PP) or
    /// BF's own load-based ranking.
    // The constructor deliberately carries the paper's algorithm name
    // (METAVP), which coincides with the type name.
    #[allow(clippy::self_named_constructors)]
    pub fn metavp() -> MetaVp {
        let mut hs: Vec<Box<dyn PackingHeuristic>> = Vec::with_capacity(33);
        for item in ItemSort::all() {
            hs.push(Box::new(FirstFit {
                item_sort: item,
                bin_sort: BinSort::NONE,
            }));
        }
        for item in ItemSort::all() {
            hs.push(Box::new(BestFit {
                item_sort: item,
                heterogeneous: false,
            }));
        }
        for item in ItemSort::all() {
            hs.push(Box::new(PermutationPack {
                item_sort: item,
                bin_sort: BinSort::NONE,
                window: usize::MAX, // clamped to D
                choose: false,
                heterogeneous: false,
            }));
        }
        Self::custom("METAVP", hs)
    }

    /// METAHVP (§3.5.5): the heterogeneous roster — FF and PP under all
    /// 11 item × 11 bin sortings, plus heterogeneous BF under the 11 item
    /// sortings: `11 + 2×11×11 = 253` strategies.
    pub fn metahvp() -> MetaVp {
        let items = ItemSort::all();
        let bins = BinSort::all();
        Self::hvp_roster("METAHVP", &items, &bins)
    }

    /// METAHVPLIGHT (§5.1): the engineered subset — item sortings
    /// descending by MAX, SUM, MAXDIFFERENCE and MAXRATIO; bin sortings
    /// ascending by LEX, MAX and SUM, descending by MAX, MAXDIFFERENCE and
    /// MAXRATIO, plus unsorted bins: `4 + 2×4×7 = 60` strategies, ~10×
    /// faster than METAHVP for near-identical quality.
    pub fn metahvp_light() -> MetaVp {
        let items: Vec<ItemSort> = [
            VectorMetric::Max,
            VectorMetric::Sum,
            VectorMetric::MaxDifference,
            VectorMetric::MaxRatio,
        ]
        .into_iter()
        .map(|m| ItemSort(Some((m, SortOrder::Descending))))
        .collect();
        let bins: Vec<BinSort> = vec![
            BinSort(Some((VectorMetric::Lex, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Max, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Sum, SortOrder::Ascending))),
            BinSort(Some((VectorMetric::Max, SortOrder::Descending))),
            BinSort(Some((VectorMetric::MaxDifference, SortOrder::Descending))),
            BinSort(Some((VectorMetric::MaxRatio, SortOrder::Descending))),
            BinSort::NONE,
        ];
        Self::hvp_roster("METAHVPLIGHT", &items, &bins)
    }

    fn hvp_roster(label: &str, items: &[ItemSort], bins: &[BinSort]) -> MetaVp {
        let mut hs: Vec<Box<dyn PackingHeuristic>> =
            Vec::with_capacity(items.len() * (1 + 2 * bins.len()));
        for &item in items {
            hs.push(Box::new(BestFit {
                item_sort: item,
                heterogeneous: true,
            }));
        }
        for &item in items {
            for &bin in bins {
                hs.push(Box::new(FirstFit {
                    item_sort: item,
                    bin_sort: bin,
                }));
            }
        }
        for &item in items {
            for &bin in bins {
                hs.push(Box::new(PermutationPack {
                    item_sort: item,
                    bin_sort: bin,
                    window: usize::MAX,
                    choose: false,
                    heterogeneous: true,
                }));
            }
        }
        Self::custom(label, hs)
    }

    /// Number of member strategies.
    pub fn len(&self) -> usize {
        self.heuristics.len()
    }

    /// Whether the roster is empty (never, for the stock constructors).
    pub fn is_empty(&self) -> bool {
        self.heuristics.is_empty()
    }

    /// Member heuristics (for diagnostics / ablation sweeps).
    pub fn members(&self) -> impl Iterator<Item = &dyn PackingHeuristic> {
        self.heuristics.iter().map(|h| h.as_ref())
    }

    /// Cached member labels, in roster order (computed once at
    /// construction; reports reference them without allocating).
    pub fn member_labels(&self) -> &Arc<Vec<String>> {
        &self.labels
    }

    /// Builds a custom roster.
    pub fn custom(label: &str, heuristics: Vec<Box<dyn PackingHeuristic>>) -> MetaVp {
        let labels: Arc<Vec<String>> = Arc::new(heuristics.iter().map(|h| h.describe()).collect());
        let order = (0..heuristics.len()).collect();
        MetaVp {
            label: label.to_string(),
            heuristics,
            labels,
            order,
            resolution: DEFAULT_RESOLUTION,
        }
    }

    /// Reschedules member execution by the static telemetry winner table
    /// (see [`crate::vp::ordering`]): likely winners run first, publishing
    /// a strong incumbent that prunes the rest of the roster early on hard
    /// instances. Results are identical to the natural order — only probe
    /// counts change.
    pub fn with_telemetry_order(self) -> MetaVp {
        let order = super::ordering::telemetry_execution_order(&self.labels);
        self.with_execution_order(order)
    }

    /// Sets an explicit execution schedule (`order[k]` = roster index of
    /// the `k`-th member to run). Must be a permutation of `0..len()`.
    pub fn with_execution_order(mut self, order: Vec<usize>) -> MetaVp {
        assert_eq!(order.len(), self.heuristics.len(), "schedule length");
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(i < seen.len() && !seen[i], "schedule is not a permutation");
            seen[i] = true;
        }
        self.order = order;
        self
    }

    /// The current execution schedule.
    pub fn execution_order(&self) -> &[usize] {
        &self.order
    }
}

impl PackingHeuristic for MetaVp {
    fn describe(&self) -> String {
        self.label.clone()
    }

    /// First member that packs the problem wins (the classic fold — kept
    /// for pipelines that pack at one fixed yield, e.g. feasibility
    /// screening and the error-mitigation experiments).
    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        self.heuristics.iter().any(|h| h.pack_with(vp, scratch))
    }
}

impl Algorithm for MetaVp {
    fn name(&self) -> &str {
        &self.label
    }

    /// Races every member's binary search on the portfolio engine; the
    /// winner is the highest searched yield (ties to the lowest roster
    /// index), re-scored by the shared water-filling evaluator.
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        let started = Instant::now();
        let threads = ctx.effective_threads();
        let deadline = ctx.deadline_from_now();
        let pruning = ctx.pruning();
        let warm = ctx.take_warm_hint();
        let incumbent = Incumbent::new();
        let resolution = self.resolution;
        let order = &self.order;

        struct Outcome {
            member: usize,
            run: MemberRun,
            wall: std::time::Duration,
        }

        // Workers run members in schedule order but keep their roster
        // identity throughout (incumbent tie-break, reports, reduce), so
        // the schedule can only shift probe counts, never results. Worker
        // scratch comes from the context and survives across solves.
        let mut workers = std::mem::take(&mut ctx.workers);
        let scheduled: Vec<Outcome> = vmplace_par::portfolio_run_pooled(
            self.heuristics.len(),
            threads,
            &mut workers,
            PackScratch::new,
            |slot, scratch: &mut PackScratch| {
                let member = order[slot];
                let t0 = Instant::now();
                let mut vp = VpProblem::with_buffers(
                    instance,
                    0.0,
                    std::mem::take(&mut scratch.vp_elem),
                    std::mem::take(&mut scratch.vp_agg),
                );
                let run = search_member(
                    &mut vp,
                    self.heuristics[member].as_ref(),
                    resolution,
                    scratch,
                    &MemberGuards {
                        incumbent: pruning.then_some((&incumbent, member)),
                        deadline,
                        warm,
                    },
                );
                (scratch.vp_elem, scratch.vp_agg) = vp.into_buffers();
                Outcome {
                    member,
                    run,
                    wall: t0.elapsed(),
                }
            },
        );
        ctx.workers = workers;

        // Back to roster order for the deterministic reduce.
        let mut outcomes: Vec<Option<Outcome>> = (0..scheduled.len()).map(|_| None).collect();
        for o in scheduled {
            let member = o.member;
            outcomes[member] = Some(o);
        }
        let outcomes: Vec<Outcome> = outcomes
            .into_iter()
            .map(|o| o.expect("schedule is a permutation"))
            .collect();

        // Deterministic reduce: highest searched yield wins, ties to the
        // lowest member index. Pruned members are strict losers by
        // construction and are not candidates.
        let winner = crate::portfolio::best_member(outcomes.iter().map(|o| {
            let candidate = match o.run.outcome {
                MemberOutcome::Solved => true,
                // Best-effort anytime result under a deadline.
                MemberOutcome::TimedOut => o.run.placement.is_some(),
                _ => false,
            };
            candidate.then_some(o.run.lo)
        }));

        let members: Vec<MemberReport> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| MemberReport {
                member: i,
                outcome: o.run.outcome,
                searched_yield: o.run.placement.as_ref().map(|_| o.run.lo),
                probes: o.run.probes,
                wall: o.wall,
            })
            .collect();
        ctx.set_report(PortfolioReport {
            algorithm: self.label.clone(),
            labels: Arc::clone(&self.labels),
            threads,
            wall: started.elapsed(),
            winner: winner.map(|(i, _)| i),
            members,
        });

        let (index, _) = winner?;
        let placement: Placement = outcomes
            .into_iter()
            .nth(index)
            .and_then(|o| o.run.placement)
            .expect("winner carries a placement");
        evaluate_placement(instance, &placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};
    use crate::vp::VpAlgorithm;

    #[test]
    fn roster_sizes_match_the_paper() {
        assert_eq!(MetaVp::metavp().len(), 33);
        assert_eq!(MetaVp::metahvp().len(), 253);
        assert_eq!(MetaVp::metahvp_light().len(), 60);
    }

    #[test]
    fn metahvp_dominates_every_member_on_small_instance() {
        let inst = small_hetero();
        let meta = MetaVp::metahvp_light();
        let meta_sol = meta.solve(&inst).expect("feasible");
        for (i, h) in meta.members().enumerate() {
            let member = VpAlgorithm::new(h);
            if let Some(sol) = member.solve(&inst) {
                assert!(
                    meta_sol.min_yield >= sol.min_yield - 1e-9,
                    "meta {} < member {} ({})",
                    meta_sol.min_yield,
                    sol.min_yield,
                    meta.member_labels()[i]
                );
            }
        }
    }

    #[test]
    fn metahvp_at_least_as_good_as_metavp() {
        for inst in [small_hetero(), tight_memory()] {
            let mv = MetaVp::metavp().solve(&inst);
            let mh = MetaVp::metahvp().solve(&inst);
            match (mv, mh) {
                (Some(a), Some(b)) => assert!(b.min_yield >= a.min_yield - 1e-4),
                (Some(_), None) => panic!("METAHVP failed where METAVP succeeded"),
                _ => {}
            }
        }
    }

    #[test]
    fn light_close_to_full_on_small_instances() {
        let inst = small_hetero();
        let full = MetaVp::metahvp().solve(&inst).unwrap();
        let light = MetaVp::metahvp_light().solve(&inst).unwrap();
        assert!((full.min_yield - light.min_yield).abs() < 0.05);
    }

    #[test]
    fn member_labels_are_unique_and_cached() {
        for meta in [MetaVp::metavp(), MetaVp::metahvp(), MetaVp::metahvp_light()] {
            let names: std::collections::HashSet<&str> =
                meta.member_labels().iter().map(String::as_str).collect();
            assert_eq!(names.len(), meta.len(), "{}", meta.label);
            // Labels agree with what the members would describe.
            for (i, h) in meta.members().enumerate() {
                assert_eq!(meta.member_labels()[i], h.describe());
            }
        }
    }

    #[test]
    fn engine_reports_winner_and_telemetry() {
        let inst = small_hetero();
        let meta = MetaVp::metahvp_light();
        let mut ctx = SolveCtx::new().with_threads(2);
        let sol = meta.solve_with(&inst, &mut ctx).expect("feasible");
        let report = ctx.take_report().expect("engine ran");
        assert_eq!(report.algorithm, "METAHVPLIGHT");
        assert_eq!(report.members.len(), 60);
        assert_eq!(report.threads, 2);
        let w = report.winner.expect("solved → winner");
        assert!(report.winner_label().is_some());
        let searched = report.members[w].searched_yield.expect("winner searched");
        // The evaluator can only improve on the searched bound.
        assert!(sol.min_yield >= searched - 1e-9);
        assert!(report.total_probes() > 0);
    }

    #[test]
    fn engine_is_deterministic_across_thread_counts() {
        for inst in [small_hetero(), tight_memory()] {
            let meta = MetaVp::metahvp_light();
            let mut sequential = SolveCtx::new().with_threads(1);
            let mut parallel = SolveCtx::new().with_threads(4);
            let a = meta.solve_with(&inst, &mut sequential);
            let b = meta.solve_with(&inst, &mut parallel);
            let (ra, rb) = (
                sequential.take_report().unwrap(),
                parallel.take_report().unwrap(),
            );
            assert_eq!(ra.winner, rb.winner);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.min_yield, y.min_yield);
                    assert_eq!(x.placement, y.placement);
                }
                (None, None) => {}
                _ => panic!("divergent feasibility"),
            }
        }
    }

    #[test]
    fn execution_order_is_result_invariant() {
        // Natural, telemetry and fully reversed schedules must produce the
        // same winner, yield and placement (member identity drives the
        // tie-break, not the schedule) at any thread count; only probe
        // counts may differ.
        for inst in [small_hetero(), tight_memory()] {
            for threads in [1, 4] {
                let natural = MetaVp::metahvp_light();
                let reversed_order: Vec<usize> = (0..natural.len()).rev().collect();
                let schedules = [
                    MetaVp::metahvp_light(),
                    MetaVp::metahvp_light().with_telemetry_order(),
                    MetaVp::metahvp_light().with_execution_order(reversed_order),
                ];
                let mut reference: Option<(Option<usize>, Option<(f64, _)>)> = None;
                for (k, meta) in schedules.into_iter().enumerate() {
                    let mut ctx = SolveCtx::new().with_threads(threads);
                    let sol = meta.solve_with(&inst, &mut ctx);
                    let report = ctx.take_report().unwrap();
                    let key = (report.winner, sol.map(|s| (s.min_yield, s.placement)));
                    match &reference {
                        None => reference = Some(key),
                        Some(r) => assert_eq!(r, &key, "schedule {k}, threads {threads}"),
                    }
                }
            }
        }
    }

    #[test]
    fn telemetry_order_front_loads_table_members() {
        let meta = MetaVp::metahvp_light().with_telemetry_order();
        let order = meta.execution_order();
        // The schedule is a permutation…
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..meta.len()).collect::<Vec<_>>());
        // …and every table-listed member runs before every unlisted one.
        let listed: Vec<bool> = order
            .iter()
            .map(|&i| {
                crate::vp::ordering::STATIC_WINNER_TABLE.contains(&meta.member_labels()[i].as_str())
            })
            .collect();
        let first_unlisted = listed.iter().position(|&l| !l).unwrap_or(listed.len());
        assert!(
            listed[first_unlisted..].iter().all(|&l| !l),
            "listed member scheduled after an unlisted one"
        );
    }
}
