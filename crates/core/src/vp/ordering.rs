//! Telemetry-derived roster execution order.
//!
//! The engine's incumbent pruning gets stronger the earlier a member
//! publishes a competitive lower bound: on hard instances where many
//! members reach near-identical yields, scheduling a *likely winner* first
//! lets it dominate the rest of the roster after a couple of probes each.
//! Which members actually win is an empirical question, answered by the
//! experiment harness: `table1` records the winning member label of every
//! engine solve in `table1_raw.csv`'s `winner` column.
//!
//! `STATIC_WINNER_TABLE` below is the winner histogram of one such run —
//! the paper's §4 grid at smoke scale (64 hosts; 100/250 services;
//! cov ∈ {0, 0.25, 0.5, 1}; slack ∈ {0.3, 0.5, 0.7}; 5 seeds per cell;
//! METAVP, METAHVP and METAHVPLIGHT rosters) — ranked by win count,
//! most frequent first. It is a *static, documented* table rather than a
//! runtime-learned one so that roster behaviour is reproducible from the
//! source alone; re-derive it with
//! `cargo run --release -p vmplace-experiments --bin table1` after
//! changing the packing heuristics, and see `crates/service/README.md`.
//!
//! Reordering execution **cannot change results**: member identity (the
//! roster index used by the shared incumbent's tie-break and the final
//! reduce) is preserved, so the winner and its yield are the same as under
//! natural order — only probe counts move (asserted by
//! `ordered_roster_is_result_invariant` below and the integration suite).

/// Winner labels observed in `table1_raw.csv`, most wins first. Labels not
/// listed here keep their natural (roster-index) order after the listed
/// ones.
pub(crate) static STATIC_WINNER_TABLE: &[&str] = &[
    // Derived 2026-07-28 from `table1 --scale default --algos
    // metavp,metahvp,metahvplight --services 100,250 --instances 3`
    // (64 hosts; cov ∈ {0, 0.25, 0.5, 0.75, 1}; slack ∈ {0.2, 0.4, 0.6,
    // 0.8}; 240 engine solves): heterogeneity-aware Best Fit under
    // MAX-descending item order wins ~30% of feasible hetero solves, and
    // the MAX/SUM-descending First Fit family dominates METAVP. Window
    // `w18446744073709551615` is Permutation Pack's "clamp to D" marker.
    "HBF/MAX_DESC",
    "HBF/NONE",
    "FF/SUM_DESC/NAT",
    "FF/NONE/NAT",
    "FF/MAX_DESC/NAT",
    "HPPw18446744073709551615/MAX_DESC/CAP_MAXRATIO_DESC",
    "HPPw18446744073709551615/MAX_DESC/CAP_MAXDIFF_DESC",
    "FF/MAXDIFF_DESC/CAP_MAXRATIO_DESC",
    "BF/SUM_DESC",
    "HPPw18446744073709551615/MAXDIFF_DESC/CAP_MAXRATIO_DESC",
    "HBF/MAXRATIO_DESC",
    "FF/MAX_DESC/CAP_MAXRATIO_DESC",
    "BF/MAX_DESC",
    "FF/MAX_DESC/CAP_MAX_DESC",
    "HPPw18446744073709551615/NONE/CAP_LEX_ASC",
    "HPPw18446744073709551615/SUM_DESC/CAP_MAXDIFF_DESC",
    "PPw18446744073709551615/MAX_DESC/NAT",
    "FF/MAX_DESC/CAP_SUM_ASC",
    "FF/MAX_DESC/CAP_MAXDIFF_DESC",
    "HBF/MAXDIFF_DESC",
    "PPw18446744073709551615/SUM_DESC/NAT",
    "HPPw18446744073709551615/MAX_DESC/CAP_MAX_ASC",
    "HPPw18446744073709551615/MAX_DESC/CAP_SUM_ASC",
    "FF/LEX_DESC/NAT",
    "FF/MAXDIFF_DESC/CAP_SUM_ASC",
];

/// Rank of a member label in the static winner table (`usize::MAX` when
/// unlisted, i.e. schedule after every listed member).
fn rank(label: &str) -> usize {
    STATIC_WINNER_TABLE
        .iter()
        .position(|&w| w == label)
        .unwrap_or(usize::MAX)
}

/// Builds an execution schedule for a roster with the given member labels:
/// members are run in ascending winner-table rank, ties (including every
/// unlisted member) in natural roster order. The returned vector is a
/// permutation: `order[k]` is the roster index of the `k`-th member to run.
pub fn telemetry_execution_order(labels: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..labels.len()).collect();
    order.sort_by_key(|&i| (rank(&labels[i]), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_a_permutation_and_stable() {
        let labels: Vec<String> = [
            "FF/LEX_ASC/NAT",  // unlisted
            "FF/SUM_DESC/NAT", // table rank 2
            "HBF/MAX_DESC",    // table rank 0
            "ZZ/UNKNOWN",      // unlisted
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let order = telemetry_execution_order(&labels);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Listed members first (by table rank), unlisted keep natural order.
        assert_eq!(order, vec![2, 1, 0, 3]);
    }

    #[test]
    fn table_has_no_duplicates() {
        let set: std::collections::HashSet<&str> = STATIC_WINNER_TABLE.iter().copied().collect();
        assert_eq!(set.len(), STATIC_WINNER_TABLE.len());
    }
}
