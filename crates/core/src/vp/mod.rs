//! Vector-packing algorithms and the binary search on yield (§3.5).
//!
//! For a fixed target yield `λ` every service becomes an *item* with
//! elementary size `rᵉ + λ·nᵉ` and aggregate size `rᵃ + λ·nᵃ`, and every
//! node a *bin* with its two capacity vectors; a packing heuristic either
//! places all items or fails. Since item sizes grow monotonically with `λ`,
//! a binary search (resolution `1e-4`, as in the paper) finds the largest
//! yield for which the heuristic still succeeds. The returned solution is
//! then re-evaluated with the shared water-filling evaluator, which can only
//! improve on the searched lower bound.

mod best_fit;
pub(crate) mod binary_search;
mod first_fit;
mod meta;
pub mod ordering;
mod perm_pack;
mod sortkey;

pub use best_fit::BestFit;
pub use binary_search::{
    binary_search_placement, binary_search_yield, VpAlgorithm, DEFAULT_RESOLUTION,
};
pub use first_fit::FirstFit;
pub use meta::MetaVp;
pub use ordering::telemetry_execution_order;
pub use perm_pack::PermutationPack;
pub use sortkey::{BinSort, ItemSort, SortOrder, VectorMetric};

use vmplace_model::{Placement, ProblemInstance, EPSILON};

/// A vector-packing view of an instance at a fixed target yield.
pub struct VpProblem<'a> {
    /// The underlying instance.
    pub instance: &'a ProblemInstance,
    /// The uniform target yield.
    pub lambda: f64,
    dims: usize,
    item_elem: Vec<f64>, // J×D, row-major
    item_agg: Vec<f64>,  // J×D
}

impl<'a> VpProblem<'a> {
    /// Materialises item sizes at yield `lambda`.
    pub fn new(instance: &'a ProblemInstance, lambda: f64) -> Self {
        Self::with_buffers(instance, lambda, Vec::new(), Vec::new())
    }

    /// As [`VpProblem::new`], reusing caller-provided buffers for the item
    /// size tables (a binary search builds one `VpProblem` per member and
    /// [retargets](VpProblem::retarget) it per probe without allocating).
    pub fn with_buffers(
        instance: &'a ProblemInstance,
        lambda: f64,
        item_elem: Vec<f64>,
        item_agg: Vec<f64>,
    ) -> Self {
        let mut vp = VpProblem {
            instance,
            lambda,
            dims: instance.dims(),
            item_elem,
            item_agg,
        };
        vp.retarget(lambda);
        vp
    }

    /// Re-points the problem at a new target yield, recomputing the item
    /// size tables in place.
    pub fn retarget(&mut self, lambda: f64) {
        self.lambda = lambda;
        self.item_elem.clear();
        self.item_agg.clear();
        for s in self.instance.services() {
            for d in 0..self.dims {
                self.item_elem.push(s.req_elem[d] + lambda * s.need_elem[d]);
                self.item_agg.push(s.req_agg[d] + lambda * s.need_agg[d]);
            }
        }
    }

    /// Releases the internal buffers for reuse by a later
    /// [`VpProblem::with_buffers`].
    pub fn into_buffers(self) -> (Vec<f64>, Vec<f64>) {
        (self.item_elem, self.item_agg)
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of items (services).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.instance.num_services()
    }

    /// Number of bins (nodes).
    #[inline]
    pub fn num_bins(&self) -> usize {
        self.instance.num_nodes()
    }

    /// Aggregate size vector of item `j` at the target yield.
    #[inline]
    pub fn item_agg(&self, j: usize) -> &[f64] {
        &self.item_agg[j * self.dims..(j + 1) * self.dims]
    }

    /// Elementary size vector of item `j` at the target yield.
    #[inline]
    pub fn item_elem(&self, j: usize) -> &[f64] {
        &self.item_elem[j * self.dims..(j + 1) * self.dims]
    }

    /// Whether item `j` fits in bin `h` given the bin's current aggregate
    /// `loads` (row-major H×D slice).
    #[inline]
    pub fn fits(&self, j: usize, h: usize, loads: &[f64]) -> bool {
        let node = &self.instance.nodes()[h];
        let elem = self.item_elem(j);
        let agg = self.item_agg(j);
        for d in 0..self.dims {
            if elem[d] > node.elementary[d] + EPSILON {
                return false;
            }
            if loads[h * self.dims + d] + agg[d] > node.aggregate[d] + EPSILON {
                return false;
            }
        }
        true
    }

    /// Adds item `j` to bin `h`'s loads.
    #[inline]
    pub fn place(&self, j: usize, h: usize, loads: &mut [f64]) {
        let agg = self.item_agg(j);
        for d in 0..self.dims {
            loads[h * self.dims + d] += agg[d];
        }
    }
}

/// Reusable buffers for a packing worker: sort keys and orders, bin loads,
/// Permutation-Pack selection state and the output placement. One scratch
/// per portfolio worker makes every `pack_with` probe allocation-free in
/// steady state (buffers grow once, then stay).
#[derive(Default)]
pub struct PackScratch {
    pub(crate) loads: Vec<f64>,
    pub(crate) items: Vec<usize>,
    pub(crate) bins: Vec<usize>,
    pub(crate) sort_keys: Vec<f64>,
    pub(crate) unplaced: Vec<usize>,
    pub(crate) bin_perm: Vec<usize>,
    pub(crate) rank_of_dim: Vec<usize>,
    pub(crate) key: Vec<usize>,
    pub(crate) best_key: Vec<usize>,
    pub(crate) placement: Placement,
    pub(crate) vp_elem: Vec<f64>,
    pub(crate) vp_agg: Vec<f64>,
}

impl PackScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> PackScratch {
        PackScratch {
            placement: Placement::empty(0),
            ..Default::default()
        }
    }

    /// The placement produced by the last successful
    /// [`PackingHeuristic::pack_with`].
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Takes the placement out of the scratch (leaves an empty one behind).
    pub fn take_placement(&mut self) -> Placement {
        std::mem::replace(&mut self.placement, Placement::empty(0))
    }
}

/// A vector-packing heuristic: places all items at the problem's fixed
/// yield or fails. `Send + Sync` so meta-algorithms can be shared across
/// experiment worker threads.
pub trait PackingHeuristic: Send + Sync {
    /// Builds the report identifier (e.g. `"FF/MAX_DESC/CAP_SUM_ASC"`).
    /// Allocates — call once and cache (the meta rosters do) rather than
    /// per probe.
    fn describe(&self) -> String;

    /// Attempts a complete packing using `scratch` for all working state.
    /// On success the placement is left in [`PackScratch::placement`];
    /// steady-state probes allocate nothing.
    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool;

    /// Convenience wrapper around [`PackingHeuristic::pack_with`] with a
    /// fresh scratch, returning the placement by value.
    fn pack(&self, vp: &VpProblem) -> Option<Placement> {
        let mut scratch = PackScratch::new();
        self.pack_with(vp, &mut scratch)
            .then(|| scratch.take_placement())
    }
}

impl<T: PackingHeuristic + ?Sized> PackingHeuristic for &T {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        (**self).pack_with(vp, scratch)
    }
    fn pack(&self, vp: &VpProblem) -> Option<Placement> {
        (**self).pack(vp)
    }
}

impl<T: PackingHeuristic + ?Sized> PackingHeuristic for Box<T> {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        (**self).pack_with(vp, scratch)
    }
    fn pack(&self, vp: &VpProblem) -> Option<Placement> {
        (**self).pack(vp)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use vmplace_model::{Node, ProblemInstance, Service};

    /// A small heterogeneous instance on which all heuristics succeed.
    pub fn small_hetero() -> ProblemInstance {
        let nodes = vec![
            Node::multicore(4, 0.8, 1.0),
            Node::multicore(2, 1.0, 0.5),
            Node::multicore(4, 0.3, 0.8),
        ];
        let mk = |rc: f64, nc: f64, mem: f64| {
            Service::new(
                vec![rc / 2.0, mem],
                vec![rc, mem],
                vec![nc / 2.0, 0.0],
                vec![nc, 0.0],
            )
        };
        let services = vec![
            mk(0.2, 0.8, 0.3),
            mk(0.1, 0.5, 0.2),
            mk(0.3, 0.4, 0.1),
            mk(0.05, 0.9, 0.25),
            mk(0.15, 0.3, 0.15),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    /// An instance that packs at yield 0 but not at yield 1: memory forces
    /// two services per node, and CPU needs cap the pair at yield 0.5.
    pub fn tight_memory() -> ProblemInstance {
        let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.5, 1.0)];
        let svc = Service::new(
            vec![0.1, 0.5],
            vec![0.1, 0.5],
            vec![0.4, 0.0],
            vec![0.8, 0.0],
        );
        ProblemInstance::new(nodes, vec![svc.clone(), svc.clone(), svc.clone(), svc]).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::small_hetero;

    #[test]
    fn item_sizes_scale_with_lambda() {
        let inst = small_hetero();
        let vp0 = VpProblem::new(&inst, 0.0);
        let vp1 = VpProblem::new(&inst, 1.0);
        let s = &inst.services()[0];
        assert_eq!(vp0.item_agg(0)[0], s.req_agg[0]);
        assert!((vp1.item_agg(0)[0] - (s.req_agg[0] + s.need_agg[0])).abs() < 1e-12);
    }

    #[test]
    fn fits_checks_elementary_and_aggregate() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 1.0);
        let loads = vec![0.0; vp.num_bins() * vp.dims()];
        // Item 3 at yield 1 has elementary CPU 0.05/2 + 0.9/2 = 0.475 ≤ 0.3?
        // 0.475 > 0.3 → cannot go on node 2 even when empty.
        assert!(!vp.fits(3, 2, &loads));
        // but fits on node 0 (0.8 elementary).
        assert!(vp.fits(3, 0, &loads));
    }

    #[test]
    fn place_accumulates_loads() {
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        let mut loads = vec![0.0; vp.num_bins() * vp.dims()];
        vp.place(0, 1, &mut loads);
        vp.place(1, 1, &mut loads);
        assert!((loads[vp.dims() + 1] - 0.5).abs() < 1e-12); // memory 0.3+0.2
    }
}
