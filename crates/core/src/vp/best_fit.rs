//! Best-Fit vector packing (§3.5.1, heterogeneous variant §3.5.4).

use super::{ItemSort, PackScratch, PackingHeuristic, VpProblem};

/// Best Fit: items in `item_sort` order; each item goes to the *fullest*
/// feasible bin.
///
/// * Homogeneous variant (§3.5.1): bins ranked by **descending sum of
///   loads** across dimensions.
/// * Heterogeneous variant (§3.5.4): bins ranked by **ascending total
///   remaining capacity** — identical on homogeneous platforms but aware of
///   differing bin sizes otherwise.
///
/// Best Fit imposes its own bin ranking, so it takes no bin-sort strategy
/// (which is why METAHVP counts `11 + 2×11×11` strategies).
#[derive(Clone, Copy, Debug)]
pub struct BestFit {
    /// Item ordering strategy.
    pub item_sort: ItemSort,
    /// Use the heterogeneity-aware remaining-capacity ranking.
    pub heterogeneous: bool,
}

impl PackingHeuristic for BestFit {
    fn describe(&self) -> String {
        format!(
            "{}/{}",
            if self.heterogeneous { "HBF" } else { "BF" },
            self.item_sort.label()
        )
    }

    fn pack_with(&self, vp: &VpProblem, scratch: &mut PackScratch) -> bool {
        let dims = vp.dims();
        let PackScratch {
            loads,
            items,
            sort_keys,
            placement,
            ..
        } = scratch;
        self.item_sort.order_into(vp, items, sort_keys);
        loads.clear();
        loads.resize(vp.num_bins() * dims, 0.0);
        placement.reset(vp.num_items());
        for &j in items.iter() {
            let mut best: Option<(usize, f64)> = None; // (bin, score) higher wins
            for h in 0..vp.num_bins() {
                if !vp.fits(j, h, loads) {
                    continue;
                }
                let score = if self.heterogeneous {
                    // Most-full = least remaining capacity.
                    let remaining: f64 = (0..dims)
                        .map(|d| vp.instance.nodes()[h].aggregate[d] - loads[h * dims + d])
                        .sum();
                    -remaining
                } else {
                    (0..dims).map(|d| loads[h * dims + d]).sum()
                };
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((h, score));
                }
            }
            let Some((h, _)) = best else {
                return false;
            };
            vp.place(j, h, loads);
            placement.assign(j, h);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::small_hetero;
    use vmplace_model::{Node, ProblemInstance, Service};

    #[test]
    fn best_fit_consolidates_onto_loaded_bin() {
        // Two identical nodes; after the first placement the second small
        // item must join the already-loaded node under BF.
        let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.5, 1.0)];
        let svc = Service::rigid(vec![0.1, 0.2], vec![0.1, 0.2]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        let vp = VpProblem::new(&inst, 0.0);
        let bf = BestFit {
            item_sort: ItemSort::NONE,
            heterogeneous: false,
        };
        let p = bf.pack(&vp).unwrap();
        assert_eq!(p.node_of(0), p.node_of(1));
    }

    #[test]
    fn heterogeneous_best_fit_prefers_tightest_bin() {
        // Bins of different sizes, empty: HBF picks the smallest feasible
        // one (least remaining capacity), homogeneous BF sees equal zero
        // loads and falls back to the first bin.
        let inst = small_hetero();
        let vp = VpProblem::new(&inst, 0.0);
        let hbf = BestFit {
            item_sort: ItemSort::NONE,
            heterogeneous: true,
        };
        let p = hbf.pack(&vp).unwrap();
        // Node 2 has the smallest total capacity (1.2 + 0.8 = 2.0).
        assert_eq!(p.node_of(0), Some(2));
        let bf = BestFit {
            item_sort: ItemSort::NONE,
            heterogeneous: false,
        };
        let q = bf.pack(&vp).unwrap();
        assert_eq!(q.node_of(0), Some(0));
    }

    #[test]
    fn returns_none_when_an_item_fits_nowhere() {
        let nodes = vec![Node::multicore(1, 0.5, 0.2)];
        let svc = Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5]);
        let inst = ProblemInstance::new(nodes, vec![svc]).unwrap();
        let vp = VpProblem::new(&inst, 0.0);
        let bf = BestFit {
            item_sort: ItemSort::NONE,
            heterogeneous: true,
        };
        assert!(bf.pack(&vp).is_none());
    }
}
