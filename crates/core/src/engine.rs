//! A reusable handle over one algorithm and one long-lived solve context.
//!
//! One-shot callers pay the full setup cost on every solve: roster
//! construction (boxing hundreds of member strategies and their labels),
//! packing scratch, and — for warm algorithms — a cold binary search from
//! `[0, 1]`. A long-lived allocation service amortises all of that by
//! keeping an [`EngineHandle`] per resident worker: the roster and the
//! context (with its per-worker packing workspaces) are built once, and
//! each warm re-solve seeds its binary searches from the previous
//! placement's achieved yield.

use crate::algorithm::Algorithm;
use crate::portfolio::{MemberOutcome, PortfolioReport, SolveCtx};
use crate::vp::MetaVp;
use std::time::{Duration, Instant};
use vmplace_model::{ProblemInstance, Solution};

/// The outcome of one [`EngineHandle`] solve.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// The solution, `None` on failure (infeasible, or budget expired
    /// before any member produced a placement).
    pub solution: Option<Solution>,
    /// Portfolio telemetry, when the algorithm ran on the engine.
    pub report: Option<PortfolioReport>,
    /// Wall-clock time of the solve.
    pub wall: Duration,
}

impl EngineRun {
    /// Whether the solve was cut short by the wall-clock budget (a timed
    /// out run may still carry a best-effort solution). Only
    /// [`MemberOutcome::TimedOut`] counts: `Skipped` members are a normal
    /// result of a lower-index member winning first.
    pub fn timed_out(&self) -> bool {
        self.report
            .as_ref()
            .is_some_and(|r| r.count(MemberOutcome::TimedOut) > 0)
    }

    /// Total packing probes (or trials) spent, when telemetry exists.
    pub fn probes(&self) -> u64 {
        self.report.as_ref().map_or(0, |r| r.total_probes())
    }

    /// Label of the winning portfolio member, when telemetry exists.
    pub fn winner(&self) -> Option<&str> {
        self.report.as_ref().and_then(|r| r.winner_label())
    }
}

/// An algorithm bound to a long-lived [`SolveCtx`], tracking the last
/// achieved yield so that re-solves after small workload changes start
/// their binary searches near the previous optimum.
pub struct EngineHandle<A: Algorithm = MetaVp> {
    algorithm: A,
    ctx: SolveCtx,
    last_yield: Option<f64>,
}

impl<A: Algorithm> EngineHandle<A> {
    /// Wraps `algorithm` with a fresh context.
    pub fn new(algorithm: A) -> EngineHandle<A> {
        EngineHandle {
            algorithm,
            ctx: SolveCtx::new(),
            last_yield: None,
        }
    }

    /// Sets the engine's internal worker thread count (the allocation
    /// service runs its workers single-threaded by default — parallelism
    /// comes from request-level concurrency, not per-solve fan-out).
    pub fn with_threads(mut self, threads: usize) -> EngineHandle<A> {
        self.ctx.set_threads(Some(threads));
        self
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The handle's context (budget, pruning, telemetry of the last run).
    pub fn ctx_mut(&mut self) -> &mut SolveCtx {
        &mut self.ctx
    }

    /// The achieved minimum yield of the last successful solve, if any —
    /// the default warm hint for [`EngineHandle::resolve`].
    pub fn last_yield(&self) -> Option<f64> {
        self.last_yield
    }

    /// Forgets the warm state (e.g. when the stream switches to an
    /// unrelated instance).
    pub fn reset_warm_state(&mut self) {
        self.last_yield = None;
    }

    /// Cold solve: no warm hint (a brand-new instance).
    pub fn solve(&mut self, instance: &ProblemInstance, budget: Option<Duration>) -> EngineRun {
        self.solve_with_hint(instance, None, budget)
    }

    /// Warm re-solve: seeds the binary searches from the last achieved
    /// yield (after a workload delta, or a re-solve under a new budget).
    pub fn resolve(&mut self, instance: &ProblemInstance, budget: Option<Duration>) -> EngineRun {
        self.solve_with_hint(instance, self.last_yield, budget)
    }

    /// Solve with an explicit warm hint, updating the warm state from the
    /// result. The hint is applied identically whatever the thread count,
    /// so pooled and sequential replays stay bit-for-bit equal.
    pub fn solve_with_hint(
        &mut self,
        instance: &ProblemInstance,
        hint: Option<f64>,
        budget: Option<Duration>,
    ) -> EngineRun {
        self.ctx.set_budget(budget);
        self.ctx.set_warm_hint(hint);
        let t0 = Instant::now();
        let solution = self.algorithm.solve_with(instance, &mut self.ctx);
        let wall = t0.elapsed();
        // A failed solve keeps the previous warm state: the instance may
        // only be infeasible transiently (e.g. a burst of arrivals) and the
        // old yield remains the best available seed.
        if let Some(sol) = &solution {
            self.last_yield = Some(sol.min_yield);
        }
        self.ctx.set_warm_hint(None);
        EngineRun {
            solution,
            report: self.ctx.take_report(),
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::test_support::{small_hetero, tight_memory};

    #[test]
    fn handle_reuses_context_across_instances() {
        let mut engine = EngineHandle::new(MetaVp::metahvp_light()).with_threads(1);
        let a = engine.solve(&small_hetero(), None);
        assert!(a.solution.is_some());
        assert!(a.report.is_some());
        let first_yield = a.solution.unwrap().min_yield;
        assert_eq!(engine.last_yield(), Some(first_yield));

        let b = engine.solve(&tight_memory(), None);
        assert!(b.solution.is_some());
        assert!(b.probes() > 0);
    }

    #[test]
    fn warm_resolve_matches_cold_yield_on_unchanged_instance() {
        // Re-solving the *same* instance warm must land on (at least) the
        // same achieved yield: the hint window probes around the old
        // optimum and the evaluator re-scores the placement exactly.
        let inst = tight_memory();
        let mut engine = EngineHandle::new(MetaVp::metahvp_light()).with_threads(1);
        let cold = engine.solve(&inst, None);
        let cold_yield = cold.solution.as_ref().expect("feasible").min_yield;
        let warm = engine.resolve(&inst, None);
        let warm_yield = warm.solution.as_ref().expect("feasible").min_yield;
        assert!(
            warm_yield >= cold_yield - 1e-9,
            "warm {warm_yield} < cold {cold_yield}"
        );
        // And warm brackets cost fewer probes than the cold search.
        assert!(
            warm.probes() <= cold.probes(),
            "warm {} probes > cold {}",
            warm.probes(),
            cold.probes()
        );
    }

    #[test]
    fn warm_hint_is_thread_count_invariant() {
        let inst = tight_memory();
        let mut seq = EngineHandle::new(MetaVp::metahvp_light()).with_threads(1);
        let mut par = EngineHandle::new(MetaVp::metahvp_light()).with_threads(4);
        for round in 0..3 {
            let a = seq.resolve(&inst, None);
            let b = par.resolve(&inst, None);
            let (sa, sb) = (a.solution.unwrap(), b.solution.unwrap());
            assert_eq!(sa.min_yield, sb.min_yield, "round {round}");
            assert_eq!(sa.placement, sb.placement, "round {round}");
            assert_eq!(
                a.report.unwrap().winner,
                b.report.unwrap().winner,
                "round {round}"
            );
        }
    }
}
