//! The portfolio engine: shared solve context, cross-member incumbent
//! pruning, per-worker scratch and per-member telemetry.
//!
//! The paper's headline heuristics are *portfolios* — METAGREEDY folds 49
//! greedy variants, METAVP 33 and METAHVP 253 packing strategies. The
//! engine runs those members through [`vmplace_par::portfolio_run`]
//! (dynamic distribution over workers that each own a reusable scratch
//! workspace) and threads a [`SolveCtx`] through the whole solve path:
//!
//! * a **shared incumbent** ([`vmplace_par::Incumbent`]): each member's
//!   binary search publishes every improved lower bound and abandons as
//!   soon as its upper bracket can no longer beat the best published pair
//!   `(yield, member index)`. Pruning is *result-invariant*: published
//!   values are lower bounds of final yields, so a member that could still
//!   win (or tie with priority) is never abandoned — the winner and its
//!   yield are identical whatever the thread count or scheduling;
//! * **per-worker scratch** ([`crate::vp::PackScratch`] and friends): sort
//!   keys, yield-scaled item tables, bin/item permutations and packing
//!   state are allocated once per worker and reused across all members it
//!   claims, so steady-state probes allocate nothing;
//! * a **budget/deadline**: an optional wall-clock budget after which
//!   members stop at the next probe boundary and the engine returns the
//!   best result found so far (best-effort anytime behaviour; determinism
//!   holds only for unbudgeted runs);
//! * **telemetry**: a [`PortfolioReport`] recording, per member, the
//!   outcome, searched yield, probe count and wall time, plus the winner.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::vp::PackScratch;

/// How a portfolio member ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberOutcome {
    /// Ran to completion with a feasible result.
    Solved,
    /// Could not satisfy the rigid requirements (infeasible at yield 0),
    /// or — for sampling members — the trial failed.
    Failed,
    /// Abandoned because the shared incumbent already dominated anything
    /// the member could still achieve.
    Pruned,
    /// Stopped at a probe boundary by the wall-clock budget.
    TimedOut,
    /// Never started: the budget had expired (or a lower-index member had
    /// already won) before the member was scheduled.
    Skipped,
}

/// Telemetry for one portfolio member.
#[derive(Clone, Debug)]
pub struct MemberReport {
    /// Index of the member within its roster.
    pub member: usize,
    /// How the member ended.
    pub outcome: MemberOutcome,
    /// The member's searched yield (binary-search lower bound), when it
    /// produced one before ending.
    pub searched_yield: Option<f64>,
    /// Number of packing probes (or placements/trials) attempted.
    pub probes: u32,
    /// Wall-clock time spent on this member.
    pub wall: Duration,
}

/// Telemetry for one engine run.
#[derive(Clone, Debug)]
pub struct PortfolioReport {
    /// The algorithm that produced the report (e.g. `"METAHVP"`).
    pub algorithm: String,
    /// Cached member labels, indexed like [`MemberReport::member`].
    pub labels: Arc<Vec<String>>,
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Total wall-clock time of the engine run.
    pub wall: Duration,
    /// Winning member index, if any member produced a result.
    pub winner: Option<usize>,
    /// Per-member telemetry, in roster order.
    pub members: Vec<MemberReport>,
}

impl PortfolioReport {
    /// Label of member `i` (`"?"` when the roster did not cache labels).
    pub fn label_of(&self, member: usize) -> &str {
        self.labels.get(member).map(String::as_str).unwrap_or("?")
    }

    /// Label of the winning member, if any.
    pub fn winner_label(&self) -> Option<&str> {
        self.winner.map(|w| self.label_of(w))
    }

    /// Total packing probes (or trials) across all members.
    pub fn total_probes(&self) -> u64 {
        self.members.iter().map(|m| m.probes as u64).sum()
    }

    /// Number of members with the given outcome.
    pub fn count(&self, outcome: MemberOutcome) -> usize {
        self.members.iter().filter(|m| m.outcome == outcome).count()
    }
}

/// The context threaded through every solve: thread count, incumbent
/// pruning switch, wall-clock budget and the report of the last portfolio
/// run. Reusing one context across solves also reuses its caller-side
/// packing scratch.
pub struct SolveCtx {
    threads: Option<usize>,
    budget: Option<Duration>,
    pruning: bool,
    warm_hint: Option<f64>,
    report: Option<PortfolioReport>,
    pub(crate) scratch: PackScratch,
    /// Long-lived per-worker packing workspaces: the portfolio engine tops
    /// this vector up to its worker count and reuses it across every solve
    /// that goes through the same context (the allocation service's
    /// resident workers keep one context alive for thousands of requests).
    pub(crate) workers: Vec<PackScratch>,
}

impl Default for SolveCtx {
    fn default() -> Self {
        SolveCtx::new()
    }
}

impl SolveCtx {
    /// A context with default settings: threads from
    /// [`vmplace_par::num_threads`], incumbent pruning on, no budget.
    pub fn new() -> SolveCtx {
        SolveCtx {
            threads: None,
            budget: None,
            pruning: true,
            warm_hint: None,
            report: None,
            scratch: PackScratch::new(),
            workers: Vec::new(),
        }
    }

    /// Overrides the worker thread count (1 = fully sequential fold).
    pub fn with_threads(mut self, threads: usize) -> SolveCtx {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets a wall-clock budget for each subsequent solve. Members stop at
    /// the next probe boundary once it expires and the best result found
    /// so far is returned (possibly none).
    pub fn with_budget(mut self, budget: Duration) -> SolveCtx {
        self.budget = Some(budget);
        self
    }

    /// Sets or clears the wall-clock budget in place (per-request budgets
    /// on a long-lived context).
    pub fn set_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
    }

    /// Sets the worker thread count in place (see
    /// [`SolveCtx::with_threads`]); `None` restores the default.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|t| t.max(1));
    }

    /// Enables or disables incumbent pruning (on by default; the off
    /// switch exists for differential testing and ablations).
    pub fn with_pruning(mut self, pruning: bool) -> SolveCtx {
        self.pruning = pruning;
        self
    }

    /// Worker threads the next portfolio run will use. Accounts for the
    /// nested-parallelism guard: inside a sweep worker the engine runs
    /// inline, and reports record that honestly.
    pub fn effective_threads(&self) -> usize {
        if vmplace_par::in_parallel_region() {
            return 1;
        }
        self.threads.unwrap_or_else(vmplace_par::num_threads)
    }

    /// Whether incumbent pruning is enabled.
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Seeds the **next** solve's binary searches with a previously
    /// achieved yield (the allocation service passes the prior placement's
    /// achieved yield when re-solving after a workload delta). The hint is
    /// consumed by the solve; it narrows each member's initial bracket
    /// around the hint with two extra probes, which typically saves
    /// several bisection steps when the optimum moved only slightly.
    ///
    /// The hint changes each member's *probe sequence* (and hence the
    /// dyadic grid the search lands on) but is applied identically on
    /// every thread count, so engine determinism across 1 vs N threads is
    /// preserved.
    pub fn set_warm_hint(&mut self, hint: Option<f64>) {
        self.warm_hint = hint.filter(|h| h.is_finite());
    }

    /// Takes the pending warm hint (engine internals; consuming keeps a
    /// stale hint from leaking into an unrelated later solve).
    pub(crate) fn take_warm_hint(&mut self) -> Option<f64> {
        self.warm_hint.take()
    }

    /// The configured wall-clock budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// The deadline for a solve starting now.
    pub(crate) fn deadline_from_now(&self) -> Option<Instant> {
        self.budget.map(|b| Instant::now() + b)
    }

    /// Telemetry of the last portfolio run through this context, if any.
    pub fn last_report(&self) -> Option<&PortfolioReport> {
        self.report.as_ref()
    }

    /// Takes the telemetry of the last portfolio run out of the context.
    pub fn take_report(&mut self) -> Option<PortfolioReport> {
        self.report.take()
    }

    /// Stores the report of a finished portfolio run.
    pub(crate) fn set_report(&mut self, report: PortfolioReport) {
        self.report = Some(report);
    }
}

/// The engine's deterministic reduce: the highest-scoring candidate wins,
/// ties resolving to the lowest member index (`None` scores are not
/// candidates). Shared by every portfolio family so the tie-break can
/// never diverge between them.
pub(crate) fn best_member<I>(scores: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = Option<f64>>,
{
    let mut winner: Option<(usize, f64)> = None;
    for (i, score) in scores.into_iter().enumerate() {
        if let Some(score) = score {
            if winner.map(|(_, best)| score > best).unwrap_or(true) {
                winner = Some((i, score));
            }
        }
    }
    winner
}
