//! RRND and RRNZ: randomized rounding of the rational LP relaxation (§3.3).
//!
//! The relaxed solution's fractional `e_jh` values are used as placement
//! probabilities. For each service (natural order) a node is drawn; if the
//! service's rigid requirements no longer fit there, that node's probability
//! is zeroed, the remainder renormalised and the draw repeated — the run
//! fails once a service has no mass left.
//!
//! RRNZ differs only in seeding every *structurally feasible* zero
//! probability with `ε = 0.01` first, so services whose LP support turns out
//! to be packed full still have somewhere to go.

use crate::algorithm::Algorithm;
use crate::portfolio::{MemberOutcome, MemberReport, PortfolioReport, SolveCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vmplace_lp::{SimplexOptions, YieldLp};
use vmplace_model::{
    evaluate_placement, Placement, ProblemInstance, ResourceVector, Solution, EPSILON,
};

/// Randomized rounding of the LP relaxation (RRND / RRNZ).
#[derive(Clone, Debug)]
pub struct RandomizedRounding {
    /// `None` → RRND; `Some(ε)` → RRNZ with that floor (paper: 0.01).
    pub epsilon: Option<f64>,
    /// RNG seed — runs are deterministic given a seed.
    pub seed: u64,
    /// Number of full rounding passes attempted before declaring failure
    /// (the paper uses a single pass; more only helps RRND's success rate).
    pub attempts: usize,
    /// Simplex options for the relaxation solve.
    pub simplex: SimplexOptions,
}

impl RandomizedRounding {
    /// The paper's RRND.
    pub fn rrnd(seed: u64) -> Self {
        RandomizedRounding {
            epsilon: None,
            seed,
            attempts: 1,
            simplex: SimplexOptions::default(),
        }
    }

    /// The paper's RRNZ (ε = 0.01).
    pub fn rrnz(seed: u64) -> Self {
        RandomizedRounding {
            epsilon: Some(0.01),
            seed,
            attempts: 1,
            simplex: SimplexOptions::default(),
        }
    }

    /// One rounding pass over all services; `probs` is consumed.
    fn round_once(
        &self,
        instance: &ProblemInstance,
        mut probs: Vec<Vec<f64>>,
        rng: &mut StdRng,
    ) -> Option<Placement> {
        let dims = instance.dims();
        let h_count = instance.num_nodes();
        let mut req_load = vec![ResourceVector::zeros(dims); h_count];
        let mut placement = Placement::empty(instance.num_services());

        'services: for j in 0..instance.num_services() {
            let p = &mut probs[j];
            loop {
                let total: f64 = p.iter().sum();
                if total <= 1e-12 {
                    return None; // no probability mass left for service j
                }
                let mut draw = rng.gen::<f64>() * total;
                let mut h = h_count - 1;
                for (i, &pi) in p.iter().enumerate() {
                    if draw < pi {
                        h = i;
                        break;
                    }
                    draw -= pi;
                }
                if fits(instance, &req_load, j, h) {
                    req_load[h].add_assign(&instance.services()[j].req_agg);
                    placement.assign(j, h);
                    continue 'services;
                }
                p[h] = 0.0; // adjust probabilities and redraw
            }
        }
        Some(placement)
    }
}

fn fits(instance: &ProblemInstance, req_load: &[ResourceVector], j: usize, h: usize) -> bool {
    let s = &instance.services()[j];
    let n = &instance.nodes()[h];
    if !s.req_elem.le(&n.elementary, EPSILON) {
        return false;
    }
    for d in 0..instance.dims() {
        if req_load[h][d] + s.req_agg[d] > n.aggregate[d] + EPSILON {
            return false;
        }
    }
    true
}

impl Algorithm for RandomizedRounding {
    fn name(&self) -> &str {
        if self.epsilon.is_some() {
            "RRNZ"
        } else {
            "RRND"
        }
    }

    /// Solves the LP relaxation once, then races the rounding trials on
    /// the portfolio engine. Trial `t` draws from its own deterministic
    /// RNG stream (trial 0 uses `seed` exactly, matching the historical
    /// single-pass behaviour); the first successful trial by index wins,
    /// so results are independent of scheduling.
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        let started = Instant::now();
        let threads = ctx.effective_threads();
        let deadline = ctx.deadline_from_now();
        let ylp = YieldLp::build(instance)?;
        let relaxed = ylp.solve_relaxed(&self.simplex)?;

        // Placement probabilities; RRNZ floors feasible-but-zero entries.
        let mut probs = relaxed.e;
        if let Some(eps) = self.epsilon {
            for (j, row) in probs.iter_mut().enumerate() {
                for (h, p) in row.iter_mut().enumerate() {
                    if *p < eps && instance.service_fits_empty_node(j, h) {
                        *p = p.max(eps);
                    }
                }
            }
        }

        let attempts = self.attempts.max(1);
        // Lowest successful trial index so far: later trials skip once a
        // lower-index trial has won (result-invariant early exit).
        let best_success = AtomicUsize::new(usize::MAX);

        struct Outcome {
            placement: Option<Placement>,
            outcome: MemberOutcome,
            wall: std::time::Duration,
        }

        let outcomes: Vec<Outcome> = vmplace_par::portfolio_run(
            attempts,
            threads,
            || (),
            |trial, _| {
                let t0 = Instant::now();
                if best_success.load(Ordering::Acquire) < trial {
                    return Outcome {
                        placement: None,
                        outcome: MemberOutcome::Skipped,
                        wall: t0.elapsed(),
                    };
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Outcome {
                        placement: None,
                        outcome: MemberOutcome::TimedOut,
                        wall: t0.elapsed(),
                    };
                }
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        .wrapping_add((trial as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                );
                let placement = self.round_once(instance, probs.clone(), &mut rng);
                if placement.is_some() {
                    best_success.fetch_min(trial, Ordering::AcqRel);
                }
                Outcome {
                    outcome: if placement.is_some() {
                        MemberOutcome::Solved
                    } else {
                        MemberOutcome::Failed
                    },
                    placement,
                    wall: t0.elapsed(),
                }
            },
        );

        let winner = outcomes.iter().position(|o| o.placement.is_some());
        let labels: Vec<String> = (0..attempts).map(|t| format!("TRIAL{t}")).collect();
        let members: Vec<MemberReport> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| MemberReport {
                member: i,
                outcome: o.outcome,
                searched_yield: None,
                probes: u32::from(matches!(
                    o.outcome,
                    MemberOutcome::Solved | MemberOutcome::Failed
                )),
                wall: o.wall,
            })
            .collect();
        ctx.set_report(PortfolioReport {
            algorithm: self.name().to_string(),
            labels: Arc::new(labels),
            threads,
            wall: started.elapsed(),
            winner,
            members,
        });

        let index = winner?;
        let placement = outcomes
            .into_iter()
            .nth(index)
            .and_then(|o| o.placement)
            .expect("winner carries a placement");
        evaluate_placement(instance, &placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::{Node, Service};

    fn figure1() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn single_service_lands_on_a_feasible_node() {
        // Several optimal LP vertices exist (mass may split between nodes);
        // whatever the rounding draws, the achieved yield must match the
        // node: 0.6 on node A, 1.0 on node B (Figure 1 of the paper).
        let sol = RandomizedRounding::rrnz(42).solve(&figure1()).unwrap();
        match sol.placement.node_of(0) {
            Some(0) => assert!((sol.min_yield - 0.6).abs() < 1e-6),
            Some(1) => assert!((sol.min_yield - 1.0).abs() < 1e-6),
            other => panic!("unexpected placement {other:?}"),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = multi_instance();
        let a = RandomizedRounding::rrnz(7).solve(&inst);
        let b = RandomizedRounding::rrnz(7).solve(&inst);
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.placement, y.placement);
            }
            (None, None) => {}
            _ => panic!("nondeterministic outcome"),
        }
    }

    fn multi_instance() -> ProblemInstance {
        let nodes = vec![
            Node::multicore(2, 0.5, 0.6),
            Node::multicore(2, 0.5, 0.6),
            Node::multicore(2, 0.4, 0.5),
        ];
        let mk = |rc: f64, nc: f64, mem: f64| {
            Service::new(
                vec![rc / 2.0, mem],
                vec![rc, mem],
                vec![nc / 2.0, 0.0],
                vec![nc, 0.0],
            )
        };
        let services = vec![
            mk(0.1, 0.4, 0.25),
            mk(0.2, 0.3, 0.3),
            mk(0.1, 0.5, 0.2),
            mk(0.15, 0.2, 0.35),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn rrnz_succeeds_on_feasible_multiservice_instance() {
        let inst = multi_instance();
        let sol = RandomizedRounding::rrnz(3).solve(&inst);
        assert!(sol.is_some());
        let sol = sol.unwrap();
        assert!(sol.placement.feasible_at_yield(&inst, 0.0));
        assert!(sol.min_yield >= 0.0 && sol.min_yield <= 1.0);
    }

    #[test]
    fn fails_cleanly_on_impossible_instance() {
        let nodes = vec![Node::multicore(1, 0.5, 0.2)];
        let services = vec![Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(RandomizedRounding::rrnd(1).solve(&inst).is_none());
        assert!(RandomizedRounding::rrnz(1).solve(&inst).is_none());
    }

    #[test]
    fn rrnz_can_escape_zero_support() {
        // Construct an instance where the LP concentrates each service's
        // support, then verify RRNZ still succeeds across several seeds
        // (RRND may fail; RRNZ's ε-floor provides fallback nodes).
        let inst = multi_instance();
        let mut successes = 0;
        for seed in 0..10 {
            if RandomizedRounding::rrnz(seed).solve(&inst).is_some() {
                successes += 1;
            }
        }
        assert!(successes >= 8, "RRNZ succeeded only {successes}/10 times");
    }
}
