//! Exact optimal placement via the MILP (§3.2) — tractable for small
//! instances only, used as ground truth in tests and ablations.
//!
//! The branch & bound underneath shares one persistent simplex solver
//! across the whole tree and warm-starts every node from its parent's
//! basis (see `vmplace-lp`), so the exact reference scales to noticeably
//! larger instances than a cold per-node solver would.

use crate::algorithm::Algorithm;
use crate::portfolio::SolveCtx;
use vmplace_lp::{MilpOptions, YieldLp};
use vmplace_model::{evaluate_placement, ProblemInstance, Solution};

/// Exact minimum-yield maximisation by branch & bound on the paper's MILP.
#[derive(Clone, Debug, Default)]
pub struct ExactMilp {
    /// Branch & bound options.
    pub options: MilpOptions,
}

impl ExactMilp {
    /// Exact solver with a custom node budget.
    pub fn with_node_limit(max_nodes: usize) -> Self {
        Self::with_options(MilpOptions {
            max_nodes,
            ..MilpOptions::default()
        })
    }

    /// Exact solver with fully custom branch & bound / simplex options.
    pub fn with_options(options: MilpOptions) -> Self {
        ExactMilp { options }
    }
}

impl Algorithm for ExactMilp {
    fn name(&self) -> &str {
        "MILP"
    }

    /// Branch & bound is a single member — the context's threads and
    /// incumbent do not apply (the solver has its own internal bounding) —
    /// but its wall-clock budget does: it becomes the tree's `time_budget`,
    /// and an expired budget surfaces the best feasible incumbent found in
    /// time instead of failing.
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        let ylp = YieldLp::build(instance)?;
        let mut options = self.options.clone();
        if let Some(budget) = ctx.budget() {
            options.time_budget = Some(budget);
        }
        let (placement, _objective) = ylp.decode_milp(ylp.solve_exact_result(&options))?;
        evaluate_placement(instance, &placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::MetaGreedy;
    use crate::vp::MetaVp;
    use vmplace_model::{Node, ProblemInstance, Service};

    fn small() -> ProblemInstance {
        let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.4, 0.6)];
        let mk = |rc: f64, nc: f64, mem: f64| {
            Service::new(
                vec![rc / 2.0, mem],
                vec![rc, mem],
                vec![nc / 2.0, 0.0],
                vec![nc, 0.0],
            )
        };
        let services = vec![mk(0.2, 0.6, 0.3), mk(0.1, 0.5, 0.4), mk(0.15, 0.7, 0.2)];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn exact_dominates_heuristics() {
        let inst = small();
        let exact = ExactMilp::default().solve(&inst).expect("feasible");
        for sol in [
            MetaGreedy.solve(&inst),
            MetaVp::metavp().solve(&inst),
            MetaVp::metahvp().solve(&inst),
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                exact.min_yield >= sol.min_yield - 1e-4,
                "exact {} < heuristic {}",
                exact.min_yield,
                sol.min_yield
            );
        }
    }

    #[test]
    fn exact_matches_figure1() {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let sol = ExactMilp::default().solve(&inst).unwrap();
        assert_eq!(sol.placement.node_of(0), Some(1));
        assert!((sol.min_yield - 1.0).abs() < 1e-9);
    }
}
