//! Service sorting strategies S1–S7 (§3.4).

use vmplace_model::ProblemInstance;

/// How the greedy pass orders the services before placing them.
///
/// All "decreasing" orders are stable with respect to the natural service
/// index, so runs are deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceSort {
    /// S1: no sorting (natural order).
    None,
    /// S2: decreasing by maximum aggregate need.
    MaxNeed,
    /// S3: decreasing by sum of aggregate needs.
    SumNeed,
    /// S4: decreasing by maximum aggregate requirement.
    MaxRequirement,
    /// S5: decreasing by sum of aggregate requirements.
    SumRequirement,
    /// S6: decreasing by max(sum of requirements, sum of needs).
    MaxOfSums,
    /// S7: decreasing by sum of requirements and needs.
    SumOfAll,
}

impl ServiceSort {
    /// All seven strategies in paper order.
    pub const ALL: [ServiceSort; 7] = [
        ServiceSort::None,
        ServiceSort::MaxNeed,
        ServiceSort::SumNeed,
        ServiceSort::MaxRequirement,
        ServiceSort::SumRequirement,
        ServiceSort::MaxOfSums,
        ServiceSort::SumOfAll,
    ];

    /// Paper label (S1–S7).
    pub fn label(&self) -> &'static str {
        match self {
            ServiceSort::None => "S1",
            ServiceSort::MaxNeed => "S2",
            ServiceSort::SumNeed => "S3",
            ServiceSort::MaxRequirement => "S4",
            ServiceSort::SumRequirement => "S5",
            ServiceSort::MaxOfSums => "S6",
            ServiceSort::SumOfAll => "S7",
        }
    }

    /// The service indices in placement order.
    pub fn order(&self, instance: &ProblemInstance) -> Vec<usize> {
        let mut idx = Vec::new();
        let mut keys = Vec::new();
        self.order_into(instance, &mut idx, &mut keys);
        idx
    }

    /// As [`ServiceSort::order`], writing into caller-provided buffers
    /// (allocation-free once the buffers have grown to size).
    pub fn order_into(
        &self,
        instance: &ProblemInstance,
        idx: &mut Vec<usize>,
        keys: &mut Vec<f64>,
    ) {
        idx.clear();
        idx.extend(0..instance.num_services());
        if *self == ServiceSort::None {
            return;
        }
        keys.clear();
        keys.extend(instance.services().iter().map(|s| match self {
            ServiceSort::None => 0.0,
            ServiceSort::MaxNeed => s.need_agg.max_component(),
            ServiceSort::SumNeed => s.need_agg.sum(),
            ServiceSort::MaxRequirement => s.req_agg.max_component(),
            ServiceSort::SumRequirement => s.req_agg.sum(),
            ServiceSort::MaxOfSums => s.req_agg.sum().max(s.need_agg.sum()),
            ServiceSort::SumOfAll => s.req_agg.sum() + s.need_agg.sum(),
        }));
        idx.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap().then(a.cmp(&b)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::{Node, Service};

    fn instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 1.0, 1.0)];
        // service 0: req sum 0.3, need sum 0.9; service 1: req 0.8, need 0.2;
        // service 2: req 0.5, need 0.5.
        let mk = |r: [f64; 2], n: [f64; 2]| {
            Service::new(
                vec![r[0], r[1]],
                vec![r[0], r[1]],
                vec![n[0], n[1]],
                vec![n[0], n[1]],
            )
        };
        let services = vec![
            mk([0.1, 0.2], [0.8, 0.1]),
            mk([0.6, 0.2], [0.1, 0.1]),
            mk([0.25, 0.25], [0.3, 0.2]),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn s1_is_natural_order() {
        assert_eq!(ServiceSort::None.order(&instance()), vec![0, 1, 2]);
    }

    #[test]
    fn s2_sorts_by_max_need() {
        // max needs: 0.8, 0.1, 0.3 → order 0, 2, 1.
        assert_eq!(ServiceSort::MaxNeed.order(&instance()), vec![0, 2, 1]);
    }

    #[test]
    fn s5_sorts_by_sum_requirement() {
        // req sums: 0.3, 0.8, 0.5 → order 1, 2, 0.
        assert_eq!(
            ServiceSort::SumRequirement.order(&instance()),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn s7_sorts_by_total() {
        // totals: 0.3+0.9=1.2, 0.8+0.2=1.0, 0.5+0.5=1.0 → 0 first, tie 1,2 by index.
        assert_eq!(ServiceSort::SumOfAll.order(&instance()), vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_by_index_for_determinism() {
        let nodes = vec![Node::multicore(1, 1.0, 1.0)];
        let svc = Service::rigid(vec![0.1, 0.1], vec![0.1, 0.1]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc.clone(), svc]).unwrap();
        for s in ServiceSort::ALL {
            assert_eq!(s.order(&inst), vec![0, 1, 2], "{}", s.label());
        }
    }
}
