//! The greedy algorithm family of §3.4 (imported from the authors' earlier
//! homogeneous-platform work \[3\]).
//!
//! A greedy algorithm is a pair *(service sorting strategy S1–S7, node
//! picking strategy P1–P7)*: services are considered in sorted order and
//! each is placed on the node chosen by the picker among those whose spare
//! capacity still covers the service's rigid requirements. Yields are then
//! computed by the shared water-filling evaluator. [`MetaGreedy`] races all
//! 49 combinations on the portfolio engine and keeps the best minimum
//! yield (ties to the lowest member index, so results are independent of
//! scheduling).

mod picking;
mod sorting;

pub use picking::NodePicker;
pub use sorting::ServiceSort;

use crate::algorithm::Algorithm;
use crate::portfolio::{MemberOutcome, MemberReport, PortfolioReport, SolveCtx};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use vmplace_model::{
    evaluate_placement, Placement, ProblemInstance, ResourceVector, Solution, EPSILON,
};

/// One member of the greedy family: a (sorting, picking) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyAlgorithm {
    /// Service ordering strategy (S1–S7).
    pub sort: ServiceSort,
    /// Node selection strategy (P1–P7).
    pub pick: NodePicker,
}

/// Mutable platform state threaded through a greedy run.
pub(crate) struct GreedyState {
    /// Σ placed aggregate requirements per node (feasibility).
    pub req_load: Vec<ResourceVector>,
    /// Σ placed `rᵃ + nᵃ` per node (the "load" the pickers reason about).
    pub load: Vec<ResourceVector>,
}

impl GreedyState {
    fn reset(&mut self, instance: &ProblemInstance) {
        let dims = instance.dims();
        let zero = ResourceVector::zeros(dims);
        self.req_load.clear();
        self.req_load.resize(instance.num_nodes(), zero.clone());
        self.load.clear();
        self.load.resize(instance.num_nodes(), zero);
    }

    /// Whether service `j` can still be placed on node `h` (rigid
    /// requirements only — elementary and aggregate).
    pub fn fits(&self, instance: &ProblemInstance, j: usize, h: usize) -> bool {
        let s = &instance.services()[j];
        let n = &instance.nodes()[h];
        if !s.req_elem.le(&n.elementary, EPSILON) {
            return false;
        }
        for d in 0..instance.dims() {
            if self.req_load[h][d] + s.req_agg[d] > n.aggregate[d] + EPSILON {
                return false;
            }
        }
        true
    }

    fn place(&mut self, instance: &ProblemInstance, j: usize, h: usize) {
        let s = &instance.services()[j];
        self.req_load[h].add_assign(&s.req_agg);
        self.load[h].add_assign(&s.req_agg);
        self.load[h].add_assign(&s.need_agg);
    }
}

/// Reusable buffers for a greedy portfolio worker: platform state, the
/// service order and the output placement.
pub struct GreedyScratch {
    state: GreedyState,
    order: Vec<usize>,
    keys: Vec<f64>,
    placement: Placement,
}

impl Default for GreedyScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> GreedyScratch {
        GreedyScratch {
            state: GreedyState {
                req_load: Vec::new(),
                load: Vec::new(),
            },
            order: Vec::new(),
            keys: Vec::new(),
            placement: Placement::empty(0),
        }
    }

    /// The placement produced by the last successful
    /// [`GreedyAlgorithm::place_with`].
    pub fn placement(&self) -> &Placement {
        &self.placement
    }
}

impl GreedyAlgorithm {
    /// All 49 members of the family, S-major order.
    pub fn all() -> Vec<GreedyAlgorithm> {
        let mut out = Vec::with_capacity(49);
        for sort in ServiceSort::ALL {
            for pick in NodePicker::ALL {
                out.push(GreedyAlgorithm { sort, pick });
            }
        }
        out
    }

    /// Index of this member within [`GreedyAlgorithm::all`] (S-major).
    fn index(&self) -> usize {
        let s = ServiceSort::ALL.iter().position(|x| x == &self.sort);
        let p = NodePicker::ALL.iter().position(|x| x == &self.pick);
        s.unwrap() * NodePicker::ALL.len() + p.unwrap()
    }

    /// Cached labels for all 49 members, in [`GreedyAlgorithm::all`] order.
    pub fn all_labels() -> &'static Arc<Vec<String>> {
        static LABELS: OnceLock<Arc<Vec<String>>> = OnceLock::new();
        LABELS.get_or_init(|| {
            Arc::new(
                GreedyAlgorithm::all()
                    .iter()
                    .map(|a| format!("GREEDY_{}_{}", a.sort.label(), a.pick.label()))
                    .collect(),
            )
        })
    }

    /// Runs the placement loop only (no yield evaluation); exposed for the
    /// meta algorithm and for tests.
    pub fn place(&self, instance: &ProblemInstance) -> Option<Placement> {
        let mut scratch = GreedyScratch::new();
        self.place_with(instance, &mut scratch)
            .then(|| std::mem::replace(&mut scratch.placement, Placement::empty(0)))
    }

    /// As [`GreedyAlgorithm::place`], using `scratch` for all working state
    /// (allocation-free once the buffers have grown to size). On success
    /// the placement is left in [`GreedyScratch::placement`].
    pub fn place_with(&self, instance: &ProblemInstance, scratch: &mut GreedyScratch) -> bool {
        self.sort
            .order_into(instance, &mut scratch.order, &mut scratch.keys);
        scratch.state.reset(instance);
        scratch.placement.reset(instance.num_services());
        for &j in &scratch.order {
            let Some(h) = self.pick.pick(instance, &scratch.state, j) else {
                return false;
            };
            scratch.state.place(instance, j, h);
            scratch.placement.assign(j, h);
        }
        true
    }
}

impl Algorithm for GreedyAlgorithm {
    fn name(&self) -> &str {
        &Self::all_labels()[self.index()]
    }

    fn solve_with(&self, instance: &ProblemInstance, _ctx: &mut SolveCtx) -> Option<Solution> {
        let placement = self.place(instance)?;
        evaluate_placement(instance, &placement)
    }
}

/// METAGREEDY: race all 49 greedy algorithms on the portfolio engine, keep
/// the best minimum yield among those that succeed.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetaGreedy;

impl Algorithm for MetaGreedy {
    fn name(&self) -> &str {
        "METAGREEDY"
    }

    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        let started = Instant::now();
        let threads = ctx.effective_threads();
        let deadline = ctx.deadline_from_now();
        let members = GreedyAlgorithm::all();

        struct Outcome {
            solution: Option<Solution>,
            outcome: MemberOutcome,
            wall: std::time::Duration,
        }

        let outcomes: Vec<Outcome> = vmplace_par::portfolio_run(
            members.len(),
            threads,
            GreedyScratch::new,
            |member, scratch: &mut GreedyScratch| {
                let t0 = Instant::now();
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Outcome {
                        solution: None,
                        outcome: MemberOutcome::TimedOut,
                        wall: t0.elapsed(),
                    };
                }
                // Greedy members place once — there is no probe sequence to
                // prune, and yields are only known after evaluation.
                let solution = members[member]
                    .place_with(instance, scratch)
                    .then(|| evaluate_placement(instance, &scratch.placement))
                    .flatten();
                Outcome {
                    outcome: if solution.is_some() {
                        MemberOutcome::Solved
                    } else {
                        MemberOutcome::Failed
                    },
                    solution,
                    wall: t0.elapsed(),
                }
            },
        );

        // Deterministic reduce: best evaluated minimum yield, ties to the
        // lowest member index.
        let winner = crate::portfolio::best_member(
            outcomes
                .iter()
                .map(|o| o.solution.as_ref().map(|s| s.min_yield)),
        );

        let member_reports: Vec<MemberReport> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| MemberReport {
                member: i,
                outcome: o.outcome,
                searched_yield: o.solution.as_ref().map(|s| s.min_yield),
                probes: u32::from(o.outcome != MemberOutcome::TimedOut),
                wall: o.wall,
            })
            .collect();
        ctx.set_report(PortfolioReport {
            algorithm: "METAGREEDY".to_string(),
            labels: Arc::clone(GreedyAlgorithm::all_labels()),
            threads,
            wall: started.elapsed(),
            winner: winner.map(|(i, _)| i),
            members: member_reports,
        });

        let (index, _) = winner?;
        outcomes.into_iter().nth(index).and_then(|o| o.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::{Node, Service};

    fn two_node_instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![
            Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            ),
            Service::rigid(vec![0.2, 0.4], vec![0.2, 0.4]),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn every_greedy_member_runs() {
        let inst = two_node_instance();
        let algs = GreedyAlgorithm::all();
        assert_eq!(algs.len(), 49);
        let mut successes = 0;
        for alg in algs {
            if let Some(sol) = alg.solve(&inst) {
                successes += 1;
                assert!(sol.min_yield >= 0.0 && sol.min_yield <= 1.0);
                assert!(sol.placement.is_complete());
            }
        }
        assert!(successes > 0, "at least some greedy variants must succeed");
    }

    #[test]
    fn metagreedy_at_least_as_good_as_each_member() {
        let inst = two_node_instance();
        let meta = MetaGreedy.solve(&inst).expect("feasible");
        for alg in GreedyAlgorithm::all() {
            if let Some(sol) = alg.solve(&inst) {
                assert!(
                    meta.min_yield >= sol.min_yield - 1e-12,
                    "METAGREEDY {} < {} ({})",
                    meta.min_yield,
                    sol.min_yield,
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn metagreedy_parallel_equals_sequential() {
        let inst = two_node_instance();
        let mut seq = SolveCtx::new().with_threads(1);
        let mut par = SolveCtx::new().with_threads(4);
        let a = MetaGreedy.solve_with(&inst, &mut seq).unwrap();
        let b = MetaGreedy.solve_with(&inst, &mut par).unwrap();
        assert_eq!(a.min_yield, b.min_yield);
        assert_eq!(a.placement, b.placement);
        assert_eq!(
            seq.take_report().unwrap().winner,
            par.take_report().unwrap().winner
        );
    }

    #[test]
    fn greedy_fails_when_memory_cannot_fit() {
        // Two services of 0.6 memory each; nodes have 0.5 and 1.0 total.
        let nodes = vec![Node::multicore(2, 1.0, 0.5), Node::multicore(2, 1.0, 1.0)];
        let svc = Service::rigid(vec![0.1, 0.6], vec![0.1, 0.6]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        // Only one node can hold one 0.6 service; the second service fails.
        for alg in GreedyAlgorithm::all() {
            assert!(alg.solve(&inst).is_none(), "{} should fail", alg.name());
        }
        assert!(MetaGreedy.solve(&inst).is_none());
    }

    #[test]
    fn names_are_distinct_and_borrowed() {
        let algs = GreedyAlgorithm::all();
        let names: std::collections::HashSet<&str> = algs.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 49);
        let g = GreedyAlgorithm {
            sort: ServiceSort::SumNeed,
            pick: NodePicker::MinLoadRatio,
        };
        assert_eq!(g.name(), "GREEDY_S3_P2");
    }
}
