//! The greedy algorithm family of §3.4 (imported from the authors' earlier
//! homogeneous-platform work \[3\]).
//!
//! A greedy algorithm is a pair *(service sorting strategy S1–S7, node
//! picking strategy P1–P7)*: services are considered in sorted order and
//! each is placed on the node chosen by the picker among those whose spare
//! capacity still covers the service's rigid requirements. Yields are then
//! computed by the shared water-filling evaluator. [`MetaGreedy`] runs all
//! 49 combinations and keeps the best minimum yield.

mod picking;
mod sorting;

pub use picking::NodePicker;
pub use sorting::ServiceSort;

use crate::algorithm::Algorithm;
use vmplace_model::{
    evaluate_placement, Placement, ProblemInstance, ResourceVector, Solution, EPSILON,
};

/// One member of the greedy family: a (sorting, picking) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyAlgorithm {
    /// Service ordering strategy (S1–S7).
    pub sort: ServiceSort,
    /// Node selection strategy (P1–P7).
    pub pick: NodePicker,
}

/// Mutable platform state threaded through a greedy run.
pub(crate) struct GreedyState {
    /// Σ placed aggregate requirements per node (feasibility).
    pub req_load: Vec<ResourceVector>,
    /// Σ placed `rᵃ + nᵃ` per node (the "load" the pickers reason about).
    pub load: Vec<ResourceVector>,
}

impl GreedyState {
    fn new(instance: &ProblemInstance) -> Self {
        let dims = instance.dims();
        GreedyState {
            req_load: vec![ResourceVector::zeros(dims); instance.num_nodes()],
            load: vec![ResourceVector::zeros(dims); instance.num_nodes()],
        }
    }

    /// Whether service `j` can still be placed on node `h` (rigid
    /// requirements only — elementary and aggregate).
    pub fn fits(&self, instance: &ProblemInstance, j: usize, h: usize) -> bool {
        let s = &instance.services()[j];
        let n = &instance.nodes()[h];
        if !s.req_elem.le(&n.elementary, EPSILON) {
            return false;
        }
        for d in 0..instance.dims() {
            if self.req_load[h][d] + s.req_agg[d] > n.aggregate[d] + EPSILON {
                return false;
            }
        }
        true
    }

    fn place(&mut self, instance: &ProblemInstance, j: usize, h: usize) {
        let s = &instance.services()[j];
        self.req_load[h].add_assign(&s.req_agg);
        self.load[h].add_assign(&s.req_agg);
        self.load[h].add_assign(&s.need_agg);
    }
}

impl GreedyAlgorithm {
    /// All 49 members of the family, S-major order.
    pub fn all() -> Vec<GreedyAlgorithm> {
        let mut out = Vec::with_capacity(49);
        for sort in ServiceSort::ALL {
            for pick in NodePicker::ALL {
                out.push(GreedyAlgorithm { sort, pick });
            }
        }
        out
    }

    /// Runs the placement loop only (no yield evaluation); exposed for the
    /// meta algorithm and for tests.
    pub fn place(&self, instance: &ProblemInstance) -> Option<Placement> {
        let order = self.sort.order(instance);
        let mut state = GreedyState::new(instance);
        let mut placement = Placement::empty(instance.num_services());
        for &j in &order {
            let h = self.pick.pick(instance, &state, j)?;
            state.place(instance, j, h);
            placement.assign(j, h);
        }
        Some(placement)
    }
}

impl Algorithm for GreedyAlgorithm {
    fn name(&self) -> String {
        format!("GREEDY_{}_{}", self.sort.label(), self.pick.label())
    }

    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        let placement = self.place(instance)?;
        evaluate_placement(instance, &placement)
    }
}

/// METAGREEDY: run all 49 greedy algorithms, keep the best minimum yield
/// among those that succeed.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetaGreedy;

impl Algorithm for MetaGreedy {
    fn name(&self) -> String {
        "METAGREEDY".to_string()
    }

    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        let mut best: Option<Solution> = None;
        for alg in GreedyAlgorithm::all() {
            if let Some(sol) = alg.solve(instance) {
                if best
                    .as_ref()
                    .map(|b| sol.min_yield > b.min_yield)
                    .unwrap_or(true)
                {
                    best = Some(sol);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::{Node, Service};

    fn two_node_instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![
            Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            ),
            Service::rigid(vec![0.2, 0.4], vec![0.2, 0.4]),
        ];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn every_greedy_member_runs() {
        let inst = two_node_instance();
        let algs = GreedyAlgorithm::all();
        assert_eq!(algs.len(), 49);
        let mut successes = 0;
        for alg in algs {
            if let Some(sol) = alg.solve(&inst) {
                successes += 1;
                assert!(sol.min_yield >= 0.0 && sol.min_yield <= 1.0);
                assert!(sol.placement.is_complete());
            }
        }
        assert!(successes > 0, "at least some greedy variants must succeed");
    }

    #[test]
    fn metagreedy_at_least_as_good_as_each_member() {
        let inst = two_node_instance();
        let meta = MetaGreedy.solve(&inst).expect("feasible");
        for alg in GreedyAlgorithm::all() {
            if let Some(sol) = alg.solve(&inst) {
                assert!(
                    meta.min_yield >= sol.min_yield - 1e-12,
                    "METAGREEDY {} < {} ({})",
                    meta.min_yield,
                    sol.min_yield,
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn greedy_fails_when_memory_cannot_fit() {
        // Two services of 0.6 memory each; nodes have 0.5 and 1.0 total.
        let nodes = vec![Node::multicore(2, 1.0, 0.5), Node::multicore(2, 1.0, 1.0)];
        let svc = Service::rigid(vec![0.1, 0.6], vec![0.1, 0.6]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        // Only one node can hold one 0.6 service; the second service fails.
        for alg in GreedyAlgorithm::all() {
            assert!(alg.solve(&inst).is_none(), "{} should fail", alg.name());
        }
        assert!(MetaGreedy.solve(&inst).is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> =
            GreedyAlgorithm::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 49);
    }
}
