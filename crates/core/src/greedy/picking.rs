//! Node picking strategies P1–P7 (§3.4).

use super::GreedyState;
use vmplace_model::ProblemInstance;

/// How a greedy pass selects the hosting node for the current service,
/// among the nodes that can still satisfy its rigid requirements.
///
/// "Load" is the sum of placed services' `rᵃ + nᵃ` (demand at yield 1);
/// "available capacity" is aggregate capacity minus that load (may be
/// negative on overcommitted nodes, which the comparisons handle fine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodePicker {
    /// P1: most available capacity in the dimension of the service's
    /// maximum need.
    MostAvailInMaxNeedDim,
    /// P2: minimum ratio of summed load (after placement) to summed
    /// capacity.
    MinLoadRatio,
    /// P3: least remaining capacity in the dimension of the service's
    /// largest requirement (best fit).
    BestFitMaxReqDim,
    /// P4: least total available capacity (best fit).
    BestFitTotal,
    /// P5: most remaining capacity in the dimension of the service's
    /// largest requirement (worst fit).
    WorstFitMaxReqDim,
    /// P6: most total available capacity (worst fit).
    WorstFitTotal,
    /// P7: first feasible node (first fit).
    FirstFit,
}

impl NodePicker {
    /// All seven strategies in paper order.
    pub const ALL: [NodePicker; 7] = [
        NodePicker::MostAvailInMaxNeedDim,
        NodePicker::MinLoadRatio,
        NodePicker::BestFitMaxReqDim,
        NodePicker::BestFitTotal,
        NodePicker::WorstFitMaxReqDim,
        NodePicker::WorstFitTotal,
        NodePicker::FirstFit,
    ];

    /// Paper label (P1–P7).
    pub fn label(&self) -> &'static str {
        match self {
            NodePicker::MostAvailInMaxNeedDim => "P1",
            NodePicker::MinLoadRatio => "P2",
            NodePicker::BestFitMaxReqDim => "P3",
            NodePicker::BestFitTotal => "P4",
            NodePicker::WorstFitMaxReqDim => "P5",
            NodePicker::WorstFitTotal => "P6",
            NodePicker::FirstFit => "P7",
        }
    }

    /// Chooses a node for service `j`, or `None` if it fits nowhere.
    /// Ties break toward the lower node index (determinism).
    pub(crate) fn pick(
        &self,
        instance: &ProblemInstance,
        state: &GreedyState,
        j: usize,
    ) -> Option<usize> {
        let dims = instance.dims();
        let s = &instance.services()[j];
        let max_need_dim = argmax(s.need_agg.as_slice());
        let max_req_dim = argmax(s.req_agg.as_slice());

        let mut best: Option<(usize, f64)> = None;
        for h in 0..instance.num_nodes() {
            if !state.fits(instance, j, h) {
                continue;
            }
            if *self == NodePicker::FirstFit {
                return Some(h);
            }
            let node = &instance.nodes()[h];
            // Higher score wins.
            let score = match self {
                NodePicker::MostAvailInMaxNeedDim => {
                    node.aggregate[max_need_dim] - state.load[h][max_need_dim]
                }
                NodePicker::MinLoadRatio => {
                    let mut load_after = 0.0;
                    let mut cap = 0.0;
                    for d in 0..dims {
                        load_after += state.load[h][d] + s.req_agg[d] + s.need_agg[d];
                        cap += node.aggregate[d];
                    }
                    if cap <= 0.0 {
                        f64::NEG_INFINITY
                    } else {
                        -(load_after / cap)
                    }
                }
                NodePicker::BestFitMaxReqDim => {
                    -(node.aggregate[max_req_dim] - state.load[h][max_req_dim])
                }
                NodePicker::BestFitTotal => {
                    let avail: f64 = (0..dims)
                        .map(|d| node.aggregate[d] - state.load[h][d])
                        .sum();
                    -avail
                }
                NodePicker::WorstFitMaxReqDim => {
                    node.aggregate[max_req_dim] - state.load[h][max_req_dim]
                }
                NodePicker::WorstFitTotal => (0..dims)
                    .map(|d| node.aggregate[d] - state.load[h][d])
                    .sum(),
                NodePicker::FirstFit => unreachable!(),
            };
            if best.map(|(_, b)| score > b).unwrap_or(true) {
                best = Some((h, score));
            }
        }
        best.map(|(h, _)| h)
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{GreedyAlgorithm, ServiceSort};
    use crate::Algorithm;
    use vmplace_model::{Node, Service};

    /// One big node and one small node; a single CPU-needy service.
    fn instance() -> ProblemInstance {
        let nodes = vec![
            Node::multicore(4, 0.5, 1.0), // 2.0 CPU
            Node::multicore(2, 0.5, 1.0), // 1.0 CPU
        ];
        let services = vec![Service::new(
            vec![0.1, 0.2],
            vec![0.1, 0.2],
            vec![0.4, 0.0],
            vec![0.8, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn worst_fit_prefers_big_node_best_fit_small() {
        let inst = instance();
        let wf = GreedyAlgorithm {
            sort: ServiceSort::None,
            pick: NodePicker::WorstFitTotal,
        };
        let bf = GreedyAlgorithm {
            sort: ServiceSort::None,
            pick: NodePicker::BestFitTotal,
        };
        assert_eq!(wf.place(&inst).unwrap().node_of(0), Some(0));
        assert_eq!(bf.place(&inst).unwrap().node_of(0), Some(1));
    }

    #[test]
    fn first_fit_takes_first_feasible() {
        let inst = instance();
        let ff = GreedyAlgorithm {
            sort: ServiceSort::None,
            pick: NodePicker::FirstFit,
        };
        assert_eq!(ff.place(&inst).unwrap().node_of(0), Some(0));
    }

    #[test]
    fn p1_uses_dimension_of_max_need() {
        // Node 0 has more CPU available, node 1 more memory. Service needs
        // memory (need dim = memory) → P1 must pick node 1.
        let nodes = vec![Node::multicore(2, 1.0, 0.4), Node::multicore(1, 1.0, 1.0)];
        let services = vec![Service::new(
            vec![0.1, 0.1],
            vec![0.1, 0.1],
            vec![0.0, 0.3],
            vec![0.0, 0.3],
        )];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let g = GreedyAlgorithm {
            sort: ServiceSort::None,
            pick: NodePicker::MostAvailInMaxNeedDim,
        };
        assert_eq!(g.place(&inst).unwrap().node_of(0), Some(1));
    }

    #[test]
    fn load_accumulates_across_placements() {
        // Two rigid services that both fit node 0 initially but not together.
        let nodes = vec![Node::multicore(1, 1.0, 1.0), Node::multicore(1, 1.0, 1.0)];
        let svc = Service::rigid(vec![0.6, 0.1], vec![0.6, 0.1]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        let ff = GreedyAlgorithm {
            sort: ServiceSort::None,
            pick: NodePicker::FirstFit,
        };
        let p = ff.place(&inst).unwrap();
        assert_eq!(p.node_of(0), Some(0));
        assert_eq!(p.node_of(1), Some(1)); // CPU requirement forces spill
        let sol = ff.solve(&inst).unwrap();
        assert_eq!(sol.min_yield, 1.0); // rigid services run at yield 1
    }
}
