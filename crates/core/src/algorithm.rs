//! The common interface every placement algorithm implements.

use crate::portfolio::SolveCtx;
use vmplace_model::{ProblemInstance, Solution};

/// A complete resource-allocation algorithm: takes an instance, returns a
/// full placement with achieved yields, or `None` on failure (some rigid
/// requirement cannot be satisfied by the algorithm).
///
/// Failure is a first-class outcome — the paper's `S_{A,B}` metric compares
/// success rates across algorithms.
///
/// The portfolio engine drives algorithms through
/// [`solve_with`](Algorithm::solve_with), which threads a [`SolveCtx`]
/// carrying the thread count, incumbent-pruning switch, wall-clock budget
/// and (afterwards) per-member telemetry. [`solve`](Algorithm::solve) is a
/// thin default over a fresh context.
pub trait Algorithm: Send + Sync {
    /// Human-readable identifier used in experiment reports
    /// (e.g. `"METAHVP"`, `"GREEDY_S3_P2"`). Borrowed — implementations
    /// cache their labels instead of allocating per call.
    fn name(&self) -> &str;

    /// Attempts to solve the instance under the given context.
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution>;

    /// Attempts to solve the instance with default settings.
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        self.solve_with(instance, &mut SolveCtx::new())
    }
}

impl<T: Algorithm + ?Sized> Algorithm for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        (**self).solve_with(instance, ctx)
    }
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        (**self).solve(instance)
    }
}

impl<T: Algorithm + ?Sized> Algorithm for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn solve_with(&self, instance: &ProblemInstance, ctx: &mut SolveCtx) -> Option<Solution> {
        (**self).solve_with(instance, ctx)
    }
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        (**self).solve(instance)
    }
}
