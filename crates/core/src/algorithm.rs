//! The common interface every placement algorithm implements.

use vmplace_model::{ProblemInstance, Solution};

/// A complete resource-allocation algorithm: takes an instance, returns a
/// full placement with achieved yields, or `None` on failure (some rigid
/// requirement cannot be satisfied by the algorithm).
///
/// Failure is a first-class outcome — the paper's `S_{A,B}` metric compares
/// success rates across algorithms.
pub trait Algorithm {
    /// Human-readable identifier used in experiment reports
    /// (e.g. `"METAHVP"`, `"GREEDY_S3_P2"`).
    fn name(&self) -> String;

    /// Attempts to solve the instance.
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution>;
}

impl<T: Algorithm + ?Sized> Algorithm for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        (**self).solve(instance)
    }
}

impl<T: Algorithm + ?Sized> Algorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn solve(&self, instance: &ProblemInstance) -> Option<Solution> {
        (**self).solve(instance)
    }
}
