//! `vmplace` — command-line solver.
//!
//! ```text
//! vmplace solve <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]
//! vmplace gen   [--hosts 64] [--services 100] [--cov 0.5] [--slack 0.5] [--seed 0]
//! vmplace example
//! ```
//!
//! `solve` reads an instance in the text format of `vmplace_model::io`,
//! maximises the minimum yield and prints per-service allocations.
//! `gen` prints a generated §4-style instance (pipe it to a file, edit it,
//! solve it). `example` prints the paper's Figure 1 instance.

use vmplace::prelude::*;
use vmplace_model::io::{read_instance, write_instance};

fn usage() -> ! {
    eprintln!(
        "usage:\n  vmplace solve <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]\n  \
         vmplace gen [--hosts N] [--services J] [--cov C] [--slack S] [--seed K]\n  \
         vmplace example"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args),
        Some("gen") => cmd_gen(&args),
        Some("example") => {
            let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
            let services = vec![Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            )];
            let inst = ProblemInstance::new(nodes, services).unwrap();
            print!("{}", write_instance(&inst));
        }
        _ => usage(),
    }
}

fn cmd_solve(args: &[String]) {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let instance = match read_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let algo = flag_value(args, "--algo").unwrap_or_else(|| "light".to_string());
    let solution = match algo.as_str() {
        "light" => MetaVp::metahvp_light().solve(&instance),
        "hvp" => MetaVp::metahvp().solve(&instance),
        "vp" => MetaVp::metavp().solve(&instance),
        "greedy" => MetaGreedy.solve(&instance),
        "rrnz" => RandomizedRounding::rrnz(0).solve(&instance),
        "milp" => ExactMilp::default().solve(&instance),
        other => {
            eprintln!("error: unknown algorithm `{other}`");
            std::process::exit(2);
        }
    };

    match solution {
        None => {
            eprintln!("INFEASIBLE: some rigid requirement cannot be satisfied");
            std::process::exit(3);
        }
        Some(sol) => {
            println!(
                "# {} nodes, {} services — algorithm {}",
                instance.num_nodes(),
                instance.num_services(),
                algo
            );
            println!("minimum yield {:.4}", sol.min_yield);
            println!("mean yield    {:.4}", sol.mean_yield());
            for (j, &y) in sol.yields.iter().enumerate() {
                let h = sol.placement.node_of(j).unwrap();
                print!("service {j} -> node {h}  yield {y:.4}");
                if args.iter().any(|a| a == "--plan") {
                    let s = &instance.services()[j];
                    let alloc = s.demand_agg(y);
                    print!("  alloc [");
                    for d in 0..instance.dims() {
                        if d > 0 {
                            print!(", ");
                        }
                        print!("{:.4}", alloc[d]);
                    }
                    print!("]");
                }
                println!();
            }
        }
    }
}

fn cmd_gen(args: &[String]) {
    let get = |key: &str, default: f64| -> f64 {
        flag_value(args, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let scenario = Scenario::new(ScenarioConfig {
        hosts: get("--hosts", 64.0) as usize,
        services: get("--services", 100.0) as usize,
        cov: get("--cov", 0.5),
        memory_slack: get("--slack", 0.5),
        ..ScenarioConfig::default()
    });
    let instance = scenario.instance(get("--seed", 0.0) as u64);
    print!("{}", write_instance(&instance));
}
