//! `vmplace` — command-line solver.
//!
//! ```text
//! vmplace solve <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]
//!               [--threads N] [--budget-ms MS] [--report]
//! vmplace gen   [--hosts 64] [--services 100] [--cov 0.5] [--slack 0.5] [--seed 0]
//! vmplace example
//! ```
//!
//! `solve` reads an instance in the text format of `vmplace_model::io`,
//! maximises the minimum yield and prints per-service allocations.
//! `--threads` sets the portfolio engine's worker count (default: all
//! cores / `VMPLACE_THREADS`), `--budget-ms` bounds the wall-clock spent
//! (best result found in time wins), and `--report` prints per-member
//! engine telemetry. `gen` prints a generated §4-style instance (pipe it
//! to a file, edit it, solve it). `example` prints the paper's Figure 1
//! instance.

use vmplace::prelude::*;
use vmplace_model::io::{read_instance, write_instance};

fn usage() -> ! {
    eprintln!(
        "usage:\n  vmplace solve <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]\n  \
         \x20              [--threads N] [--budget-ms MS] [--report]\n  \
         vmplace gen [--hosts N] [--services J] [--cov C] [--slack S] [--seed K]\n  \
         vmplace example"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args),
        Some("gen") => cmd_gen(&args),
        Some("example") => {
            let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
            let services = vec![Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            )];
            let inst = ProblemInstance::new(nodes, services).unwrap();
            print!("{}", write_instance(&inst));
        }
        _ => usage(),
    }
}

fn cmd_solve(args: &[String]) {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let instance = match read_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if let Some(n) = flag_value(args, "--threads").and_then(|v| v.parse().ok()) {
        vmplace::par::set_threads_override(n);
    }
    let algo = flag_value(args, "--algo").unwrap_or_else(|| "light".to_string());
    let mut ctx = SolveCtx::new();
    if let Some(ms) = flag_value(args, "--budget-ms").and_then(|v| v.parse::<u64>().ok()) {
        if algo == "milp" {
            // Branch & bound has no wall-clock cutoff yet (ROADMAP item);
            // do not silently pretend the budget applies.
            eprintln!("warning: --budget-ms is ignored by --algo milp (no wall-clock cutoff)");
        } else {
            ctx = ctx.with_budget(std::time::Duration::from_millis(ms));
        }
    }
    let solution = match algo.as_str() {
        "light" => MetaVp::metahvp_light().solve_with(&instance, &mut ctx),
        "hvp" => MetaVp::metahvp().solve_with(&instance, &mut ctx),
        "vp" => MetaVp::metavp().solve_with(&instance, &mut ctx),
        "greedy" => MetaGreedy.solve_with(&instance, &mut ctx),
        "rrnz" => RandomizedRounding::rrnz(0).solve_with(&instance, &mut ctx),
        "milp" => ExactMilp::default().solve_with(&instance, &mut ctx),
        other => {
            eprintln!("error: unknown algorithm `{other}`");
            std::process::exit(2);
        }
    };

    let report = ctx.take_report();
    if args.iter().any(|a| a == "--report") {
        if let Some(report) = &report {
            print_report(report);
        }
    }

    match solution {
        None => {
            let timed_out = report
                .as_ref()
                .is_some_and(|r| r.count(vmplace::core::MemberOutcome::TimedOut) > 0);
            if timed_out {
                eprintln!("TIMED OUT: the wall-clock budget expired before any member finished");
                std::process::exit(4);
            }
            eprintln!("INFEASIBLE: some rigid requirement cannot be satisfied");
            std::process::exit(3);
        }
        Some(sol) => {
            println!(
                "# {} nodes, {} services — algorithm {}",
                instance.num_nodes(),
                instance.num_services(),
                algo
            );
            println!("minimum yield {:.4}", sol.min_yield);
            println!("mean yield    {:.4}", sol.mean_yield());
            for (j, &y) in sol.yields.iter().enumerate() {
                let h = sol.placement.node_of(j).unwrap();
                print!("service {j} -> node {h}  yield {y:.4}");
                if args.iter().any(|a| a == "--plan") {
                    let s = &instance.services()[j];
                    let alloc = s.demand_agg(y);
                    print!("  alloc [");
                    for d in 0..instance.dims() {
                        if d > 0 {
                            print!(", ");
                        }
                        print!("{:.4}", alloc[d]);
                    }
                    print!("]");
                }
                println!();
            }
        }
    }
}

/// Prints the engine's per-member telemetry: summary counts plus the
/// completed members ranked by searched yield.
fn print_report(report: &vmplace::core::PortfolioReport) {
    use vmplace::core::MemberOutcome;
    eprintln!(
        "# engine {}: {} members on {} threads in {:.1} ms — {} solved, {} pruned, {} failed, {} timed out, {} probes",
        report.algorithm,
        report.members.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.count(MemberOutcome::Solved),
        report.count(MemberOutcome::Pruned),
        report.count(MemberOutcome::Failed),
        report.count(MemberOutcome::TimedOut) + report.count(MemberOutcome::Skipped),
        report.total_probes(),
    );
    let mut solved: Vec<_> = report
        .members
        .iter()
        .filter(|m| m.outcome == MemberOutcome::Solved && m.searched_yield.is_some())
        .collect();
    solved.sort_by(|a, b| {
        b.searched_yield
            .partial_cmp(&a.searched_yield)
            .unwrap()
            .then(a.member.cmp(&b.member))
    });
    for m in solved.iter().take(10) {
        let marker = if Some(m.member) == report.winner {
            " <- winner"
        } else {
            ""
        };
        eprintln!(
            "#   {:<28} searched {:.4}  {} probes  {:.2} ms{}",
            report.label_of(m.member),
            m.searched_yield.unwrap(),
            m.probes,
            m.wall.as_secs_f64() * 1e3,
            marker
        );
    }
}

fn cmd_gen(args: &[String]) {
    let get = |key: &str, default: f64| -> f64 {
        flag_value(args, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let scenario = Scenario::new(ScenarioConfig {
        hosts: get("--hosts", 64.0) as usize,
        services: get("--services", 100.0) as usize,
        cov: get("--cov", 0.5),
        memory_slack: get("--slack", 0.5),
        ..ScenarioConfig::default()
    });
    let instance = scenario.instance(get("--seed", 0.0) as u64);
    print!("{}", write_instance(&instance));
}
