//! `vmplace` — command-line solver.
//!
//! ```text
//! vmplace solve  <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]
//!                [--threads N] [--budget-ms MS] [--report]
//! vmplace replay <trace.txt> [--algo …] [--workers N] [--no-warm] [--no-order]
//!                [--no-cache] [--oneshot] [--budget-ms MS] [--policy P] [--quiet]
//! vmplace replay --gen [--streams S] [--requests R] [--seed K] [--hosts N]
//!                [--services J] [--cov C] [--slack S] [--burst B] [--emit]
//!                [--shape spike|flash|churn] [--workers N] …
//! vmplace serve  [--port P | --addr A] [--algo …] [--workers N] [--no-warm]
//!                [--no-order] [--no-cache] [--budget-ms MS]
//!                [--queue-depth N] [--faults SPEC] [--wire v1|v2]
//!                [--io threads|events] [--event-threads N]
//!                [--metrics-interval SECS]
//! vmplace client <addr> [<trace.txt>|--gen] [--quiet] [--shutdown] [--ping]
//!                [--stats] [--retries N] [--wire v1|v2] […--gen opts]
//! vmplace top    <addr> [--wire v1|v2]
//! vmplace gen    [--hosts 64] [--services 100] [--cov 0.5] [--slack 0.5] [--seed 0]
//! vmplace example
//! ```
//!
//! `solve` reads an instance in the text format of `vmplace_model::io`,
//! maximises the minimum yield and prints per-service allocations.
//! `--threads` sets the portfolio engine's worker count (default: all
//! cores / `VMPLACE_THREADS`), `--budget-ms` bounds the wall-clock spent
//! — including the `--algo milp` branch & bound, which returns its best
//! incumbent in time — and `--report` prints per-member engine telemetry.
//!
//! `replay` drives a request trace (`vmplace_service::trace_io` format,
//! or `--gen` for a generated one; add `--emit` to print it instead of
//! running) through the resident solver pool and reports per-request and
//! amortised latency; `--oneshot` uses the independent one-shot reference
//! path instead, `--no-warm` disables warm-start seeding and `--no-order`
//! the telemetry roster ordering. `--policy` stamps a response policy
//! (`exact`, `repaired`, or `repaired:<tol>:<maxmig>`) onto every
//! follow-up request of the trace — `repaired` lets the service patch the
//! previous placement instead of re-solving when it can prove the yield
//! stays within the tolerance (see `vmplace_service::repair`).
//!
//! `serve` binds the allocation service's TCP front-end (`--port 0`
//! picks an ephemeral port and reports it) and runs until a client sends
//! the `shutdown` frame; `--queue-depth` bounds each worker's queue
//! (overload answers `overloaded` with a `retry-after-ms` hint instead
//! of queueing forever) and `--faults` injects a deterministic
//! `FaultPlan` (e.g. `panic=5,drop=20,seed=7`) for chaos testing.
//! `client` connects to a running server and drives a trace through
//! it — the network twin of `replay`, with `--shutdown` to stop the
//! server afterwards, `--ping` for a liveness round-trip, `--stats` to
//! print the server's live metrics snapshot as one line of JSON, and
//! `--retries N` for the resilient replay (reconnect with backoff,
//! resubmit unanswered streams, honor retry hints; the up-front
//! `--ping`/`--shutdown` connection retries refusals too).
//!
//! `serve --metrics-interval SECS` prints the same JSON snapshot to
//! stderr every `SECS` seconds while the server runs, and `top <addr>`
//! asks a running server for one snapshot over the wire and renders a
//! human summary (request/connection counters, queue depth, shed and
//! panic counts, cache hit ratio, latency quantiles).
//!
//! `gen` prints a generated §4-style instance (pipe it to a file, edit
//! it, solve it). `example` prints the paper's Figure 1 instance.

use vmplace::prelude::*;
use vmplace::service::trace_io;
use vmplace_model::io::{read_instance, write_instance};

fn usage() -> ! {
    eprintln!(
        "usage:\n  vmplace solve <instance.txt> [--algo light|hvp|vp|greedy|rrnz|milp] [--plan]\n  \
         \x20              [--threads N] [--budget-ms MS] [--report]\n  \
         vmplace replay <trace.txt>|--gen [--algo A] [--workers N] [--no-warm] [--no-order]\n  \
         \x20              [--no-cache] [--oneshot] [--budget-ms MS] [--quiet]\n  \
         \x20              [--policy exact|repaired|repaired:<tol>:<maxmig>]\n  \
         \x20              (--gen also: [--streams S] [--requests R] [--seed K] [--hosts N]\n  \
         \x20               [--services J] [--cov C] [--slack S] [--burst B]\n  \
         \x20               [--shape spike|flash|churn] [--emit])\n  \
         vmplace serve [--port P | --addr A] [--algo A] [--workers N] [--no-warm]\n  \
         \x20              [--no-order] [--no-cache] [--budget-ms MS]\n  \
         \x20              [--queue-depth N] [--faults SPEC] [--wire v1|v2]\n  \
         \x20              [--io threads|events] [--event-threads N] [--metrics-interval SECS]\n  \
         vmplace client <addr> [<trace.txt>|--gen] [--quiet] [--shutdown] [--ping] [--stats]\n  \
         \x20              [--retries N] [--wire v1|v2] (--gen and --policy opts as for replay)\n  \
         vmplace top <addr> [--wire v1|v2]\n  \
         vmplace gen [--hosts N] [--services J] [--cov C] [--slack S] [--seed K]\n  \
         vmplace example"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args),
        Some("replay") => cmd_replay(&args),
        Some("serve") => cmd_serve(&args),
        Some("client") => cmd_client(&args),
        Some("top") => cmd_top(&args),
        Some("gen") => cmd_gen(&args),
        Some("example") => {
            let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
            let services = vec![Service::new(
                vec![0.5, 0.5],
                vec![1.0, 0.5],
                vec![0.5, 0.0],
                vec![1.0, 0.0],
            )];
            let inst = ProblemInstance::new(nodes, services).unwrap();
            print!("{}", write_instance(&inst));
        }
        _ => usage(),
    }
}

fn cmd_solve(args: &[String]) {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let instance = match read_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if let Some(n) = flag_value(args, "--threads").and_then(|v| v.parse().ok()) {
        vmplace::par::set_threads_override(n);
    }
    let algo = flag_value(args, "--algo").unwrap_or_else(|| "light".to_string());
    let mut ctx = SolveCtx::new();
    if let Some(ms) = flag_value(args, "--budget-ms").and_then(|v| v.parse::<u64>().ok()) {
        // Every path honours the budget — the MILP plumbs it into its
        // node loop and per-node simplex iterations and returns its best
        // incumbent found in time.
        ctx = ctx.with_budget(std::time::Duration::from_millis(ms));
    }
    let solution = match algo.as_str() {
        "light" => MetaVp::metahvp_light().solve_with(&instance, &mut ctx),
        "hvp" => MetaVp::metahvp().solve_with(&instance, &mut ctx),
        "vp" => MetaVp::metavp().solve_with(&instance, &mut ctx),
        "greedy" => MetaGreedy.solve_with(&instance, &mut ctx),
        "rrnz" => RandomizedRounding::rrnz(0).solve_with(&instance, &mut ctx),
        "milp" => ExactMilp::default().solve_with(&instance, &mut ctx),
        other => {
            eprintln!("error: unknown algorithm `{other}`");
            std::process::exit(2);
        }
    };

    let report = ctx.take_report();
    if args.iter().any(|a| a == "--report") {
        if let Some(report) = &report {
            print_report(report);
        }
    }

    match solution {
        None => {
            let timed_out = report
                .as_ref()
                .is_some_and(|r| r.count(vmplace::core::MemberOutcome::TimedOut) > 0);
            if timed_out {
                eprintln!("TIMED OUT: the wall-clock budget expired before any member finished");
                std::process::exit(4);
            }
            eprintln!("INFEASIBLE: some rigid requirement cannot be satisfied");
            std::process::exit(3);
        }
        Some(sol) => {
            println!(
                "# {} nodes, {} services — algorithm {}",
                instance.num_nodes(),
                instance.num_services(),
                algo
            );
            println!("minimum yield {:.4}", sol.min_yield);
            println!("mean yield    {:.4}", sol.mean_yield());
            for (j, &y) in sol.yields.iter().enumerate() {
                let h = sol.placement.node_of(j).unwrap();
                print!("service {j} -> node {h}  yield {y:.4}");
                if args.iter().any(|a| a == "--plan") {
                    let s = &instance.services()[j];
                    let alloc = s.demand_agg(y);
                    print!("  alloc [");
                    for d in 0..instance.dims() {
                        if d > 0 {
                            print!(", ");
                        }
                        print!("{:.4}", alloc[d]);
                    }
                    print!("]");
                }
                println!();
            }
        }
    }
}

/// Prints the engine's per-member telemetry: summary counts plus the
/// completed members ranked by searched yield.
fn print_report(report: &vmplace::core::PortfolioReport) {
    use vmplace::core::MemberOutcome;
    eprintln!(
        "# engine {}: {} members on {} threads in {:.1} ms — {} solved, {} pruned, {} failed, {} timed out, {} probes",
        report.algorithm,
        report.members.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.count(MemberOutcome::Solved),
        report.count(MemberOutcome::Pruned),
        report.count(MemberOutcome::Failed),
        report.count(MemberOutcome::TimedOut) + report.count(MemberOutcome::Skipped),
        report.total_probes(),
    );
    let mut solved: Vec<_> = report
        .members
        .iter()
        .filter(|m| m.outcome == MemberOutcome::Solved && m.searched_yield.is_some())
        .collect();
    solved.sort_by(|a, b| {
        b.searched_yield
            .partial_cmp(&a.searched_yield)
            .unwrap()
            .then(a.member.cmp(&b.member))
    });
    for m in solved.iter().take(10) {
        let marker = if Some(m.member) == report.winner {
            " <- winner"
        } else {
            ""
        };
        eprintln!(
            "#   {:<28} searched {:.4}  {} probes  {:.2} ms{}",
            report.label_of(m.member),
            m.searched_yield.unwrap(),
            m.probes,
            m.wall.as_secs_f64() * 1e3,
            marker
        );
    }
}

/// Builds the trace a `replay`/`client` invocation asks for: generated
/// (`--gen`) or read from the file at `args[path_index]`. `--policy`
/// stamps the parsed policy onto every follow-up (`Delta`/`Resolve`)
/// request; opening `New` requests stay exact (nothing to repair yet).
fn trace_from_args(args: &[String], path_index: usize) -> Vec<AllocRequest> {
    let policy = flag_value(args, "--policy").map(|p| match ResponsePolicy::parse(&p) {
        Some(policy) => policy,
        None => {
            eprintln!("error: unknown policy `{p}` (try `exact`, `repaired`, or `repaired:<tolerance>:<max_migrations>`)");
            std::process::exit(2);
        }
    });
    let mut trace = if args.iter().any(|a| a == "--gen") {
        let get = |key: &str, default: f64| -> f64 {
            flag_value(args, key)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let cfg = TraceConfig {
            streams: get("--streams", 4.0) as usize,
            requests: get("--requests", 50.0) as usize,
            scenario: ScenarioConfig {
                hosts: get("--hosts", 16.0) as usize,
                services: get("--services", 40.0) as usize,
                cov: get("--cov", 0.5),
                memory_slack: get("--slack", 0.5),
                ..ScenarioConfig::default()
            },
            resolve_burst: get("--burst", 1.0).max(1.0) as usize,
            adversarial: match flag_value(args, "--shape").as_deref() {
                None | Some("plain") => Adversarial::None,
                Some("spike") => Adversarial::Spike,
                Some("flash") => Adversarial::FlashCrowd,
                Some("churn") => Adversarial::ChurnStorm,
                Some(other) => {
                    eprintln!("error: unknown --shape `{other}` (try spike, flash, churn)");
                    std::process::exit(2);
                }
            },
            ..TraceConfig::default()
        };
        cfg.generate(get("--seed", 0.0) as u64)
    } else {
        let Some(path) = args.get(path_index).filter(|a| !a.starts_with("--")) else {
            usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match trace_io::read_trace(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    if let Some(policy) = policy {
        for req in &mut trace {
            if !matches!(req.kind, RequestKind::New(_)) {
                req.policy = policy;
            }
        }
    }
    trace
}

/// Builds the service configuration shared by `replay`, `serve` (and the
/// defaults `client` reports).
fn service_config_from_args(args: &[String]) -> ServiceConfig {
    let mut config = ServiceConfig {
        warm_start: !args.iter().any(|a| a == "--no-warm"),
        ordered_roster: !args.iter().any(|a| a == "--no-order"),
        response_cache: !args.iter().any(|a| a == "--no-cache"),
        ..ServiceConfig::default()
    };
    if let Some(algo) = flag_value(args, "--algo") {
        match ServiceAlgo::parse(&algo) {
            Some(a) => config.algo = a,
            None => {
                eprintln!("error: unknown algorithm `{algo}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--workers").and_then(|v| v.parse().ok()) {
        config.workers = n;
    }
    if let Some(ms) = flag_value(args, "--budget-ms").and_then(|v| v.parse::<u64>().ok()) {
        config.default_budget = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(depth) = flag_value(args, "--queue-depth") {
        match depth.parse::<usize>().ok().filter(|d| *d > 0) {
            Some(queue_depth) => {
                config.overload = Some(OverloadControl {
                    queue_depth,
                    ..OverloadControl::default()
                })
            }
            None => {
                eprintln!("error: --queue-depth wants a positive integer, got `{depth}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(spec) = flag_value(args, "--faults") {
        match FaultPlan::parse(&spec) {
            Some(plan) => config.faults = Some(plan).filter(|p| !p.is_empty()),
            None => {
                eprintln!(
                    "error: bad --faults spec `{spec}` (items: panic=<idx>, drop=<frames>, \
                     midframe, shortwrite=<bytes>, delay-ms=<ms>, panic-accept=<conn>, seed=<u64>)"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// Prints per-request lines (unless quiet) and the summary; returns the
/// number of useful (solved or timed-out) responses.
fn report_responses(
    responses: &[AllocResponse],
    wall: std::time::Duration,
    label: &str,
    detail: &str,
    quiet: bool,
) -> usize {
    let mut solved = 0usize;
    let mut timed_out = 0usize;
    let mut rejected = 0usize;
    let mut infeasible = 0usize;
    let mut cached = 0usize;
    let mut shed = 0usize;
    for r in responses {
        match r.outcome {
            RequestOutcome::Solved => solved += 1,
            RequestOutcome::TimedOut => timed_out += 1,
            RequestOutcome::Infeasible => infeasible += 1,
            RequestOutcome::Rejected => rejected += 1,
            // Service-side failures: a supervised worker panic, a load
            // shed, or a request against a discarded stream. All are
            // retryable (`vmplace client --retries`).
            RequestOutcome::Failed | RequestOutcome::Overloaded | RequestOutcome::StaleStream => {
                shed += 1
            }
        }
        cached += r.cached as usize;
        if !quiet {
            print!(
                "request {:>4} stream {:>3} {:<10}",
                r.id,
                r.stream,
                format!("{:?}", r.outcome)
            );
            match (&r.solution, &r.error) {
                (Some(sol), _) => print!(
                    "  yield {:.4}  {:>6} probes  {:>8.2} ms",
                    sol.min_yield,
                    r.probes,
                    r.wall.as_secs_f64() * 1e3
                ),
                (None, Some(err)) => print!("  {err}"),
                _ => {}
            }
            if r.cached {
                print!("  cached");
            }
            if let Some(after) = r.retry_after {
                print!("  retry-after {} ms", after.as_millis().max(1));
            }
            if let Some(m) = r.migrations {
                print!("  repaired ({m} moved)");
            }
            if let Some(w) = &r.winner {
                print!("  winner {w}");
            }
            println!();
        }
    }
    let requests = responses.len();
    eprintln!(
        "# {} {} requests in {:.1} ms — {:.3} ms/request amortised ({detail}) — {} solved, {} infeasible, {} timed out, {} rejected, {} failed/shed, {} cached",
        requests,
        label,
        wall.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e3 / requests.max(1) as f64,
        solved,
        infeasible,
        timed_out,
        rejected,
        shed,
        cached,
    );
    solved + timed_out
}

/// `vmplace replay`: drive a request trace through the allocation service.
fn cmd_replay(args: &[String]) {
    let trace = trace_from_args(args, 1);
    if args.iter().any(|a| a == "--emit") {
        print!("{}", trace_io::write_trace(&trace));
        return;
    }
    let config = service_config_from_args(args);

    let requests = trace.len();
    let oneshot = args.iter().any(|a| a == "--oneshot");
    let t0 = std::time::Instant::now();
    let responses = if oneshot {
        replay_oneshot(trace, &config)
    } else {
        let mut pool = SolverPool::new(&config);
        let responses = pool.replay(trace);
        pool.shutdown();
        responses
    };
    let wall = t0.elapsed();

    let useful = report_responses(
        &responses,
        wall,
        if oneshot { "one-shot" } else { "pooled" },
        &format!(
            "{} workers, algo {}, warm {}, cache {}",
            config.workers,
            config.algo.label(),
            config.warm_start,
            config.response_cache,
        ),
        args.iter().any(|a| a == "--quiet"),
    );
    if useful == 0 && requests > 0 {
        std::process::exit(3);
    }
}

/// `vmplace serve`: bind the TCP front-end and run until a client sends
/// the `shutdown` frame.
fn cmd_serve(args: &[String]) {
    let service = service_config_from_args(args);
    let addr = match (flag_value(args, "--addr"), flag_value(args, "--port")) {
        (Some(addr), _) => addr,
        (None, Some(port)) => format!("127.0.0.1:{port}"),
        (None, None) => "127.0.0.1:0".to_string(),
    };
    let io = match flag_value(args, "--io") {
        None => vmplace::net::IoBackend::default(),
        Some(spec) => match vmplace::net::IoBackend::parse(&spec) {
            Some(io) => io,
            None => {
                eprintln!("error: bad --io `{spec}` (use threads|events)");
                std::process::exit(2);
            }
        },
    };
    let max_wire = match flag_value(args, "--wire").as_deref() {
        None | Some("v2") => vmplace::net::wire::MAX_PROTOCOL_VERSION,
        Some("v1") => 1,
        Some(spec) => {
            eprintln!("error: bad --wire `{spec}` (use v1|v2)");
            std::process::exit(2);
        }
    };
    let config = vmplace::net::ServerConfig {
        service,
        io,
        event_threads: flag_value(args, "--event-threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        max_wire,
    };
    let server = match vmplace::net::Server::bind(addr.as_str(), &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The parseable line scripts and tests key on; stdout and flushed so
    // `vmplace serve --port 0 > addr.txt &` works.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serving algo {} on {} workers (warm {}, cache {}, io {:?}, wire ≤ v{}) — stop with `vmplace client <addr> --shutdown`",
        config.service.algo.label(),
        config.service.workers.max(1),
        config.service.warm_start,
        config.service.response_cache,
        config.io,
        config.max_wire,
    );
    if let Some(spec) = flag_value(args, "--metrics-interval") {
        let Some(interval) = spec
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0 && s.is_finite())
        else {
            eprintln!("error: --metrics-interval wants a positive number of seconds, got `{spec}`");
            std::process::exit(2);
        };
        // The printer owns only the registry handle, so the server can be
        // consumed by `wait()`; the thread dies with the process.
        let registry = server.metrics();
        let interval = std::time::Duration::from_secs_f64(interval);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            eprintln!("# stats {}", vmplace::net::render_stats(&registry));
        });
    }
    server.wait();
    eprintln!("# drained and shut down");
}

/// `vmplace top`: one `stats` round-trip against a running server,
/// rendered as a human summary.
fn cmd_top(args: &[String]) {
    let Some(addr) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let wire = match flag_value(args, "--wire").as_deref() {
        // Ask for the newest framing; the handshake negotiates down
        // against a v1-only server transparently.
        None | Some("v2") => vmplace::net::wire::PROTOCOL_V2,
        Some("v1") => 1,
        Some(spec) => {
            eprintln!("error: bad --wire `{spec}` (use v1|v2)");
            std::process::exit(2);
        }
    };
    let mut client = connect_or_exit_retrying(addr, wire, 1);
    let json = match client.stats() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: stats failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = match vmplace::obs::json::Json::parse(&json) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("error: unparseable stats snapshot ({e}): {json}");
            std::process::exit(1);
        }
    };
    print_top(addr, &stats);
}

/// Renders the parsed snapshot: the counters the issue tracker watches
/// first (queue depth, shed/panic counts, cache hit ratio, latency
/// quantiles), then whatever else the registry carries.
fn print_top(addr: &str, stats: &vmplace::obs::json::Json) {
    use vmplace::obs::json::Json;
    let counter = |name: &str| -> u64 {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let gauge = |name: &str| -> u64 {
        stats
            .get("gauges")
            .and_then(|g| g.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let quantiles = |name: &str| -> Option<(u64, f64, f64, f64)> {
        let h = stats.get("histograms")?.get(name)?;
        Some((
            h.get("count")?.as_u64()?,
            h.get("p50_us")?.as_f64()?,
            h.get("p99_us")?.as_f64()?,
            h.get("max_us")?.as_f64()?,
        ))
    };

    println!("# vmplace top — {addr}");
    println!(
        "requests     {} net / {} service — {} responses written, {} dropped, {} errors",
        counter("net.requests"),
        counter("service.requests"),
        counter("net.responses"),
        counter("net.responses_dropped"),
        counter("net.errors"),
    );
    println!(
        "connections  {} open ({} threads, {} events accepted; wire v1 {}, v2 {})",
        gauge("net.conns.open"),
        counter("net.conns.threads"),
        counter("net.conns.events"),
        counter("net.wire.v1"),
        counter("net.wire.v2"),
    );
    println!(
        "queue        depth {} across {} workers — shed {}, panics {}, stale streams {}",
        gauge("service.queue_depth"),
        gauge("service.workers"),
        counter("service.shed"),
        counter("service.worker_panics"),
        counter("service.stale_stream_responses"),
    );
    let hits = counter("service.cache.hits");
    let misses = counter("service.cache.misses");
    let ratio = stats
        .get("derived")
        .and_then(|d| d.get("service.cache.hit_ratio"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    println!(
        "cache        {hits} hits / {misses} misses (hit ratio {ratio:.3}) — repair accepted {}, fallback {}",
        counter("service.repair.accepted"),
        counter("service.repair.fallback"),
    );
    println!(
        "engine       {} probes, {} simplex iterations, {} refactorisations, {} io wake-ups",
        counter("service.engine.probes"),
        counter("service.lp.simplex_iterations"),
        counter("service.lp.refactorisations"),
        counter("net.io_wakeups"),
    );
    for (label, name) in [
        ("solve", "service.solve_us"),
        ("queue wait", "service.queue_wait_us"),
        ("request", "net.request_us"),
        ("encode", "net.encode_us"),
        ("ping", "net.ping_us"),
    ] {
        if let Some((count, p50, p99, max)) = quantiles(name) {
            if count > 0 {
                println!(
                    "latency      {label:<10} n {count:<6} p50 {p50:>9.1} µs  p99 {p99:>9.1} µs  max {max:>9.1} µs"
                );
            }
        }
    }
}

/// Connects or exits with a diagnostic; refused connections retry with
/// doubling backoff up to `attempts` — under `--retries N` the up-front
/// plain connection for `--ping`/`--shutdown` must survive the same
/// transient refusals (`overloaded` greetings from fd exhaustion,
/// accept-time drops) that the resilient replay reconnects through.
fn connect_or_exit_retrying(addr: &str, wire: u32, attempts: u32) -> vmplace::net::Client {
    let mut delay = std::time::Duration::from_millis(20);
    let mut round = 0u32;
    loop {
        match vmplace::net::Client::connect_with(addr, wire) {
            Ok(c) => return c,
            Err(_) if round + 1 < attempts.max(1) => {
                round += 1;
                std::thread::sleep(delay);
                delay = (delay * 2).min(std::time::Duration::from_secs(2));
            }
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `vmplace client`: drive a trace through a running server.
fn cmd_client(args: &[String]) {
    let Some(addr) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage();
    };
    // Defaults to v1 so existing scripts keep their byte-for-byte wire
    // traffic; `--wire v2` opts into the binary framing (negotiated down
    // transparently against a v1-only server).
    let wire = match flag_value(args, "--wire").as_deref() {
        None | Some("v1") => 1,
        Some("v2") => vmplace::net::wire::PROTOCOL_V2,
        Some(spec) => {
            eprintln!("error: bad --wire `{spec}` (use v1|v2)");
            std::process::exit(2);
        }
    };
    // A trace is optional: `client <addr> --ping` and `client <addr>
    // --shutdown` are complete invocations on their own.
    let has_trace =
        args.iter().any(|a| a == "--gen") || args.get(2).is_some_and(|a| !a.starts_with("--"));
    let retries = flag_value(args, "--retries").and_then(|v| v.parse::<u32>().ok());

    // The resilient replay opens its own connections, so only the plain
    // paths connect up front (a faulty server may kill early connection
    // attempts — `--retries` must survive that).
    let want_plain = args
        .iter()
        .any(|a| a == "--ping" || a == "--shutdown" || a == "--stats")
        || (has_trace && retries.is_none());
    let mut client = want_plain.then(|| connect_or_exit_retrying(addr, wire, retries.unwrap_or(1)));

    if args.iter().any(|a| a == "--ping") {
        let t0 = std::time::Instant::now();
        if let Err(e) = client.as_mut().expect("plain client").ping("vmplace") {
            eprintln!("error: ping failed: {e}");
            std::process::exit(1);
        }
        eprintln!("# pong in {:.2} ms", t0.elapsed().as_secs_f64() * 1e3);
    }

    if args.iter().any(|a| a == "--stats") {
        // Raw JSON on stdout: the line CI smokes and scripts scrape.
        match client.as_mut().expect("plain client").stats() {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: stats failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut useful = 1usize;
    let mut requests = 0usize;
    if has_trace {
        let trace = trace_from_args(args, 2);
        requests = trace.len();
        let t0 = std::time::Instant::now();
        let result = match retries {
            // Resilient replay: reconnect with backoff across
            // teardowns, resubmit unanswered streams, honor
            // `retry-after-ms` — capped at this many attempts.
            Some(attempts) => vmplace::net::replay_resilient_with(
                addr.as_str(),
                &trace,
                &vmplace::net::RetryPolicy {
                    max_attempts: attempts.max(1),
                    ..vmplace::net::RetryPolicy::default()
                },
                wire,
            ),
            None => client.as_mut().expect("plain client").replay(&trace),
        };
        let responses = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: replay failed: {e}");
                std::process::exit(1);
            }
        };
        let wall = t0.elapsed();
        useful = report_responses(
            &responses,
            wall,
            "remote",
            &format!("server {addr}"),
            args.iter().any(|a| a == "--quiet"),
        );
    } else if !args
        .iter()
        .any(|a| a == "--ping" || a == "--shutdown" || a == "--stats")
    {
        usage();
    }

    if args.iter().any(|a| a == "--shutdown") {
        match client.take().expect("plain client").shutdown_server() {
            Ok(_) => eprintln!("# server drained and shut down"),
            Err(e) => {
                eprintln!("error: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if useful == 0 && requests > 0 {
        std::process::exit(3);
    }
}

fn cmd_gen(args: &[String]) {
    let get = |key: &str, default: f64| -> f64 {
        flag_value(args, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let scenario = Scenario::new(ScenarioConfig {
        hosts: get("--hosts", 64.0) as usize,
        services: get("--services", 100.0) as usize,
        cov: get("--cov", 0.5),
        memory_slack: get("--slack", 0.5),
        ..ScenarioConfig::default()
    });
    let instance = scenario.instance(get("--seed", 0.0) as u64);
    print!("{}", write_instance(&instance));
}
