//! # vmplace
//!
//! A complete Rust implementation of
//! *Casanova, Stillwell, Vivien — "Virtual Machine Resource Allocation for
//! Service Hosting on Heterogeneous Distributed Platforms"* (IPDPS 2012,
//! INRIA RR-7772): max–min-yield placement and resource allocation of
//! services (VM instances) on heterogeneous platforms.
//!
//! ## Quickstart
//!
//! ```
//! use vmplace::prelude::*;
//!
//! // Figure 1 of the paper: two heterogeneous nodes, one service.
//! let nodes = vec![
//!     Node::multicore(4, 0.8, 1.0), // node A: 4 × 0.8 CPU, 1.0 memory
//!     Node::multicore(2, 1.0, 0.5), // node B: 2 × 1.0 CPU, 0.5 memory
//! ];
//! let service = Service::new(
//!     vec![0.5, 0.5], // elementary requirement (CPU, memory)
//!     vec![1.0, 0.5], // aggregate requirement
//!     vec![0.5, 0.0], // elementary need
//!     vec![1.0, 0.0], // aggregate need
//! );
//! let instance = ProblemInstance::new(nodes, vec![service]).unwrap();
//!
//! // The paper's best practical algorithm (§5.1).
//! let solution = MetaVp::metahvp_light().solve(&instance).expect("feasible");
//! assert_eq!(solution.placement.node_of(0), Some(1)); // node B wins
//! assert!((solution.min_yield - 1.0).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | Piece | Crate |
//! |-------|-------|
//! | problem model, yield semantics, request/response/delta types | [`vmplace_model`] |
//! | LP/MILP solver (simplex + B&B, persistent `MilpSolver`, deadlines) | [`vmplace_lp`] |
//! | placement algorithms (greedy, VP, META*, RRND/RRNZ), the portfolio engine (`SolveCtx`, incumbent pruning, telemetry) and the reusable `EngineHandle` | [`vmplace_core`] |
//! | generators, error model, runtime allocators, request traces | [`vmplace_sim`] |
//! | long-lived allocation service: solver pool, dispatcher, response cache, trace replay | [`vmplace_service`] |
//! | network front-end: TCP server, wire protocol, blocking client | [`vmplace_net`] |
//! | observability: metrics registry, trace spans, JSON snapshots | [`vmplace_obs`] |
//! | parallel executor: sweeps + portfolio primitive | [`vmplace_par`] |
//!
//! This facade re-exports the public API; the `vmplace-experiments` crate
//! hosts the binaries that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use vmplace_core as core;
pub use vmplace_lp as lp;
pub use vmplace_model as model;
pub use vmplace_net as net;
pub use vmplace_obs as obs;
pub use vmplace_par as par;
pub use vmplace_service as service;
pub use vmplace_sim as sim;

/// One-stop imports for typical use.
pub mod prelude {
    pub use vmplace_core::{
        binary_search_yield, Algorithm, EngineHandle, ExactMilp, GreedyAlgorithm, MetaGreedy,
        MetaVp, NodePicker, PortfolioReport, RandomizedRounding, ServiceSort, SolveCtx,
        VpAlgorithm,
    };
    pub use vmplace_model::{
        dims, evaluate_placement, AllocRequest, AllocResponse, Node, Placement, ProblemInstance,
        RequestKind, RequestOutcome, ResourceVector, ResponsePolicy, Service, Solution,
        WorkloadDelta,
    };
    pub use vmplace_service::{
        replay_oneshot, yield_upper_bound, FaultPlan, OverloadControl, ServiceAlgo, ServiceConfig,
        SolverPool, REPAIR_WINNER,
    };
    pub use vmplace_sim::{
        apply_min_threshold, perturb_cpu_needs, zero_knowledge_placement, Adversarial,
        AllocationPolicy, ErrorRun, HomogeneousDim, PlatformConfig, Scenario, ScenarioConfig,
        TraceConfig, WorkloadConfig,
    };
}
