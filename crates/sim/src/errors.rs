//! The §6.2 CPU-need estimation error model and the minimum-threshold
//! mitigation strategy.
//!
//! "We perturbed the CPU needs by selecting values between the negative and
//! positive maximum value from a uniform random distribution and adding
//! this error to the true total CPU needs (to a minimum of 0.001).
//! Elementary CPU needs were perturbed so as to maintain the same
//! proportion with the aggregate needs."
//!
//! Mitigation: "rounding up the estimate of each CPU need to a minimum
//! threshold value" holds CPU in reserve for the most vulnerable (small)
//! services; estimates above the threshold are untouched.

use rand::Rng;
use vmplace_model::{dims, Service};

/// Perturbs the aggregate CPU need of every service by an independent
/// uniform error in `[−max_error, +max_error]`, flooring at 0.001 and
/// scaling the elementary need to keep its proportion to the aggregate.
pub fn perturb_cpu_needs<R: Rng + ?Sized>(
    services: &[Service],
    max_error: f64,
    rng: &mut R,
) -> Vec<Service> {
    services
        .iter()
        .map(|s| {
            let truth = s.need_agg[dims::CPU];
            let err = if max_error > 0.0 {
                rng.gen_range(-max_error..=max_error)
            } else {
                0.0
            };
            let estimate = (truth + err).max(0.001);
            scale_cpu_need(s, estimate)
        })
        .collect()
}

/// Rounds every aggregate CPU-need estimate up to at least `threshold`
/// (elementary needs keep their proportion). `threshold = 0` is a no-op.
pub fn apply_min_threshold(estimates: &[Service], threshold: f64) -> Vec<Service> {
    estimates
        .iter()
        .map(|s| {
            let current = s.need_agg[dims::CPU];
            if current >= threshold {
                s.clone()
            } else {
                scale_cpu_need(s, threshold)
            }
        })
        .collect()
}

/// Returns a copy of `s` with its aggregate CPU need set to `new_agg` and
/// the elementary CPU need scaled proportionally.
fn scale_cpu_need(s: &Service, new_agg: f64) -> Service {
    let mut out = s.clone();
    let old_agg = s.need_agg[dims::CPU];
    out.need_agg[dims::CPU] = new_agg;
    if old_agg > 0.0 {
        out.need_elem[dims::CPU] = s.need_elem[dims::CPU] * (new_agg / old_agg);
    } else {
        // No prior proportion to maintain: treat as single-element need.
        out.need_elem[dims::CPU] = new_agg;
    }
    // Elementary may never exceed aggregate (validation invariant).
    if out.need_elem[dims::CPU] > out.need_agg[dims::CPU] {
        out.need_elem[dims::CPU] = out.need_agg[dims::CPU];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn svc(agg: f64, elem: f64) -> Service {
        Service::new(
            vec![0.01, 0.2],
            vec![0.02, 0.2],
            vec![elem, 0.0],
            vec![agg, 0.0],
        )
    }

    #[test]
    fn zero_error_is_identity() {
        let services = vec![svc(0.4, 0.1)];
        let mut rng = StdRng::seed_from_u64(1);
        let est = perturb_cpu_needs(&services, 0.0, &mut rng);
        assert_eq!(est[0].need_agg[dims::CPU], 0.4);
        assert_eq!(est[0].need_elem[dims::CPU], 0.1);
    }

    #[test]
    fn errors_are_bounded_and_floored() {
        let services = vec![svc(0.05, 0.05); 200];
        let mut rng = StdRng::seed_from_u64(2);
        let est = perturb_cpu_needs(&services, 0.3, &mut rng);
        for e in &est {
            let v = e.need_agg[dims::CPU];
            assert!(v >= 0.001, "floored at 0.001, got {v}");
            assert!(v <= 0.05 + 0.3 + 1e-12);
            e.validate("est").unwrap();
        }
        // The floor must actually engage for some draws (0.05 − 0.3 < 0).
        assert!(est.iter().any(|e| e.need_agg[dims::CPU] == 0.001));
    }

    #[test]
    fn elementary_proportion_is_maintained() {
        let services = vec![svc(0.8, 0.2)]; // ratio 1/4
        let mut rng = StdRng::seed_from_u64(3);
        let est = perturb_cpu_needs(&services, 0.2, &mut rng);
        let ratio = est[0].need_elem[dims::CPU] / est[0].need_agg[dims::CPU];
        assert!((ratio - 0.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn threshold_rounds_up_small_estimates_only() {
        let estimates = vec![svc(0.05, 0.05), svc(0.5, 0.125)];
        let out = apply_min_threshold(&estimates, 0.1);
        assert_eq!(out[0].need_agg[dims::CPU], 0.1);
        assert_eq!(out[0].need_elem[dims::CPU], 0.1); // proportion kept (1:1)
        assert_eq!(out[1].need_agg[dims::CPU], 0.5); // untouched
        assert_eq!(out[1].need_elem[dims::CPU], 0.125);
    }

    #[test]
    fn memory_is_never_perturbed() {
        let services = vec![svc(0.4, 0.1)];
        let mut rng = StdRng::seed_from_u64(4);
        let est = perturb_cpu_needs(&services, 0.4, &mut rng);
        assert_eq!(est[0].req_agg[dims::MEM], 0.2);
        assert_eq!(est[0].need_agg[dims::MEM], 0.0);
    }
}
