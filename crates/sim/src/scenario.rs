//! Complete experiment scenario generation (§4).
//!
//! A *scenario* is `(hosts, services, cov, memory slack, homogeneity
//! variant)`; each `(scenario, seed)` pair deterministically yields one
//! problem instance. The paper's grid is 64 hosts × {100, 250, 500}
//! services × cov ∈ {0, 0.025, …, 1} × slack ∈ {0.1, …, 0.9} × 100 seeds.

use crate::platform::{HomogeneousDim, PlatformConfig};
use crate::workload::WorkloadConfig;
use vmplace_model::ProblemInstance;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Number of nodes.
    pub hosts: usize,
    /// Number of services.
    pub services: usize,
    /// Platform coefficient of variation.
    pub cov: f64,
    /// Memory slack in `[0, 1)` — fraction of total memory left free when
    /// all requirements are met; lower is harder.
    pub memory_slack: f64,
    /// Optional homogeneity variant (Figures 3–4).
    pub homogeneous: Option<HomogeneousDim>,
    /// Workload shape knobs.
    pub workload: WorkloadConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            hosts: 64,
            services: 100,
            cov: 0.0,
            memory_slack: 0.5,
            homogeneous: None,
            workload: WorkloadConfig::default(),
        }
    }
}

/// A scenario bound to its identifying parameters, able to mint instances.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The configuration.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// Generates the `seed`-th instance of this scenario.
    pub fn instance(&self, seed: u64) -> ProblemInstance {
        let c = &self.config;
        let platform = PlatformConfig {
            nodes: c.hosts,
            cov: c.cov,
            median: 0.5,
            cores: 4,
            homogeneous: c.homogeneous,
        };
        // Distinct derived streams for platform and workload.
        let nodes = platform.generate(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mut workload = c.workload.clone();
        workload.services = c.services;
        let raw = workload.generate(seed.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(2));

        let total_cpu: f64 = nodes.iter().map(|n| n.aggregate[0]).sum();
        let total_mem: f64 = nodes.iter().map(|n| n.aggregate[1]).sum();
        let services = raw.into_services(total_cpu, total_mem, c.memory_slack);
        ProblemInstance::new(nodes, services).expect("generated instance must validate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::dims;

    #[test]
    fn instance_matches_scenario_shape() {
        let sc = Scenario::new(ScenarioConfig {
            hosts: 16,
            services: 40,
            cov: 0.5,
            memory_slack: 0.3,
            ..ScenarioConfig::default()
        });
        let inst = sc.instance(0);
        assert_eq!(inst.num_nodes(), 16);
        assert_eq!(inst.num_services(), 40);
        let stats = inst.stats();
        assert!((stats.slack(dims::MEM) - 0.3).abs() < 1e-9);
        // CPU needs normalised to total capacity.
        assert!((stats.total_need[dims::CPU] - stats.total_capacity[dims::CPU]).abs() < 1e-9);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let sc = Scenario::new(ScenarioConfig::default());
        let a = sc.instance(4);
        let b = sc.instance(4);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.services(), b.services());
        let c = sc.instance(5);
        assert_ne!(a.services(), c.services());
    }

    #[test]
    fn lower_slack_means_more_memory_demand() {
        let mk = |slack: f64| {
            Scenario::new(ScenarioConfig {
                memory_slack: slack,
                ..ScenarioConfig::default()
            })
            .instance(1)
            .stats()
            .total_requirement[dims::MEM]
        };
        assert!(mk(0.1) > mk(0.5));
        assert!(mk(0.5) > mk(0.9));
    }

    #[test]
    fn homogeneous_variants_propagate() {
        let sc = Scenario::new(ScenarioConfig {
            cov: 0.9,
            homogeneous: Some(HomogeneousDim::Cpu),
            ..ScenarioConfig::default()
        });
        let inst = sc.instance(2);
        assert!(inst.nodes().iter().all(|n| n.aggregate[dims::CPU] == 0.5));
    }
}
