//! Distribution helpers on top of `rand` (normal and lognormal deviates via
//! Box–Muller, avoiding an extra `rand_distr` dependency).

use rand::Rng;

/// A standard normal deviate (Box–Muller transform).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal deviate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// A lognormal deviate: `exp(N(mu, sigma))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples an index according to (unnormalised) weights.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 0.5, 0.2)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.2).abs() < 0.005, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_matches_mu() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| lognormal(&mut rng, (0.05f64).ln(), 1.0))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 0.05).abs() < 0.005, "median {median}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.55, 0.25, 0.15, 0.05];
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        for (c, w) in counts.iter().zip(weights) {
            let f = *c as f64 / 100_000.0;
            assert!((f - w).abs() < 0.01, "freq {f} vs weight {w}");
        }
    }
}
