//! Service workload generation — the Google-dataset stand-in.
//!
//! The paper instantiates service requirements and needs from a Google
//! production trace that exposes two marginals per task: the number of
//! requested cores and the fraction of system memory used. Both are then
//! renormalised (CPU needs to the platform's total capacity, memory to a
//! target slack), so only the distributions' *shapes* matter. This module
//! provides a synthetic model with matching structure:
//!
//! * requested cores `k_j` follow a discrete distribution concentrated on
//!   small core counts (defaults: 1, 2, 4, 8 w.p. 0.55/0.25/0.15/0.05);
//! * aggregate CPU need is proportional to `k_j` (as in §4), elementary CPU
//!   need is the per-core share `n_j / k_j`;
//! * the elementary CPU *requirement* is one reference value shared by all
//!   services (§4), with aggregate requirement `k_j × ref`;
//! * memory requirement fractions are lognormal (median 0.05, σ = 1),
//!   heavily right-skewed like the trace; memory has no fluid need (§4's
//!   experiments perturb CPU only, and Figure 1 shows memory as
//!   requirement-only).

use crate::rng::{lognormal, weighted_index};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmplace_model::Service;

/// Configuration of the workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of services `J`.
    pub services: usize,
    /// `(core count, probability)` table for requested cores.
    pub core_distribution: Vec<(usize, f64)>,
    /// Reference elementary CPU requirement shared by all services.
    pub cpu_reference_requirement: f64,
    /// Lognormal `μ` for raw memory fractions (`ln 0.05` by default).
    pub memory_mu: f64,
    /// Lognormal `σ` for raw memory fractions.
    pub memory_sigma: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            services: 100,
            core_distribution: vec![(1, 0.55), (2, 0.25), (4, 0.15), (8, 0.05)],
            cpu_reference_requirement: 0.01,
            memory_mu: (0.05f64).ln(),
            memory_sigma: 1.0,
        }
    }
}

/// Raw (pre-normalisation) workload: cores and memory fractions per service.
#[derive(Clone, Debug)]
pub struct RawWorkload {
    /// Requested cores per service.
    pub cores: Vec<usize>,
    /// Raw memory fractions per service (unnormalised).
    pub memory: Vec<f64>,
    /// The generating configuration.
    pub config: WorkloadConfig,
}

impl WorkloadConfig {
    /// Draws the raw workload deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> RawWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = self.core_distribution.iter().map(|&(_, p)| p).collect();
        let cores: Vec<usize> = (0..self.services)
            .map(|_| self.core_distribution[weighted_index(&mut rng, &weights)].0)
            .collect();
        let memory: Vec<f64> = (0..self.services)
            .map(|_| lognormal(&mut rng, self.memory_mu, self.memory_sigma).max(1e-4))
            .collect();
        RawWorkload {
            cores,
            memory,
            config: self.clone(),
        }
    }
}

impl RawWorkload {
    /// Materialises services after normalisation:
    ///
    /// * CPU needs scaled so `Σ_j nᵃ_j = total_cpu_capacity` (§4);
    /// * memory requirements scaled so
    ///   `Σ_j mem_j = (1 − slack) × total_memory_capacity` (§4's memory
    ///   slack families).
    pub fn into_services(
        &self,
        total_cpu_capacity: f64,
        total_memory_capacity: f64,
        memory_slack: f64,
    ) -> Vec<Service> {
        let total_cores: f64 = self.cores.iter().map(|&k| k as f64).sum();
        let cpu_scale = total_cpu_capacity / total_cores;
        let raw_mem: f64 = self.memory.iter().sum();
        let mem_target = (1.0 - memory_slack) * total_memory_capacity;
        let mem_scale = mem_target / raw_mem;
        let r = self.config.cpu_reference_requirement;

        self.cores
            .iter()
            .zip(&self.memory)
            .map(|(&k, &m_raw)| {
                let k_f = k as f64;
                let need_agg_cpu = cpu_scale * k_f;
                let need_elem_cpu = need_agg_cpu / k_f; // per-core share
                let mem = m_raw * mem_scale;
                Service::new(
                    vec![r, mem],
                    vec![r * k_f, mem],
                    vec![need_elem_cpu, 0.0],
                    vec![need_agg_cpu, 0.0],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_needs_sum_to_capacity() {
        let raw = WorkloadConfig {
            services: 250,
            ..WorkloadConfig::default()
        }
        .generate(3);
        let services = raw.into_services(32.0, 32.0, 0.4);
        let total: f64 = services.iter().map(|s| s.need_agg[0]).sum();
        assert!((total - 32.0).abs() < 1e-9, "total CPU need {total}");
    }

    #[test]
    fn memory_hits_slack_target() {
        let raw = WorkloadConfig::default().generate(5);
        let services = raw.into_services(32.0, 30.0, 0.7);
        let total: f64 = services.iter().map(|s| s.req_agg[1]).sum();
        assert!((total - 0.3 * 30.0).abs() < 1e-9, "total memory {total}");
    }

    #[test]
    fn per_service_mean_matches_paper_reported_values() {
        // §6.2: "Services in the 100-service case have a mean CPU need of
        // 0.317, 250 → 0.127, 500 → 0.063" on 64 × 0.5 platforms (Σ = 32).
        for (j, expected) in [(100, 0.32), (250, 0.128), (500, 0.064)] {
            let raw = WorkloadConfig {
                services: j,
                ..WorkloadConfig::default()
            }
            .generate(11);
            let services = raw.into_services(32.0, 32.0, 0.5);
            let mean: f64 = services.iter().map(|s| s.need_agg[0]).sum::<f64>() / j as f64;
            assert!(
                (mean - expected).abs() < 1e-9,
                "J={j}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn elementary_need_is_per_core_share() {
        let raw = WorkloadConfig::default().generate(9);
        let services = raw.into_services(32.0, 32.0, 0.5);
        for (s, &k) in services.iter().zip(&raw.cores) {
            assert!((s.need_elem[0] * k as f64 - s.need_agg[0]).abs() < 1e-9);
            // all per-core shares equal the global scale factor
        }
        // aggregate requirement = k × elementary reference
        for (s, &k) in services.iter().zip(&raw.cores) {
            assert!((s.req_agg[0] - 0.01 * k as f64).abs() < 1e-12);
            assert!((s.req_elem[0] - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn services_validate() {
        let raw = WorkloadConfig::default().generate(1);
        for (i, s) in raw.into_services(32.0, 32.0, 0.1).iter().enumerate() {
            s.validate(&i.to_string()).unwrap();
        }
    }

    #[test]
    fn core_distribution_shape() {
        let raw = WorkloadConfig {
            services: 100_000,
            ..WorkloadConfig::default()
        }
        .generate(17);
        let ones = raw.cores.iter().filter(|&&k| k == 1).count() as f64 / 100_000.0;
        assert!((ones - 0.55).abs() < 0.01, "P(1 core) = {ones}");
    }
}
