//! The end-to-end error-experiment pipeline (§6.2).
//!
//! Placement decisions and planned allocations are computed from *estimated*
//! CPU needs; actual performance is then simulated against the *true* needs
//! under one of three per-node CPU allocation policies:
//!
//! * **ALLOCCAPS** — hard caps at the planned allocations (non-work-
//!   conserving): a service that under-estimated starves, over-estimates
//!   waste capacity;
//! * **ALLOCWEIGHTS** — the planned allocations become weights of the §6
//!   work-conserving scheduler;
//! * **EQUALWEIGHTS** — the work-conserving scheduler with equal weights
//!   (the Theorem 1 policy, which ignores the plan entirely).
//!
//! The *zero-knowledge* baseline spreads services evenly across nodes
//! (most-free-memory first fit) and shares CPU with EQUALWEIGHTS.
//! "Ideal" is the planner run with perfect estimates.

use crate::waterfill::weighted_water_fill;
use vmplace_model::{dims, evaluate_placement, Placement, ProblemInstance, Service, EPSILON};

/// Per-node CPU allocation policy for the error experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Hard caps at the planned allocations.
    AllocCaps,
    /// Work-conserving scheduler weighted by the planned allocations.
    AllocWeights,
    /// Work-conserving scheduler with equal weights.
    EqualWeights,
}

impl AllocationPolicy {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            AllocationPolicy::AllocCaps => "ALLOCCAPS",
            AllocationPolicy::AllocWeights => "ALLOCWEIGHTS",
            AllocationPolicy::EqualWeights => "EQUALWEIGHTS",
        }
    }
}

/// An error-experiment evaluation bound to the ground-truth instance.
pub struct ErrorRun<'a> {
    /// The instance with the *true* needs.
    pub true_instance: &'a ProblemInstance,
}

impl<'a> ErrorRun<'a> {
    /// Creates an evaluation context.
    pub fn new(true_instance: &'a ProblemInstance) -> Self {
        ErrorRun { true_instance }
    }

    /// Planned per-service *extra* CPU allocations from the estimated
    /// instance: `ŷ_j · n̂_j`, where `ŷ` maximises the minimum yield on each
    /// node given the estimates (the paper's ALLOCCAPS/ALLOCWEIGHTS input).
    pub fn planned_extras(&self, estimated: &[Service], placement: &Placement) -> Option<Vec<f64>> {
        let est_instance = self.true_instance.with_services(estimated.to_vec()).ok()?;
        let sol = evaluate_placement(&est_instance, placement)?;
        Some(
            sol.yields
                .iter()
                .zip(estimated)
                .map(|(&y, s)| y * s.need_agg[dims::CPU])
                .collect(),
        )
    }

    /// Simulates execution under `policy` and returns the minimum *actual*
    /// yield across all services (`None` if the placement violates a rigid
    /// requirement of the true instance — cannot happen when requirements
    /// are unperturbed).
    pub fn actual_min_yield(
        &self,
        placement: &Placement,
        planned_extra: &[f64],
        policy: AllocationPolicy,
    ) -> Option<f64> {
        let instance = self.true_instance;
        let groups = placement.services_per_node(instance.num_nodes());
        let mut min_yield: f64 = 1.0;
        for (h, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let node = &instance.nodes()[h];
            // Reserve rigid CPU requirements first.
            let reserved: f64 = group
                .iter()
                .map(|&j| instance.services()[j].req_agg[dims::CPU])
                .sum();
            if reserved > node.aggregate[dims::CPU] + EPSILON {
                return None;
            }
            let extra_capacity = (node.aggregate[dims::CPU] - reserved).max(0.0);

            // True fluid demands, capped by each service's elementary limit
            // (a VM cannot push a virtual core past a physical one).
            let mut demands = Vec::with_capacity(group.len());
            for &j in group {
                let s = &instance.services()[j];
                let cap = elementary_yield_cap(s, node);
                demands.push(cap * s.need_agg[dims::CPU]);
            }

            let allocs: Vec<f64> = match policy {
                AllocationPolicy::AllocCaps => group
                    .iter()
                    .enumerate()
                    .map(|(k, &j)| planned_extra[j].min(demands[k]))
                    .collect(),
                AllocationPolicy::AllocWeights => {
                    let weights: Vec<f64> = group.iter().map(|&j| planned_extra[j]).collect();
                    weighted_water_fill(extra_capacity, &demands, &weights)
                }
                AllocationPolicy::EqualWeights => {
                    let weights = vec![1.0; group.len()];
                    weighted_water_fill(extra_capacity, &demands, &weights)
                }
            };

            for (k, &j) in group.iter().enumerate() {
                let s = &instance.services()[j];
                let need = s.need_agg[dims::CPU];
                let y = if need <= EPSILON {
                    1.0
                } else {
                    (allocs[k] / need).clamp(0.0, 1.0)
                };
                min_yield = min_yield.min(y);
            }
        }
        Some(min_yield)
    }
}

/// Elementary-capacity cap on a service's yield when hosted on `node`
/// (CPU dimension): the largest `y ≤ 1` with `rᵉ + y·nᵉ ≤ cᵉ`.
fn elementary_yield_cap(s: &Service, node: &vmplace_model::Node) -> f64 {
    let ne = s.need_elem[dims::CPU];
    if ne <= EPSILON {
        return 1.0;
    }
    ((node.elementary[dims::CPU] - s.req_elem[dims::CPU]) / ne).clamp(0.0, 1.0)
}

/// The zero-knowledge placement: an even spread that uses no *need*
/// estimates. Node capacities are platform facts known to any scheduler,
/// so "as evenly as possible" on a heterogeneous platform means evenly
/// *per unit of CPU capacity*: services (sorted by decreasing memory
/// requirement) go to the feasible node with the lowest service count per
/// CPU capacity (ties: most free memory).
pub fn zero_knowledge_placement(instance: &ProblemInstance) -> Option<Placement> {
    let dimsn = instance.dims();
    let mut order: Vec<usize> = (0..instance.num_services()).collect();
    order.sort_by(|&a, &b| {
        let ma = instance.services()[a].req_agg[dims::MEM];
        let mb = instance.services()[b].req_agg[dims::MEM];
        mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
    });

    let mut counts = vec![0usize; instance.num_nodes()];
    let mut req_load = vec![vec![0.0f64; dimsn]; instance.num_nodes()];
    let mut placement = Placement::empty(instance.num_services());
    for &j in &order {
        let s = &instance.services()[j];
        let mut best: Option<(usize, f64, f64)> = None; // (node, density, -free_mem)
        for h in 0..instance.num_nodes() {
            let node = &instance.nodes()[h];
            if !s.req_elem.le(&node.elementary, EPSILON) {
                continue;
            }
            let fits =
                (0..dimsn).all(|d| req_load[h][d] + s.req_agg[d] <= node.aggregate[d] + EPSILON);
            if !fits {
                continue;
            }
            let density = (counts[h] as f64 + 1.0) / node.aggregate[dims::CPU].max(1e-9);
            let free_mem = node.aggregate[dims::MEM] - req_load[h][dims::MEM];
            let better = match best {
                None => true,
                Some((_, bd, bnf)) => {
                    density < bd - 1e-12 || (density <= bd + 1e-12 && -free_mem < bnf)
                }
            };
            if better {
                best = Some((h, density, -free_mem));
            }
        }
        let (h, _, _) = best?;
        counts[h] += 1;
        for d in 0..dimsn {
            req_load[h][d] += s.req_agg[d];
        }
        placement.assign(j, h);
    }
    Some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::{apply_min_threshold, perturb_cpu_needs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vmplace_model::{Node, Service};

    fn instance() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.25, 1.0), Node::multicore(4, 0.25, 1.0)];
        let mk = |need: f64, mem: f64| {
            Service::new(
                vec![0.01, mem],
                vec![0.01, mem],
                vec![need / 2.0, 0.0],
                vec![need, 0.0],
            )
        };
        let services = vec![mk(0.6, 0.3), mk(0.3, 0.4), mk(0.5, 0.2), mk(0.4, 0.5)];
        ProblemInstance::new(nodes, services).unwrap()
    }

    fn spread_placement() -> Placement {
        let mut p = Placement::empty(4);
        p.assign(0, 0);
        p.assign(2, 0);
        p.assign(1, 1);
        p.assign(3, 1);
        p
    }

    #[test]
    fn perfect_estimates_match_evaluator_under_alloccaps() {
        let inst = instance();
        let p = spread_placement();
        let run = ErrorRun::new(&inst);
        let planned = run.planned_extras(inst.services(), &p).unwrap();
        let actual = run
            .actual_min_yield(&p, &planned, AllocationPolicy::AllocCaps)
            .unwrap();
        let ideal = evaluate_placement(&inst, &p).unwrap().min_yield;
        assert!((actual - ideal).abs() < 1e-9, "{actual} vs {ideal}");
    }

    #[test]
    fn work_conserving_policies_dominate_caps_under_perfect_estimates() {
        let inst = instance();
        let p = spread_placement();
        let run = ErrorRun::new(&inst);
        let planned = run.planned_extras(inst.services(), &p).unwrap();
        let caps = run
            .actual_min_yield(&p, &planned, AllocationPolicy::AllocCaps)
            .unwrap();
        let weights = run
            .actual_min_yield(&p, &planned, AllocationPolicy::AllocWeights)
            .unwrap();
        assert!(weights >= caps - 1e-9);
    }

    #[test]
    fn underestimates_hurt_alloccaps_more_than_weights() {
        let inst = instance();
        let p = spread_placement();
        let run = ErrorRun::new(&inst);
        // Halve every estimate: caps freeze services at half their true
        // entitlement while the work-conserving scheduler redistributes.
        let estimates: Vec<Service> = inst
            .services()
            .iter()
            .map(|s| {
                let mut e = s.clone();
                e.need_agg[dims::CPU] *= 0.5;
                e.need_elem[dims::CPU] *= 0.5;
                e
            })
            .collect();
        let planned = run.planned_extras(&estimates, &p).unwrap();
        let caps = run
            .actual_min_yield(&p, &planned, AllocationPolicy::AllocCaps)
            .unwrap();
        let weights = run
            .actual_min_yield(&p, &planned, AllocationPolicy::AllocWeights)
            .unwrap();
        assert!(
            weights > caps + 0.05,
            "weights {weights} should beat caps {caps} clearly"
        );
    }

    #[test]
    fn equal_weights_ignores_the_plan() {
        let inst = instance();
        let p = spread_placement();
        let run = ErrorRun::new(&inst);
        let a = run
            .actual_min_yield(&p, &[0.0; 4], AllocationPolicy::EqualWeights)
            .unwrap();
        let b = run
            .actual_min_yield(&p, &[9.9; 4], AllocationPolicy::EqualWeights)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_knowledge_spreads_evenly() {
        let inst = instance();
        let p = zero_knowledge_placement(&inst).unwrap();
        let groups = p.services_per_node(inst.num_nodes());
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn zero_knowledge_fails_when_nothing_fits() {
        let nodes = vec![Node::multicore(1, 0.5, 0.2)];
        let services = vec![Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(zero_knowledge_placement(&inst).is_none());
    }

    #[test]
    fn full_pipeline_with_threshold_mitigation_runs() {
        let inst = instance();
        let mut rng = StdRng::seed_from_u64(13);
        let est = perturb_cpu_needs(inst.services(), 0.2, &mut rng);
        let est = apply_min_threshold(&est, 0.1);
        let p = spread_placement();
        let run = ErrorRun::new(&inst);
        let planned = run.planned_extras(&est, &p).unwrap();
        for policy in [
            AllocationPolicy::AllocCaps,
            AllocationPolicy::AllocWeights,
            AllocationPolicy::EqualWeights,
        ] {
            let y = run.actual_min_yield(&p, &planned, policy).unwrap();
            assert!((0.0..=1.0).contains(&y), "{} gave {y}", policy.label());
        }
    }
}
