//! Request-trace generation for the long-lived allocation service.
//!
//! A trace models the service's steady state: several independent
//! *streams* (tenants / clusters), each opening with a full §4-style
//! instance and then evolving through service **arrivals**, **departures**
//! and **demand changes**, with occasional in-place **re-solves** under a
//! tightened budget. Each `(config, seed)` pair deterministically yields
//! one trace, mirroring [`crate::scenario::Scenario`] for single
//! instances.

use crate::rng::weighted_index;
use crate::scenario::{Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use vmplace_model::{AllocRequest, RequestKind, ResponsePolicy, Service, WorkloadDelta};

/// Adversarial traffic shapes layered over the base generator — the
/// load patterns the fault-tolerance layer must degrade gracefully
/// under (chaos suite + the overload grid in `BENCH_net.json`).
///
/// [`Adversarial::None`] leaves the generator byte-identical to the
/// shape-free versions of a config: the adversarial branches draw from
/// the RNG only when active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Adversarial {
    /// The plain workload mix (the default).
    #[default]
    None,
    /// Correlated demand spike: in the middle third of the trace, every
    /// stream's follow-up becomes a demand *increase* on a random
    /// service — all tenants surge together, so no stream's solve gets
    /// cheaper while the others get dearer.
    Spike,
    /// Flash crowd: once every stream has opened, follow-ups concentrate
    /// on stream 0 (the hot stream), with only every fourth request
    /// visiting the others — one tenant floods the service while the
    /// rest must stay live.
    FlashCrowd,
    /// Churn storm: follow-ups alternate whole rounds of arrivals and
    /// departures — instances grow and shrink as fast as the generator
    /// allows, the worst case for per-stream warm state.
    ChurnStorm,
}

/// Configuration of the trace generator.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of independent streams.
    pub streams: usize,
    /// Total number of requests across all streams (including each
    /// stream's opening `New` request).
    pub requests: usize,
    /// Shape of each stream's opening instance.
    pub scenario: ScenarioConfig,
    /// Relative weights of the four follow-up request flavours:
    /// `(arrival, departure, demand change, re-solve)`.
    pub mix: (f64, f64, f64, f64),
    /// Wall-clock budget attached to re-solve requests (`None` leaves
    /// every request unbudgeted).
    pub resolve_budget: Option<Duration>,
    /// Every drawn re-solve becomes a burst of this many consecutive
    /// identical `Resolve` requests on its stream (1 = no bursts). Models
    /// reconciliation loops and health-check refreshes re-asking an
    /// unchanged question — the workload the service's response cache
    /// answers without solving.
    pub resolve_burst: usize,
    /// Response policy attached to every follow-up request (`Delta` and
    /// `Resolve`; opening `New` requests always go out `Exact` — there is
    /// no placement to repair yet, and keeping them exact makes the
    /// repaired trace's opening solves comparable to the exact trace's).
    pub policy: ResponsePolicy,
    /// Adversarial traffic shape layered over the mix
    /// ([`Adversarial::None`] reproduces shape-free traces byte for
    /// byte).
    pub adversarial: Adversarial,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            streams: 4,
            requests: 50,
            scenario: ScenarioConfig {
                hosts: 16,
                services: 40,
                cov: 0.5,
                memory_slack: 0.5,
                ..ScenarioConfig::default()
            },
            mix: (0.35, 0.25, 0.3, 0.1),
            resolve_budget: None,
            resolve_burst: 1,
            policy: ResponsePolicy::Exact,
            adversarial: Adversarial::None,
        }
    }
}

impl TraceConfig {
    /// Generates the `seed`-th trace of this configuration: requests
    /// arrive round-robin across streams, each stream opening with a
    /// `New` instance and then drawing follow-ups from
    /// [`TraceConfig::mix`]. Request ids are unique and increase in
    /// submission order.
    pub fn generate(&self, seed: u64) -> Vec<AllocRequest> {
        assert!(self.streams > 0, "trace needs at least one stream");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        let scenario = Scenario::new(self.scenario.clone());
        let weights = [self.mix.0, self.mix.1, self.mix.2, self.mix.3];

        // Per-stream state: the evolving service count (for valid indices),
        // a copy of the opening services (arrival templates) and the
        // remaining length of an in-progress re-solve burst.
        let mut counts: Vec<usize> = Vec::with_capacity(self.streams);
        let mut templates: Vec<Vec<Service>> = Vec::with_capacity(self.streams);
        let mut bursting: Vec<usize> = vec![0; self.streams];

        // Demand spikes hit the middle third of the trace: every stream
        // is open and warm by then, and recovery is observable after.
        let spike_window = self.requests / 3..(2 * self.requests) / 3;

        let mut trace = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            let all_open = id >= self.streams as u64;
            let stream = match self.adversarial {
                // Flash crowd: concentrate on stream 0 once every stream
                // has opened; every fourth request still visits the
                // round-robin stream so the cold streams stay live.
                Adversarial::FlashCrowd if all_open && id % 4 != 3 => 0,
                _ => id % self.streams as u64,
            };
            let s = stream as usize;
            if s >= counts.len() {
                // First visit: open the stream.
                let instance = scenario.instance(seed.wrapping_add(1 + stream));
                counts.push(instance.num_services());
                templates.push(instance.services().to_vec());
                trace.push(AllocRequest {
                    id,
                    stream,
                    kind: RequestKind::New(instance),
                    budget: None,
                    policy: ResponsePolicy::Exact,
                });
                continue;
            }

            if bursting[s] > 0 {
                // Continue the stream's identical re-solve burst (no RNG
                // draw, so `resolve_burst = 1` reproduces prior traces
                // byte for byte).
                bursting[s] -= 1;
                trace.push(AllocRequest {
                    id,
                    stream,
                    kind: RequestKind::Resolve,
                    budget: self.resolve_budget,
                    policy: self.policy,
                });
                continue;
            }

            let spiking =
                self.adversarial == Adversarial::Spike && spike_window.contains(&(id as usize));
            let flavour = match self.adversarial {
                // Correlated spike: every stream's follow-up in the
                // window is a (forced-upward) demand change.
                Adversarial::Spike if spiking => 2,
                // Churn storm: whole rounds of arrivals alternate with
                // whole rounds of departures.
                Adversarial::ChurnStorm => {
                    if (id as usize / self.streams) % 2 == 0 {
                        0
                    } else {
                        1
                    }
                }
                _ => weighted_index(&mut rng, &weights),
            };
            let (kind, budget) = match flavour {
                // Arrival: a template service with uniformly rescaled
                // needs and memory (uniform scaling preserves validity;
                // memory only ever scales *down*, so an arrival is always
                // placeable wherever its template was and a stream cannot
                // become permanently infeasible from one oversized
                // arrival).
                0 => {
                    let t = &templates[s][rng.gen_range(0..templates[s].len())];
                    let mut svc = t.clone();
                    let need_scale = rng.gen_range(0.5..1.5);
                    let mem_scale = rng.gen_range(0.4..1.0);
                    svc.need_elem.scale_assign(need_scale);
                    svc.need_agg.scale_assign(need_scale);
                    for d in 1..svc.dims() {
                        svc.req_elem[d] *= mem_scale;
                        svc.req_agg[d] *= mem_scale;
                    }
                    counts[s] += 1;
                    (
                        RequestKind::Delta(WorkloadDelta {
                            add: vec![svc],
                            ..WorkloadDelta::default()
                        }),
                        None,
                    )
                }
                // Departure (kept above one service so the stream's
                // instance stays valid).
                1 if counts[s] > 1 => {
                    let victim = rng.gen_range(0..counts[s]);
                    counts[s] -= 1;
                    (
                        RequestKind::Delta(WorkloadDelta {
                            remove: vec![victim],
                            ..WorkloadDelta::default()
                        }),
                        None,
                    )
                }
                // Demand change on a random service (a spike window
                // forces the change upward — correlated pressure).
                2 => {
                    let j = rng.gen_range(0..counts[s]);
                    let factor = if spiking {
                        rng.gen_range(1.05..1.35)
                    } else {
                        rng.gen_range(0.6..1.4)
                    };
                    (
                        RequestKind::Delta(WorkloadDelta {
                            scale_need: vec![(j, factor)],
                            ..WorkloadDelta::default()
                        }),
                        None,
                    )
                }
                // Re-solve in place (departure draws on a 1-service
                // stream also land here); `resolve_burst > 1` queues the
                // burst's remainder for the stream's next turns.
                _ => {
                    bursting[s] = self.resolve_burst.saturating_sub(1);
                    (RequestKind::Resolve, self.resolve_budget)
                }
            };
            trace.push(AllocRequest {
                id,
                stream,
                kind,
                budget,
                policy: self.policy,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::ProblemInstance;

    /// Replays the deltas of a trace, checking each materialised instance
    /// validates; returns per-stream final instances.
    fn materialise(trace: &[AllocRequest]) -> Vec<ProblemInstance> {
        let mut streams: std::collections::BTreeMap<u64, ProblemInstance> = Default::default();
        for req in trace {
            match &req.kind {
                RequestKind::New(inst) => {
                    streams.insert(req.stream, inst.clone());
                }
                RequestKind::Delta(delta) => {
                    let cur = streams.get(&req.stream).expect("delta before New");
                    let next = cur.apply_delta(delta).expect("generated delta is valid");
                    streams.insert(req.stream, next);
                }
                RequestKind::Resolve => {
                    assert!(streams.contains_key(&req.stream), "resolve before New");
                }
            }
        }
        streams.into_values().collect()
    }

    #[test]
    fn traces_are_deterministic_and_seed_sensitive() {
        let cfg = TraceConfig::default();
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.stream, y.stream);
            assert_eq!(
                std::mem::discriminant(&x.kind),
                std::mem::discriminant(&y.kind)
            );
        }
        let c = cfg.generate(8);
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| std::mem::discriminant(&x.kind) != std::mem::discriminant(&y.kind));
        assert!(differs, "seeds 7 and 8 generated identical traces");
    }

    #[test]
    fn every_delta_applies_cleanly() {
        let cfg = TraceConfig {
            requests: 120,
            ..TraceConfig::default()
        };
        let trace = cfg.generate(3);
        assert_eq!(trace.len(), 120);
        let finals = materialise(&trace);
        assert_eq!(finals.len(), cfg.streams);
        for inst in finals {
            assert!(inst.num_services() >= 1);
            // The chain never touches the platform.
            assert_eq!(inst.num_nodes(), cfg.scenario.hosts);
        }
    }

    #[test]
    fn ids_are_unique_and_streams_open_with_new() {
        let trace = TraceConfig::default().generate(0);
        let mut seen = std::collections::HashSet::new();
        let mut opened = std::collections::HashSet::new();
        for req in &trace {
            assert!(seen.insert(req.id), "duplicate id {}", req.id);
            if !opened.contains(&req.stream) {
                assert!(
                    matches!(req.kind, RequestKind::New(_)),
                    "stream {} did not open with New",
                    req.stream
                );
                opened.insert(req.stream);
            }
        }
    }

    #[test]
    fn resolve_bursts_emit_identical_consecutive_resolves() {
        let base = TraceConfig {
            requests: 80,
            ..TraceConfig::default()
        };
        let burst = TraceConfig {
            resolve_burst: 3,
            ..base.clone()
        };
        let a = base.generate(4);
        let b = burst.generate(4);
        // Bursts only insert extra per-stream resolves; both traces stay
        // valid end to end.
        materialise(&a);
        materialise(&b);
        let count = |t: &[AllocRequest]| {
            t.iter()
                .filter(|r| matches!(r.kind, RequestKind::Resolve))
                .count()
        };
        assert!(
            count(&b) > count(&a),
            "bursting added no resolves: {} vs {}",
            count(&b),
            count(&a)
        );
        // Per stream, every burst is a run of ≥... consecutive (in stream
        // order) identical Resolve requests.
        for stream in 0..burst.streams as u64 {
            let kinds: Vec<bool> = b
                .iter()
                .filter(|r| r.stream == stream)
                .map(|r| matches!(r.kind, RequestKind::Resolve))
                .collect();
            let mut runs = Vec::new();
            let mut run = 0usize;
            for is_resolve in kinds {
                if is_resolve {
                    run += 1;
                } else if run > 0 {
                    runs.push(run);
                    run = 0;
                }
            }
            if run > 0 {
                runs.push(run);
            }
            // Every completed burst reaches the configured length (the
            // trace may truncate the final one).
            for (i, r) in runs.iter().enumerate() {
                assert!(
                    *r % 3 == 0 || i + 1 == runs.len(),
                    "stream {stream}: run of {r} resolves, runs {runs:?}"
                );
            }
        }
    }

    #[test]
    fn burst_of_one_reproduces_the_plain_trace() {
        let cfg = TraceConfig {
            requests: 60,
            ..TraceConfig::default()
        };
        let a = cfg.generate(9);
        let b = TraceConfig {
            resolve_burst: 1,
            ..cfg
        }
        .generate(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                std::mem::discriminant(&x.kind),
                std::mem::discriminant(&y.kind)
            );
        }
    }

    #[test]
    fn spike_window_forces_upward_demand_changes() {
        let cfg = TraceConfig {
            requests: 90,
            adversarial: Adversarial::Spike,
            ..TraceConfig::default()
        };
        let trace = cfg.generate(5);
        materialise(&trace); // still a valid delta chain
        let window = cfg.requests / 3..(2 * cfg.requests) / 3;
        let mut spikes = 0;
        for req in trace.iter().filter(|r| window.contains(&(r.id as usize))) {
            match &req.kind {
                RequestKind::Delta(d) if !d.scale_need.is_empty() => {
                    assert!(
                        d.scale_need.iter().all(|(_, f)| *f > 1.0),
                        "spike window scaled demand down: {:?}",
                        d.scale_need
                    );
                    spikes += 1;
                }
                RequestKind::New(_) => {} // a late-opening stream
                other => panic!("non-spike follow-up in the window: {other:?}"),
            }
        }
        assert!(spikes > 20, "only {spikes} spikes in the window");
    }

    #[test]
    fn flash_crowd_concentrates_on_the_hot_stream() {
        let cfg = TraceConfig {
            requests: 100,
            adversarial: Adversarial::FlashCrowd,
            ..TraceConfig::default()
        };
        let trace = cfg.generate(6);
        materialise(&trace);
        // Every stream still opens (with New first)…
        let opened: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::New(_)))
            .map(|r| r.stream)
            .collect();
        assert_eq!(opened.len(), cfg.streams);
        // …but the bulk of the follow-ups floods stream 0.
        let after_open = &trace[cfg.streams..];
        let hot = after_open.iter().filter(|r| r.stream == 0).count();
        assert!(
            hot * 10 >= after_open.len() * 7,
            "hot stream got {hot} of {} follow-ups",
            after_open.len()
        );
        // The cold streams keep seeing traffic.
        assert!(after_open.iter().any(|r| r.stream != 0));
    }

    #[test]
    fn churn_storm_alternates_arrivals_and_departures() {
        let cfg = TraceConfig {
            requests: 120,
            adversarial: Adversarial::ChurnStorm,
            ..TraceConfig::default()
        };
        let trace = cfg.generate(2);
        materialise(&trace);
        let adds = trace
            .iter()
            .filter(|r| matches!(&r.kind, RequestKind::Delta(d) if !d.add.is_empty()))
            .count();
        let removes = trace
            .iter()
            .filter(|r| matches!(&r.kind, RequestKind::Delta(d) if !d.remove.is_empty()))
            .count();
        assert!(adds > 20, "churn storm produced only {adds} arrivals");
        assert!(
            removes > 20,
            "churn storm produced only {removes} departures"
        );
    }

    #[test]
    fn adversarial_none_reproduces_the_plain_trace() {
        let cfg = TraceConfig {
            requests: 60,
            ..TraceConfig::default()
        };
        let a = cfg.generate(9);
        let b = TraceConfig {
            adversarial: Adversarial::None,
            ..cfg
        }
        .generate(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stream, y.stream);
            assert_eq!(
                std::mem::discriminant(&x.kind),
                std::mem::discriminant(&y.kind)
            );
        }
    }

    #[test]
    fn resolve_requests_carry_the_configured_budget() {
        let cfg = TraceConfig {
            requests: 200,
            mix: (0.0, 0.0, 0.0, 1.0),
            resolve_budget: Some(Duration::from_millis(5)),
            ..TraceConfig::default()
        };
        let trace = cfg.generate(1);
        let resolves: Vec<_> = trace
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Resolve))
            .collect();
        assert!(!resolves.is_empty());
        assert!(resolves
            .iter()
            .all(|r| r.budget == Some(Duration::from_millis(5))));
    }
}
