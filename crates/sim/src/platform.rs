//! Platform generation (§4).
//!
//! "We draw aggregate CPU and memory capacities from a normal distribution
//! with a median value of 0.5, limited to minimum values of 0.001 and
//! maximum values of 1.0. The coefficient of variation is varied from 0.0
//! (completely homogeneous) to 1.0. […] all machines are quad core, and
//! therefore have CPU elements with 1/4 the aggregate machine power."
//!
//! Figures 3 and 4 additionally hold one dimension homogeneous at 0.5 —
//! [`HomogeneousDim`] reproduces those variants.

use crate::rng::normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmplace_model::Node;

/// Which dimension (if any) to hold homogeneous at its median.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HomogeneousDim {
    /// All nodes get CPU capacity 0.5 (Figure 3).
    Cpu,
    /// All nodes get memory capacity 0.5 (Figure 4).
    Memory,
}

/// Configuration of the platform generator.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Number of nodes (the paper uses 64; the 512-node timing experiment
    /// raises it).
    pub nodes: usize,
    /// Coefficient of variation of both capacity distributions, in `[0, 1]`.
    pub cov: f64,
    /// Median/mean aggregate capacity (paper: 0.5 for both dimensions).
    pub median: f64,
    /// Cores per node (paper: 4).
    pub cores: usize,
    /// Optionally hold one dimension homogeneous (Figures 3–4).
    pub homogeneous: Option<HomogeneousDim>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            nodes: 64,
            cov: 0.0,
            median: 0.5,
            cores: 4,
            homogeneous: None,
        }
    }
}

impl PlatformConfig {
    /// Generates the node set deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<Node> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sd = self.cov * self.median;
        let draw = |rng: &mut StdRng| -> f64 {
            if sd == 0.0 {
                self.median
            } else {
                normal(rng, self.median, sd).clamp(0.001, 1.0)
            }
        };
        (0..self.nodes)
            .map(|_| {
                let cpu = match self.homogeneous {
                    Some(HomogeneousDim::Cpu) => self.median,
                    _ => draw(&mut rng),
                };
                let mem = match self.homogeneous {
                    Some(HomogeneousDim::Memory) => self.median,
                    _ => draw(&mut rng),
                };
                Node::multicore(self.cores, cpu / self.cores as f64, mem)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cov_is_perfectly_homogeneous() {
        let nodes = PlatformConfig::default().generate(1);
        assert_eq!(nodes.len(), 64);
        for n in &nodes {
            assert_eq!(n.aggregate[0], 0.5);
            assert_eq!(n.aggregate[1], 0.5);
            assert_eq!(n.elementary[0], 0.125); // quad-core
            assert_eq!(n.elementary[1], 0.5); // memory pools
        }
    }

    #[test]
    fn capacities_respect_clamps() {
        let cfg = PlatformConfig {
            cov: 1.0,
            nodes: 2000,
            ..PlatformConfig::default()
        };
        for n in cfg.generate(42) {
            assert!(n.aggregate[0] >= 0.001 && n.aggregate[0] <= 1.0);
            assert!(n.aggregate[1] >= 0.001 && n.aggregate[1] <= 1.0);
            assert!((n.elementary[0] - n.aggregate[0] / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cov_controls_dispersion() {
        let sd_of = |cov: f64| {
            let cfg = PlatformConfig {
                cov,
                nodes: 5000,
                ..PlatformConfig::default()
            };
            let caps: Vec<f64> = cfg.generate(9).iter().map(|n| n.aggregate[0]).collect();
            let mean = caps.iter().sum::<f64>() / caps.len() as f64;
            (caps.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / caps.len() as f64).sqrt()
        };
        let lo = sd_of(0.2);
        let hi = sd_of(0.8);
        assert!(lo > 0.05 && lo < 0.15, "sd(0.2) = {lo}");
        assert!(hi > lo, "dispersion must grow with cov");
    }

    #[test]
    fn homogeneous_cpu_variant_fixes_cpu_only() {
        let cfg = PlatformConfig {
            cov: 1.0,
            nodes: 200,
            homogeneous: Some(HomogeneousDim::Cpu),
            ..PlatformConfig::default()
        };
        let nodes = cfg.generate(5);
        assert!(nodes.iter().all(|n| n.aggregate[0] == 0.5));
        let mems: Vec<f64> = nodes.iter().map(|n| n.aggregate[1]).collect();
        let spread = mems.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - mems.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "memory must still vary");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PlatformConfig {
            cov: 0.6,
            ..PlatformConfig::default()
        };
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }
}
