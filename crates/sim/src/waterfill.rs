//! The §6 work-conserving CPU redistribution.
//!
//! "Each service is allocated a portion of the node relative to its weight
//! […] any portions of the CPU that are left unused are pooled together and
//! redistributed to remaining unsatisfied services again by their weight.
//! This process continues until either all of the services are satisfied or
//! there is no more CPU available."
//!
//! [`weighted_water_fill`] computes the fixed point of that iteration in
//! closed form: the allocation is `min(demand_i, t·w_i)` for the largest
//! water level `t` that does not overrun the capacity. An explicitly
//! iterative reference implementation is kept in the tests to validate the
//! equivalence (including the paper's termination-epsilon behaviour).

/// Allocates `capacity` among services with the given `demands` and
/// `weights` using the work-conserving proportional-share policy.
///
/// Returns per-service allocations with `Σ alloc ≤ capacity + ε` and
/// `alloc_i ≤ demand_i`. Zero-weight services receive nothing unless every
/// weight is zero, in which case weights are treated as equal (the paper's
/// EQUALWEIGHTS corner).
pub fn weighted_water_fill(capacity: f64, demands: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(demands.len(), weights.len());
    let n = demands.len();
    if n == 0 || capacity <= 0.0 {
        return vec![0.0; n];
    }
    let total_w: f64 = weights.iter().sum();
    let equalized: Vec<f64>;
    let w: &[f64] = if total_w <= 0.0 {
        equalized = vec![1.0; n];
        &equalized
    } else {
        weights
    };

    let total_demand: f64 = demands.iter().sum();
    if total_demand <= capacity {
        return demands.to_vec(); // work conserving: everyone satisfied
    }

    // Phase 1: water-fill the positively weighted services. Sorted by
    // saturation level demand_i / w_i, below the final level t a service is
    // capped at its demand, above it gets t·w_i.
    let mut order: Vec<usize> = (0..n).filter(|&i| w[i] > 0.0).collect();
    let sat = |i: usize| demands[i] / w[i];
    order.sort_by(|&a, &b| sat(a).partial_cmp(&sat(b)).unwrap());

    let mut remaining_capacity = capacity;
    let mut remaining_weight: f64 = order.iter().map(|&i| w[i]).sum();
    let mut alloc = vec![0.0; n];
    let mut contended = false;
    for (pos, &i) in order.iter().enumerate() {
        let level = remaining_capacity / remaining_weight;
        if sat(i) <= level {
            // Satisfied: takes its demand, surplus stays in the pool.
            alloc[i] = demands[i];
            remaining_capacity -= demands[i];
            remaining_weight -= w[i];
        } else {
            // This and all later services split the pool by weight.
            for &j in &order[pos..] {
                alloc[j] = level * w[j];
            }
            contended = true;
            remaining_capacity = 0.0;
            break;
        }
    }

    // Phase 2 (work conservation): capacity left after satisfying every
    // weighted service flows to zero-weight services, split equally.
    if !contended && remaining_capacity > 0.0 {
        let idle: Vec<usize> = (0..n).filter(|&i| w[i] <= 0.0).collect();
        if !idle.is_empty() {
            let demands2: Vec<f64> = idle.iter().map(|&i| demands[i]).collect();
            let ones = vec![1.0; idle.len()];
            let sub = weighted_water_fill(remaining_capacity, &demands2, &ones);
            for (k, &i) in idle.iter().enumerate() {
                alloc[i] = sub[k];
            }
        }
    }
    alloc
}

/// Optimal max–min yield on a single resource: every service gets
/// `y·need_i` with the largest feasible common `y` (all-knowing baseline of
/// Theorem 1). Returns the optimal minimum yield.
pub fn omniscient_min_yield(capacity: f64, needs: &[f64]) -> f64 {
    let total: f64 = needs.iter().sum();
    if total <= capacity || total <= 0.0 {
        1.0
    } else {
        capacity / total
    }
}

/// The minimum yield EQUALWEIGHTS achieves on a single resource: equal
/// weights, work-conserving, yields measured against the true needs.
pub fn equal_weights_min_yield(capacity: f64, needs: &[f64]) -> f64 {
    let weights = vec![1.0; needs.len()];
    let alloc = weighted_water_fill(capacity, needs, &weights);
    needs
        .iter()
        .zip(&alloc)
        .map(|(&n, &a)| if n <= 0.0 { 1.0 } else { (a / n).min(1.0) })
        .fold(1.0, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct transcription of the paper's iterative redistribution, used
    /// as a reference implementation.
    fn iterative_reference(capacity: f64, demands: &[f64], weights: &[f64]) -> Vec<f64> {
        let n = demands.len();
        let total_w: f64 = weights.iter().sum();
        let mut w: Vec<f64> = if total_w <= 0.0 {
            vec![1.0; n]
        } else {
            weights.to_vec()
        };
        let mut alloc = vec![0.0; n];
        let mut satisfied = vec![false; n];
        let mut available = capacity;
        const EPS: f64 = 1e-12;
        loop {
            let active_w: f64 = (0..n).filter(|&i| !satisfied[i]).map(|i| w[i]).sum();
            if available <= EPS {
                break;
            }
            if active_w <= 0.0 {
                // Only zero-weight services left wanting; work conservation
                // hands them the idle capacity with equal weights.
                let any = (0..n).any(|i| !satisfied[i] && demands[i] > alloc[i] + EPS);
                if !any {
                    break;
                }
                for i in 0..n {
                    if !satisfied[i] {
                        w[i] = 1.0;
                    }
                }
                continue;
            }
            // Tentative proportional share for unsatisfied services.
            let mut newly = Vec::new();
            for i in 0..n {
                if satisfied[i] {
                    continue;
                }
                let share = alloc[i] + available * w[i] / active_w;
                if demands[i] <= share + EPS {
                    newly.push(i);
                }
            }
            if newly.is_empty() {
                // Nobody saturates: hand out the shares and stop.
                for i in 0..n {
                    if !satisfied[i] {
                        alloc[i] += available * w[i] / active_w;
                    }
                }
                break;
            }
            for &i in &newly {
                available -= demands[i] - alloc[i];
                alloc[i] = demands[i];
                satisfied[i] = true;
            }
        }
        alloc
    }

    fn assert_allocs_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn under_subscription_gives_everyone_their_demand() {
        let alloc = weighted_water_fill(1.0, &[0.2, 0.3], &[1.0, 1.0]);
        assert_allocs_close(&alloc, &[0.2, 0.3]);
    }

    #[test]
    fn oversubscription_splits_by_weight() {
        let alloc = weighted_water_fill(1.0, &[2.0, 2.0], &[3.0, 1.0]);
        assert_allocs_close(&alloc, &[0.75, 0.25]);
    }

    #[test]
    fn paper_example_work_conserving_redistribution() {
        // §6: two instances capped at 50% each, one uses less → the other
        // may take the unused portion.
        let alloc = weighted_water_fill(1.0, &[0.2, 1.0], &[1.0, 1.0]);
        assert_allocs_close(&alloc, &[0.2, 0.8]);
    }

    #[test]
    fn zero_weights_fall_back_to_equal() {
        let alloc = weighted_water_fill(1.0, &[1.0, 1.0], &[0.0, 0.0]);
        assert_allocs_close(&alloc, &[0.5, 0.5]);
    }

    #[test]
    fn partially_zero_weight_gets_nothing_when_contended() {
        let alloc = weighted_water_fill(1.0, &[1.0, 1.0], &[0.0, 1.0]);
        assert_allocs_close(&alloc, &[0.0, 1.0]);
    }

    #[test]
    fn matches_iterative_reference_on_many_cases() {
        let mut state = 0xabcdef12u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..500 {
            let n = 1 + (rnd() * 8.0) as usize;
            let demands: Vec<f64> = (0..n).map(|_| rnd() * 1.5).collect();
            let weights: Vec<f64> = (0..n)
                .map(|_| if rnd() < 0.2 { 0.0 } else { rnd() })
                .collect();
            let cap = rnd() * 2.0;
            let fast = weighted_water_fill(cap, &demands, &weights);
            let slow = iterative_reference(cap, &demands, &weights);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-7, "trial {trial}: {fast:?} vs {slow:?}");
            }
            // Conservation and demand caps.
            let total: f64 = fast.iter().sum();
            assert!(total <= cap + 1e-7, "trial {trial}");
            for (a, d) in fast.iter().zip(&demands) {
                assert!(*a <= d + 1e-9, "trial {trial}");
            }
        }
    }

    // ---- Theorem 1 ----------------------------------------------------

    /// The bound (2J−1)/J².
    fn theorem_bound(j: usize) -> f64 {
        let j = j as f64;
        (2.0 * j - 1.0) / (j * j)
    }

    #[test]
    fn theorem1_tight_instance_achieves_the_bound_exactly() {
        // n₁ = 1, n_j = 1/J for j ≥ 2 on a unit resource.
        for j in [2usize, 3, 5, 10, 50] {
            let mut needs = vec![1.0];
            needs.extend(std::iter::repeat(1.0 / j as f64).take(j - 1));
            let eq = equal_weights_min_yield(1.0, &needs);
            let opt = omniscient_min_yield(1.0, &needs);
            let ratio = eq / opt;
            assert!(
                (ratio - theorem_bound(j)).abs() < 1e-9,
                "J={j}: ratio {ratio} vs bound {}",
                theorem_bound(j)
            );
        }
    }

    #[test]
    fn theorem1_needs_above_one_break_the_bound() {
        // Documents the hidden assumption: with a need above the full
        // resource (n̂ = 1.656 > 1) the (2J−1)/J² bound does NOT hold.
        let needs = [1.6556654150832495, 0.526340348587124];
        let eq = equal_weights_min_yield(1.0, &needs);
        let opt = omniscient_min_yield(1.0, &needs);
        assert!(
            eq / opt < theorem_bound(2),
            "expected a violation: ratio {} vs bound {}",
            eq / opt,
            theorem_bound(2)
        );
    }

    #[test]
    fn theorem1_bound_holds_on_random_instances() {
        // Needs are drawn from (0, 1]: Theorem 1's proof implicitly assumes
        // no service needs more than the full resource (its Case 1 step
        // substitutes n̂ = 1 as the maximum); the bound fails for n̂ > 1.
        let mut state = 0x5eed5eedu64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..2000 {
            let j = 1 + (rnd() * 12.0) as usize;
            let needs: Vec<f64> = (0..j).map(|_| 0.01 + rnd() * 0.99).collect();
            let eq = equal_weights_min_yield(1.0, &needs);
            let opt = omniscient_min_yield(1.0, &needs);
            let bound = theorem_bound(j);
            assert!(
                eq + 1e-9 >= bound * opt,
                "J={j}, needs={needs:?}: eq={eq}, opt={opt}, bound={bound}"
            );
        }
    }
}
