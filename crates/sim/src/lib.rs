//! Simulation substrate for the IPDPS 2012 reproduction.
//!
//! * [`platform`] — the §4 platform generator: 64 heterogeneous quad-core
//!   nodes with normally distributed capacities, controllable coefficient of
//!   variation, and the CPU-/memory-held-homogeneous variants of Figures 3–4;
//! * [`workload`] — the service generator standing in for the Google cluster
//!   dataset (see `DESIGN.md` §4 for the substitution argument);
//! * [`scenario`] — complete instance generation with the paper's
//!   memory-slack and CPU-need normalisations;
//! * [`errors`] — the §6.2 need-estimate perturbation and the minimum-
//!   threshold mitigation strategy;
//! * [`waterfill`] — the §6 work-conserving weighted redistribution and the
//!   (2J−1)/J² competitiveness of EQUALWEIGHTS (Theorem 1);
//! * [`runtime`] — the end-to-end error-experiment pipeline (place with
//!   estimated needs, run against true needs under
//!   ALLOCCAPS / ALLOCWEIGHTS / EQUALWEIGHTS / zero-knowledge);
//! * [`trace`] — request-stream generation (arrival / departure / demand
//!   change / re-solve) for the long-lived allocation service.

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the paper's subscript
// notation (d over dimensions, i/j over rows/services) or index several
// arrays in lockstep.
#![allow(clippy::needless_range_loop)]

pub mod errors;
pub mod platform;
pub mod rng;
pub mod runtime;
pub mod scenario;
pub mod trace;
pub mod waterfill;
pub mod workload;

pub use errors::{apply_min_threshold, perturb_cpu_needs};
pub use platform::{HomogeneousDim, PlatformConfig};
pub use runtime::{zero_knowledge_placement, AllocationPolicy, ErrorRun};
pub use scenario::{Scenario, ScenarioConfig};
pub use trace::{Adversarial, TraceConfig};
pub use waterfill::weighted_water_fill;
pub use workload::WorkloadConfig;
