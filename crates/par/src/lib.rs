//! A small data-parallel executor for embarrassingly parallel sweeps.
//!
//! The experiment harness evaluates tens of thousands of independent problem
//! instances; this crate provides the minimal machinery to spread that work
//! across cores without pulling in a full work-stealing runtime:
//!
//! * [`par_map`] — parallel map preserving input order, dynamic distribution
//!   via a shared atomic index (self-balancing for irregular task costs like
//!   LP solves next to sub-millisecond greedy runs);
//! * [`par_map_chunked`] — same, but hands out contiguous chunks to reduce
//!   contention for very cheap per-item work;
//! * [`num_threads`] — thread count honouring the `VMPLACE_THREADS`
//!   environment variable.
//!
//! Panics in worker closures are propagated to the caller (the scope joins
//! all threads first), so a failing experiment cannot silently produce
//! partial results.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
///
/// Defaults to the machine's available parallelism; can be overridden (e.g.
/// for reproducible timing runs) with the `VMPLACE_THREADS` environment
/// variable. Always at least 1.
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("VMPLACE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map over `items`, preserving order of results.
///
/// Work is distributed dynamically: each worker repeatedly claims the next
/// unprocessed index. This balances well when per-item cost varies by orders
/// of magnitude, which is the norm for our sweeps (LP-based algorithms next
/// to greedy ones).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, num_threads(), f)
}

/// [`par_map`] with an explicit thread count (1 runs inline on the caller).
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);

    // std::thread::scope joins every worker before returning and re-raises
    // any worker panic in the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker buffers its results and writes them back under
                // the lock in batches, so the mutex is not on the hot path.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                    if local.len() >= 32 {
                        drain(&slots, &mut local);
                    }
                }
                drain(&slots, &mut local);
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .iter_mut()
        .map(|s| s.take().expect("missing result slot"))
        .collect()
}

fn drain<R>(slots: &Mutex<&mut Vec<Option<R>>>, local: &mut Vec<(usize, R)>) {
    if local.is_empty() {
        return;
    }
    let mut guard = slots.lock().unwrap();
    for (i, r) in local.drain(..) {
        guard[i] = Some(r);
    }
}

/// Parallel map handing out contiguous chunks of `chunk` items at a time.
///
/// Lower coordination overhead than [`par_map`]; use when per-item work is
/// tiny and uniform. Result order is preserved.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = chunk.max(1);
    let threads = num_threads();
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() <= chunk {
        return items.iter().map(f).collect();
    }
    let n_chunks = items.len().div_ceil(chunk);
    let chunk_results = par_map_with_threads(
        &(0..n_chunks).collect::<Vec<_>>(),
        threads,
        |&c| -> Vec<R> {
            let lo = c * chunk;
            let hi = (lo + chunk).min(items.len());
            items[lo..hi].iter().map(&f).collect()
        },
    );
    chunk_results.into_iter().flatten().collect()
}

/// Runs `f` once per index in `0..n` in parallel, for side-effecting sweeps
/// where results are accumulated through interior mutability by the caller.
///
/// Workers claim indices straight off a shared atomic counter — no index
/// vector, no result slots, no locking.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n);
    if threads == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // std::thread::scope joins every worker before returning and re-raises
    // any worker panic in the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(par_map(&items, |&x| x).is_empty());
        assert!(par_map_chunked(&items, 8, |&x| x).is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items: Vec<u32> = (0..10).collect();
        let out = par_map_with_threads(&items, 1, |&x| x + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_matches_sequential() {
        let items: Vec<i64> = (0..997).collect(); // not a multiple of chunk
        let out = par_map_chunked(&items, 64, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u32> = (0..5000).collect();
        par_map(&items, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn irregular_workloads_balance() {
        // Mix of cheap and expensive items; just verify correctness.
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(&items, |&x| {
            if x % 17 == 0 {
                // Simulate an expensive item.
                (0..10_000u64).fold(x, |a, b| a.wrapping_add(b % 7))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 200);
        assert_eq!(out[1], 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        par_map(&items, |&x| {
            if x == 50 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn for_each_index_covers_range() {
        let hits = AtomicU64::new(0);
        par_for_each_index(1234, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1234);
    }

    #[test]
    fn for_each_index_zero_and_one() {
        par_for_each_index(0, |_| panic!("must not be called"));
        let hits = AtomicU64::new(0);
        par_for_each_index(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic]
    fn for_each_index_panic_propagates() {
        par_for_each_index(64, |i| {
            if i == 33 {
                panic!("boom");
            }
        });
    }
}
