//! A small data-parallel executor for embarrassingly parallel sweeps and
//! algorithm portfolios.
//!
//! The experiment harness evaluates tens of thousands of independent problem
//! instances, and the META* heuristics race hundreds of portfolio members on
//! a single instance; this crate provides the minimal machinery to spread
//! that work across cores without pulling in a full work-stealing runtime:
//!
//! * [`par_map`] — parallel map preserving input order, dynamic distribution
//!   via a shared atomic index (self-balancing for irregular task costs like
//!   LP solves next to sub-millisecond greedy runs);
//! * [`par_map_chunked`] — same, but hands out contiguous chunks to reduce
//!   contention for very cheap per-item work;
//! * [`portfolio_run`] — the portfolio primitive: `n` members distributed
//!   dynamically over workers that each own a reusable scratch state, with
//!   results returned in member order so callers can reduce
//!   deterministically;
//! * [`Incumbent`] — a lock-free cross-thread bound `(yield, member)` that
//!   lets portfolio members abandon work that can no longer win;
//! * [`num_threads`] / [`set_threads_override`] — thread count honouring a
//!   process-wide override (CLI `--threads`) and the `VMPLACE_THREADS`
//!   environment variable.
//!
//! All primitives carry a **nested-parallelism guard**: a worker thread that
//! itself calls into this crate runs the nested call inline on one thread,
//! so an instance-level `par_map` in the sweep harness composes with the
//! portfolio-level parallelism of the solvers without oversubscribing the
//! machine.
//!
//! Panics in worker closures are propagated to the caller (the scope joins
//! all threads first), so a failing experiment cannot silently produce
//! partial results.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = unset). Takes precedence over
/// the `VMPLACE_THREADS` environment variable.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a worker of one of the primitives in
    /// this crate; nested calls then run inline instead of spawning.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already a worker of a parallel region
/// (nested calls into this crate run inline when this is true).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Runs `f` with the nested-parallelism guard set on this thread.
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL_REGION.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Sets a process-wide thread-count override (CLI `--threads N` plumbs in
/// here). `0` clears the override, falling back to `VMPLACE_THREADS` and
/// then the machine's available parallelism.
pub fn set_threads_override(threads: usize) {
    THREADS_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Number of worker threads to use.
///
/// Resolution order: [`set_threads_override`] (CLI flag), the
/// `VMPLACE_THREADS` environment variable, then the machine's available
/// parallelism. Always at least 1.
pub fn num_threads() -> usize {
    let o = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if o >= 1 {
        return o;
    }
    if let Ok(s) = std::env::var("VMPLACE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map over `items`, preserving order of results.
///
/// Work is distributed dynamically: each worker repeatedly claims the next
/// unprocessed index. This balances well when per-item cost varies by orders
/// of magnitude, which is the norm for our sweeps (LP-based algorithms next
/// to greedy ones).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, num_threads(), f)
}

/// [`par_map`] with an explicit thread count (1 runs inline on the caller).
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(threads, items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);

    // std::thread::scope joins every worker before returning and re-raises
    // any worker panic in the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                as_worker(|| {
                    // Each worker buffers its results and writes them back
                    // under the lock in batches, so the mutex is not on the
                    // hot path.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                        if local.len() >= 32 {
                            drain(&slots, &mut local);
                        }
                    }
                    drain(&slots, &mut local);
                })
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .iter_mut()
        .map(|s| s.take().expect("missing result slot"))
        .collect()
}

/// Clamps a requested thread count to the task count and the nesting guard.
fn effective_threads(requested: usize, tasks: usize) -> usize {
    if in_parallel_region() {
        return 1;
    }
    requested.max(1).min(tasks)
}

fn drain<R>(slots: &Mutex<&mut Vec<Option<R>>>, local: &mut Vec<(usize, R)>) {
    if local.is_empty() {
        return;
    }
    let mut guard = slots.lock().unwrap();
    for (i, r) in local.drain(..) {
        guard[i] = Some(r);
    }
}

/// Parallel map handing out contiguous chunks of `chunk` items at a time.
///
/// Lower coordination overhead than [`par_map`]; use when per-item work is
/// tiny and uniform. Result order is preserved.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = chunk.max(1);
    let threads = num_threads();
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() <= chunk || in_parallel_region() {
        return items.iter().map(f).collect();
    }
    let n_chunks = items.len().div_ceil(chunk);
    let chunk_results = par_map_with_threads(
        &(0..n_chunks).collect::<Vec<_>>(),
        threads,
        |&c| -> Vec<R> {
            let lo = c * chunk;
            let hi = (lo + chunk).min(items.len());
            items[lo..hi].iter().map(&f).collect()
        },
    );
    chunk_results.into_iter().flatten().collect()
}

/// Runs `f` once per index in `0..n` in parallel, for side-effecting sweeps
/// where results are accumulated through interior mutability by the caller.
///
/// Workers claim indices straight off a shared atomic counter — no index
/// vector, no result slots, no locking.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = effective_threads(num_threads(), n);
    if threads == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // std::thread::scope joins every worker before returning and re-raises
    // any worker panic in the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                as_worker(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(i);
                })
            });
        }
    });
}

/// The portfolio primitive: runs members `0..members` across up to
/// `threads` workers, each of which owns one long-lived scratch state built
/// by `init` and reused across every member it claims.
///
/// Distribution is dynamic (atomic member counter), so expensive members —
/// e.g. a full binary search — interleave with members that abandon after a
/// couple of probes. Results come back in member order, which lets the
/// caller reduce with a deterministic tie-break no matter how the members
/// were scheduled. Runs inline on the caller when `threads == 1` or when
/// already inside a parallel region (nested-parallelism guard).
pub fn portfolio_run<S, R, I, F>(members: usize, threads: usize, init: I, run: F) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let mut states = Vec::new();
    portfolio_run_pooled(members, threads, &mut states, init, run)
}

/// As [`portfolio_run`], but worker states live in the caller: `states` is
/// topped up with `init` to the effective worker count and each worker
/// exclusively borrows one state for the run.
///
/// A long-lived caller (the allocation service's resident workers) passes
/// the same vector to every solve, so packing scratch built on the first
/// request is reused by every later one — the pooled counterpart of the
/// per-call scratch in [`portfolio_run`].
pub fn portfolio_run_pooled<S, R, I, F>(
    members: usize,
    threads: usize,
    states: &mut Vec<S>,
    init: I,
    run: F,
) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> R + Sync,
{
    if members == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, members);
    while states.len() < threads {
        states.push(init());
    }
    if threads == 1 {
        let state = &mut states[0];
        return (0..members).map(|i| run(i, state)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(members);
    slots.resize_with(members, || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let next = &next;
        let slots = &slots;
        let run = &run;
        for state in states.iter_mut().take(threads) {
            scope.spawn(move || {
                as_worker(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= members {
                            break;
                        }
                        local.push((i, run(i, state)));
                        // Portfolio members are coarse; publish eagerly so
                        // the buffer never grows large.
                        if local.len() >= 8 {
                            drain(slots, &mut local);
                        }
                    }
                    drain(slots, &mut local);
                })
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .iter_mut()
        .map(|s| s.take().expect("missing member slot"))
        .collect()
}

/// Number of low bits reserved for the member index in the packed
/// incumbent word.
const INCUMBENT_INDEX_BITS: u32 = 32;

/// Quantisation grid for published yields: yields live on the binary-search
/// grid (dyadic rationals coarser than 2⁻²⁰ for any resolution ≥ 1e-6), so
/// flooring onto this grid is exact for every value a search can publish,
/// and a strict lower bound otherwise.
const INCUMBENT_QUANT: f64 = (1u64 << 20) as f64;

/// A lock-free, monotone cross-thread incumbent: the best `(yield, member)`
/// pair published so far, ordered by yield descending then member index
/// ascending.
///
/// Both fields are packed into one `AtomicU64` (`quantised yield ≪ 32 |
/// (u32::MAX − member)`), so a single `fetch_max` both publishes and keeps
/// the pair consistent — no locks on the probe hot path. The decoded yield
/// is a *lower bound* on what the publishing member will finally achieve
/// (members only ever publish non-decreasing values), which is exactly what
/// safe pruning needs.
#[derive(Debug, Default)]
pub struct Incumbent {
    packed: AtomicU64,
}

impl Incumbent {
    /// An empty incumbent (nothing published, nothing dominated).
    pub fn new() -> Incumbent {
        Incumbent {
            packed: AtomicU64::new(0),
        }
    }

    fn encode(yield_value: f64, member: usize) -> u64 {
        let q = (yield_value.clamp(0.0, 1.0) * INCUMBENT_QUANT).floor() as u64;
        let idx = u32::MAX - (member.min(u32::MAX as usize - 1) as u32);
        (q << INCUMBENT_INDEX_BITS) | idx as u64
    }

    /// Publishes a lower bound `yield_value` achieved by `member`. Keeps the
    /// best pair: higher yield wins; equal yields keep the lower member
    /// index.
    pub fn publish(&self, yield_value: f64, member: usize) {
        self.packed
            .fetch_max(Self::encode(yield_value, member), Ordering::AcqRel);
    }

    /// The current best `(yield lower bound, member index)`, if anything has
    /// been published.
    pub fn snapshot(&self) -> Option<(f64, usize)> {
        let raw = self.packed.load(Ordering::Acquire);
        if raw == 0 {
            return None;
        }
        let q = raw >> INCUMBENT_INDEX_BITS;
        let idx = u32::MAX - (raw & (u32::MAX as u64)) as u32;
        Some((q as f64 / INCUMBENT_QUANT, idx as usize))
    }

    /// Whether the incumbent already *strictly* beats anything `member`
    /// could still achieve, given `upper` (the member's current search
    /// upper bracket).
    ///
    /// True when the published bound exceeds `upper`, or ties it while the
    /// publisher has a smaller member index (equal yields resolve to the
    /// lower index, so the tie is already lost). Because published values
    /// are lower bounds of final yields, a `true` here can never prune the
    /// eventual winner — pruning is result-invariant by construction.
    pub fn dominates(&self, upper: f64, member: usize) -> bool {
        match self.snapshot() {
            None => false,
            Some((bound, holder)) => upper < bound || (upper <= bound && holder < member),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as RawAtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(par_map(&items, |&x| x).is_empty());
        assert!(par_map_chunked(&items, 8, |&x| x).is_empty());
        let none: Vec<u32> = portfolio_run(0, 4, || (), |i, _| i as u32);
        assert!(none.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items: Vec<u32> = (0..10).collect();
        let out = par_map_with_threads(&items, 1, |&x| x + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_matches_sequential() {
        let items: Vec<i64> = (0..997).collect(); // not a multiple of chunk
        let out = par_map_chunked(&items, 64, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = RawAtomicU64::new(0);
        let items: Vec<u32> = (0..5000).collect();
        par_map(&items, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn irregular_workloads_balance() {
        // Mix of cheap and expensive items; just verify correctness.
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(&items, |&x| {
            if x % 17 == 0 {
                // Simulate an expensive item.
                (0..10_000u64).fold(x, |a, b| a.wrapping_add(b % 7))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 200);
        assert_eq!(out[1], 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        par_map(&items, |&x| {
            if x == 50 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn for_each_index_covers_range() {
        let hits = RawAtomicU64::new(0);
        par_for_each_index(1234, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1234);
    }

    #[test]
    fn for_each_index_zero_and_one() {
        par_for_each_index(0, |_| panic!("must not be called"));
        let hits = RawAtomicU64::new(0);
        par_for_each_index(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic]
    fn for_each_index_panic_propagates() {
        par_for_each_index(64, |i| {
            if i == 33 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn portfolio_returns_member_order() {
        for threads in [1, 2, 4] {
            let out = portfolio_run(
                97,
                threads,
                || 0u32,
                |i, calls| {
                    *calls += 1;
                    i * 3
                },
            );
            assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pooled_states_survive_across_runs() {
        // Two consecutive runs share the same state vector; counters keep
        // growing, proving the second run reused the first run's states.
        let mut states: Vec<u64> = Vec::new();
        for round in 1..=2u64 {
            let out = portfolio_run_pooled(
                10,
                2,
                &mut states,
                || 0u64,
                |_, s| {
                    *s += 1;
                    *s
                },
            );
            assert_eq!(out.len(), 10);
            let total: u64 = states.iter().sum();
            assert_eq!(total, 10 * round, "states reset between runs");
        }
        assert_eq!(states.len(), 2);
    }

    #[test]
    fn pooled_single_thread_uses_first_state() {
        let mut states: Vec<u32> = vec![100];
        let out = portfolio_run_pooled(3, 1, &mut states, || 0, |i, s| *s + i as u32);
        assert_eq!(out, vec![100, 101, 102]);
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn portfolio_reuses_worker_state() {
        // Every member increments its worker's counter and reports the
        // pre-increment value; total calls must equal the member count and
        // at least one worker must see a reused (non-fresh) state when
        // members far exceed threads.
        let out = portfolio_run(
            64,
            2,
            || 0usize,
            |_, state| {
                *state += 1;
                *state
            },
        );
        assert_eq!(out.len(), 64);
        assert!(out.iter().any(|&c| c > 1), "scratch never reused");
    }

    #[test]
    fn nested_calls_run_inline() {
        // A par_map worker calling portfolio_run must not deadlock or
        // oversubscribe — it runs inline and still produces correct results.
        let items: Vec<u32> = (0..8).collect();
        let out = par_map_with_threads(&items, 4, |&x| {
            assert!(in_parallel_region());
            let inner = portfolio_run(5, 4, || (), |i, _| i as u32 + x);
            inner.iter().sum::<u32>()
        });
        assert_eq!(out, items.iter().map(|x| 10 + 5 * x).collect::<Vec<_>>());
        assert!(!in_parallel_region());
    }

    #[test]
    fn threads_override_wins() {
        set_threads_override(3);
        assert_eq!(num_threads(), 3);
        set_threads_override(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn incumbent_orders_by_yield_then_index() {
        let inc = Incumbent::new();
        assert_eq!(inc.snapshot(), None);
        assert!(!inc.dominates(0.0, 5));

        inc.publish(0.5, 7);
        assert_eq!(inc.snapshot(), Some((0.5, 7)));
        // Strictly lower bracket is dominated for everyone.
        assert!(inc.dominates(0.25, 3));
        // Equal bracket: only higher indices are dominated.
        assert!(inc.dominates(0.5, 8));
        assert!(!inc.dominates(0.5, 7));
        assert!(!inc.dominates(0.5, 2));
        assert!(!inc.dominates(0.75, 100));

        // A better yield replaces; an equal yield keeps the lower index.
        inc.publish(0.5, 2);
        assert_eq!(inc.snapshot(), Some((0.5, 2)));
        inc.publish(0.25, 0); // worse: ignored
        assert_eq!(inc.snapshot(), Some((0.5, 2)));
        inc.publish(1.0, 9);
        assert_eq!(inc.snapshot(), Some((1.0, 9)));
        assert!(inc.dominates(1.0, 10));
        assert!(!inc.dominates(1.0, 4));
    }

    #[test]
    fn incumbent_is_exact_on_the_search_grid() {
        // Dyadic grid points (the only values a binary search publishes)
        // round-trip exactly through the packed encoding.
        let inc = Incumbent::new();
        for k in 0..=14u32 {
            let y = 1.0 / (1u64 << k) as f64;
            inc.publish(y, k as usize);
            let (bound, _) = inc.snapshot().unwrap();
            assert!(bound >= y - 1e-12, "grid value {y} lost precision");
        }
    }

    #[test]
    fn incumbent_zero_yield_is_visible() {
        let inc = Incumbent::new();
        inc.publish(0.0, 3);
        assert_eq!(inc.snapshot(), Some((0.0, 3)));
        // Nothing has a bracket below 0, so only ties with lower indices
        // dominate.
        assert!(inc.dominates(0.0, 5));
        assert!(!inc.dominates(0.0, 1));
    }
}
