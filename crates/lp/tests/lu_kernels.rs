//! Differential property suites for the factorisation hot-path kernels.
//!
//! The PR 9 rework of the pricing/factorisation path rests on three exact
//! equivalences, each checked here against randomly generated inputs:
//!
//! * the batched multi-right-hand-side solves produce bit-for-bit the same
//!   lanes as the corresponding sequential solves;
//! * the sparse (reachability-walk) transpose solve matches the dense
//!   transpose sweep bit-for-bit and reports a nonzero pattern covering
//!   every nonzero of the result;
//! * warm partial refactorisation is unobservable: replaying a randomised
//!   branch-&-bound-style bound-tightening sequence with
//!   [`SimplexOptions::partial_refactor`] on and off yields the same
//!   statuses, objectives, iteration counts, and LU pivot sequences.

use proptest::prelude::*;
use vmplace_lp::lu::{SolveScratch, SparseLu};
use vmplace_lp::{LinearProgram, LpStatus, RowSense, SimplexOptions};

const BATCH: usize = 4;

/// Splitmix-style deterministic stream so every case is reproducible from
/// the proptest-drawn seed alone.
fn stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random sparse, diagonally dominant (hence nonsingular) matrix stored
/// densely for trivial column extraction.
#[allow(clippy::needless_range_loop)] // `a[j][j]` / `a[i][j]` mirror matrix subscripts
fn rand_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rnd = stream(seed);
    let mut a = vec![vec![0.0; n]; n];
    for j in 0..n {
        a[j][j] = 3.0 + rnd();
        let extras = 1 + (rnd() * 3.0) as usize;
        for _ in 0..extras {
            let i = (rnd() * n as f64) as usize % n;
            a[i][j] += rnd() - 0.5;
        }
    }
    a
}

fn column_of(a: &[Vec<f64>]) -> impl FnMut(usize, &mut Vec<(usize, f64)>) + '_ {
    move |j, buf| {
        for (i, row) in a.iter().enumerate() {
            if row[j] != 0.0 {
                buf.push((i, row[j]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_solves_match_sequential_bitwise((n, seed) in (4usize..28, 0u64..1 << 60)) {
        let a = rand_matrix(n, seed);
        let lu = SparseLu::factorize(n, column_of(&a)).expect("nonsingular");
        let mut rnd = stream(seed ^ 0xabcd);
        let rhs: Vec<Vec<f64>> = (0..BATCH)
            .map(|_| (0..n).map(|_| rnd() * 8.0 - 4.0).collect())
            .collect();

        // Forward solves.
        let mut packed = vec![[0.0f64; BATCH]; n];
        let mut packed_x = vec![[0.0f64; BATCH]; n];
        for (i, row) in packed.iter_mut().enumerate() {
            for (lane, slot) in row.iter_mut().enumerate() {
                *slot = rhs[lane][i];
            }
        }
        lu.solve_batch(&mut packed, &mut packed_x);
        let mut b = vec![0.0; n];
        let mut x = vec![0.0; n];
        for lane in 0..BATCH {
            b.copy_from_slice(&rhs[lane]);
            lu.solve(&mut b, &mut x);
            for i in 0..n {
                prop_assert_eq!(x[i].to_bits(), packed_x[i][lane].to_bits());
            }
        }

        // Transpose solves.
        for (i, row) in packed.iter_mut().enumerate() {
            for (lane, slot) in row.iter_mut().enumerate() {
                *slot = rhs[lane][i];
            }
        }
        lu.solve_transpose_batch(&mut packed, &mut packed_x);
        for lane in 0..BATCH {
            b.copy_from_slice(&rhs[lane]);
            lu.solve_transpose(&mut b, &mut x);
            for i in 0..n {
                prop_assert_eq!(x[i].to_bits(), packed_x[i][lane].to_bits());
            }
        }
    }

    #[test]
    fn sparse_transpose_matches_dense_bitwise((n, seed, nnz) in (4usize..28, 0u64..1 << 60, 1usize..4)) {
        let a = rand_matrix(n, seed);
        let lu = SparseLu::factorize(n, column_of(&a)).expect("nonsingular");
        let mut rnd = stream(seed ^ 0x5eed);
        let mut pattern: Vec<usize> = Vec::new();
        for _ in 0..nnz {
            let k = (rnd() * n as f64) as usize % n;
            if !pattern.contains(&k) {
                pattern.push(k);
            }
        }
        let weights: Vec<f64> = pattern.iter().map(|_| rnd() * 4.0 - 2.0).collect();

        let mut dense_c = vec![0.0; n];
        let mut dense_y = vec![0.0; n];
        for (&k, &w) in pattern.iter().zip(&weights) {
            dense_c[k] = w;
        }
        lu.solve_transpose(&mut dense_c, &mut dense_y);

        let mut c = vec![0.0; n];
        let mut y = vec![0.0; n];
        let mut y_pattern = Vec::new();
        let mut scratch = SolveScratch::default();
        for (&k, &w) in pattern.iter().zip(&weights) {
            c[k] = w;
        }
        lu.solve_transpose_sparse(&mut c, &pattern, &mut y, &mut y_pattern, &mut scratch);

        // `c` is restored to zero so the caller can reuse it as scratch.
        for (i, &v) in c.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), 0.0f64.to_bits(), "c[{}] not restored", i);
        }
        for i in 0..n {
            // Identical bits everywhere; entries outside the reported
            // pattern must be exact zeros.
            prop_assert_eq!(y[i].to_bits(), dense_y[i].to_bits(), "y[{}] differs", i);
            if y[i] != 0.0 {
                prop_assert!(y_pattern.contains(&i), "nonzero y[{}] missing from pattern", i);
            }
        }
    }

    #[test]
    fn warm_partial_refactorisation_is_unobservable_in_branch_replays(
        (nv, seed) in (3usize..7, 0u64..1 << 60),
    ) {
        let mut rnd = stream(seed);
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let vars: Vec<_> = (0..nv).map(|_| lp.add_var(0.0, 3.0, rnd() * 2.0)).collect();
        let rows = 2 + (rnd() * 3.0) as usize;
        for _ in 0..rows {
            let coeffs: Vec<_> = vars
                .iter()
                .filter_map(|&v| if rnd() < 0.7 { Some((v, rnd() * 2.0)) } else { None })
                .collect();
            if coeffs.is_empty() {
                continue;
            }
            lp.add_row(RowSense::Le, 1.0 + rnd() * 3.0 * nv as f64, &coeffs);
        }

        let warm_opts = SimplexOptions {
            partial_refactor: true,
            ..SimplexOptions::default()
        };
        let cold_opts = SimplexOptions {
            partial_refactor: false,
            ..SimplexOptions::default()
        };
        let mut warm = lp.solver(warm_opts);
        let mut cold = lp.solver(cold_opts);

        let mut lower = vec![0.0; nv];
        let mut upper = vec![3.0; nv];
        let mut snaps = Vec::new();
        for step in 0..10 {
            let w = warm.solve_from(snaps.last(), &lower, &upper);
            let c = cold.solve_from(snaps.last(), &lower, &upper);
            prop_assert_eq!(w.status, c.status, "status diverged at step {}", step);
            prop_assert_eq!(w.iterations, c.iterations, "iterations diverged at step {}", step);
            if w.status == LpStatus::Optimal {
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-7,
                    "objective diverged at step {}: {} vs {}",
                    step,
                    w.objective,
                    c.objective
                );
                // The factorisations themselves must agree: same basis,
                // same pivot order.
                prop_assert_eq!(warm.lu_pivot_rows(), cold.lu_pivot_rows());
                snaps.push(warm.snapshot());
            } else {
                snaps.pop();
                if snaps.is_empty() {
                    break;
                }
            }
            // Branch: tighten a random variable's box like B&B would.
            let v = (rnd() * nv as f64) as usize % nv;
            if rnd() < 0.5 {
                upper[v] = (upper[v] - 1.0).max(0.0);
            } else {
                lower[v] = (lower[v] + 1.0).min(upper[v]);
            }
        }
    }
}
