//! The paper's MILP formulation (§3.1, Equations 1–7) built from a
//! [`ProblemInstance`], with presolve.
//!
//! Variables: `e_jh ∈ {0,1}` (relaxed to `[0,1]`) places service `j` on node
//! `h`; `y_jh ∈ [0,1]` is its yield there; `Y` is the minimum yield.
//!
//! ```text
//! max Y
//! (3) ∀j          Σ_h e_jh = 1
//! (4) ∀j,h        y_jh ≤ e_jh
//! (5) ∀j,h,d      e_jh·rᵉ_jd + y_jh·nᵉ_jd ≤ cᵉ_hd
//! (6) ∀h,d        Σ_j (e_jh·rᵃ_jd + y_jh·nᵃ_jd) ≤ cᵃ_hd
//! (7) ∀j          Σ_h y_jh ≥ Y
//! ```
//!
//! Presolve (exact, loss-free):
//! * pairs `(j,h)` whose rigid requirements exceed a capacity of `h` in any
//!   dimension get no variables at all (`e_jh = y_jh = 0` is forced);
//! * elementary rows (5) with `rᵉ_jd + nᵉ_jd ≤ cᵉ_hd` can never bind for
//!   `e, y ∈ [0,1]` and are dropped — on the paper's workloads this removes
//!   the bulk of the rows (memory is poolable, so its elementary rows are
//!   all redundant);
//! * aggregate rows (6) are dropped when even the sum of *all* services'
//!   `rᵃ + nᵃ` fits.

use crate::milp::{solve_milp, MilpOptions, MilpResult, MilpSolver, MilpStatus};
use crate::problem::{LinearProgram, RowSense, VarId};
use crate::simplex::{LpStatus, SimplexOptions};
use vmplace_model::{Placement, ProblemInstance};

/// The LP/MILP encoding of an instance, with variable maps.
pub struct YieldLp {
    lp: LinearProgram,
    e_vars: Vec<Vec<Option<VarId>>>,
    y_vars: Vec<Vec<Option<VarId>>>,
    y_min: VarId,
    num_nodes: usize,
}

/// Solution of the rational relaxation.
#[derive(Clone, Debug)]
pub struct RelaxedSolution {
    /// Optimal relaxed objective — an upper bound on the achievable
    /// minimum yield of any (integral) placement.
    pub objective: f64,
    /// Fractional placement matrix `e[j][h]` (rows sum to 1 over feasible
    /// nodes; structurally impossible pairs are exactly 0).
    pub e: Vec<Vec<f64>>,
    /// Fractional yields `y[j][h]`.
    pub y: Vec<Vec<f64>>,
    /// Simplex iterations used.
    pub iterations: usize,
}

impl YieldLp {
    /// Builds the MILP for `instance`. Returns `None` when some service has
    /// no node that can satisfy its rigid requirements (the instance is
    /// trivially infeasible).
    pub fn build(instance: &ProblemInstance) -> Option<YieldLp> {
        let h_count = instance.num_nodes();
        let j_count = instance.num_services();
        let dims = instance.dims();
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let y_min = lp.add_var(0.0, 1.0, 1.0);

        let mut e_vars = vec![vec![None; h_count]; j_count];
        let mut y_vars = vec![vec![None; h_count]; j_count];

        for j in 0..j_count {
            let mut any = false;
            for h in 0..h_count {
                if instance.service_fits_empty_node(j, h) {
                    e_vars[j][h] = Some(lp.add_var(0.0, 1.0, 0.0));
                    y_vars[j][h] = Some(lp.add_var(0.0, 1.0, 0.0));
                    any = true;
                }
            }
            if !any {
                return None;
            }
        }

        // (3) placement rows and (7) yield rows.
        for j in 0..j_count {
            let placed: Vec<(VarId, f64)> = (0..h_count)
                .filter_map(|h| e_vars[j][h].map(|v| (v, 1.0)))
                .collect();
            lp.add_row(RowSense::Eq, 1.0, &placed);
            let mut yrow: Vec<(VarId, f64)> = (0..h_count)
                .filter_map(|h| y_vars[j][h].map(|v| (v, 1.0)))
                .collect();
            yrow.push((y_min, -1.0));
            lp.add_row(RowSense::Ge, 0.0, &yrow);
        }

        // (4) linking and (5) elementary rows.
        for j in 0..j_count {
            let s = &instance.services()[j];
            for h in 0..h_count {
                let (Some(e), Some(y)) = (e_vars[j][h], y_vars[j][h]) else {
                    continue;
                };
                lp.add_row(RowSense::Le, 0.0, &[(y, 1.0), (e, -1.0)]);
                let node = &instance.nodes()[h];
                for d in 0..dims {
                    let re = s.req_elem[d];
                    let ne = s.need_elem[d];
                    let ce = node.elementary[d];
                    if re + ne <= ce {
                        continue; // can never bind for e, y ≤ 1
                    }
                    lp.add_row(RowSense::Le, ce, &[(e, re), (y, ne)]);
                }
            }
        }

        // (6) aggregate rows.
        for h in 0..h_count {
            let node = &instance.nodes()[h];
            for d in 0..dims {
                let worst: f64 = (0..j_count)
                    .filter(|&j| e_vars[j][h].is_some())
                    .map(|j| {
                        let s = &instance.services()[j];
                        s.req_agg[d] + s.need_agg[d]
                    })
                    .sum();
                if worst <= node.aggregate[d] {
                    continue;
                }
                let mut row: Vec<(VarId, f64)> = Vec::new();
                for j in 0..j_count {
                    let (Some(e), Some(y)) = (e_vars[j][h], y_vars[j][h]) else {
                        continue;
                    };
                    let s = &instance.services()[j];
                    if s.req_agg[d] != 0.0 {
                        row.push((e, s.req_agg[d]));
                    }
                    if s.need_agg[d] != 0.0 {
                        row.push((y, s.need_agg[d]));
                    }
                }
                lp.add_row(RowSense::Le, node.aggregate[d], &row);
            }
        }

        Some(YieldLp {
            lp,
            e_vars,
            y_vars,
            y_min,
            num_nodes: h_count,
        })
    }

    /// The underlying LP (inspection / custom solves).
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// All placement indicator variables (the MILP's integer set).
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.e_vars
            .iter()
            .flat_map(|row| row.iter().filter_map(|v| *v))
            .collect()
    }

    /// Solves the rational relaxation (§3.2), yielding the fractional
    /// placements used by the RRND/RRNZ rounding algorithms and an upper
    /// bound on the optimal minimum yield.
    pub fn solve_relaxed(&self, opts: &SimplexOptions) -> Option<RelaxedSolution> {
        let sol = self.lp.solve_with(opts);
        if sol.status != LpStatus::Optimal {
            return None;
        }
        let j_count = self.e_vars.len();
        let mut e = vec![vec![0.0; self.num_nodes]; j_count];
        let mut y = vec![vec![0.0; self.num_nodes]; j_count];
        for j in 0..j_count {
            for h in 0..self.num_nodes {
                if let Some(v) = self.e_vars[j][h] {
                    e[j][h] = sol.values[v].clamp(0.0, 1.0);
                }
                if let Some(v) = self.y_vars[j][h] {
                    y[j][h] = sol.values[v].clamp(0.0, 1.0);
                }
            }
        }
        Some(RelaxedSolution {
            objective: sol.values[self.y_min],
            e,
            y,
            iterations: sol.iterations,
        })
    }

    /// Solves the MILP exactly by warm-started branch & bound (practical
    /// for small instances only). Returns the optimal placement and its
    /// minimum yield.
    pub fn solve_exact(&self, opts: &MilpOptions) -> Option<(Placement, f64)> {
        self.decode_milp(self.solve_exact_result(opts))
    }

    /// Runs the exact branch & bound and returns the raw [`MilpResult`],
    /// exposing solver-effort telemetry (node count, total simplex
    /// iterations) alongside the solution values.
    pub fn solve_exact_result(&self, opts: &MilpOptions) -> MilpResult {
        solve_milp(&self.lp, &self.integer_vars(), opts)
    }

    /// Builds a persistent [`MilpSolver`] for this model: a long-lived
    /// service keeps it alive across re-solves of the same instance
    /// (tightened budgets, repeated queries) so the simplex state is
    /// assembled only once.
    pub fn exact_solver(&self, opts: MilpOptions) -> MilpSolver {
        MilpSolver::new(&self.lp, &self.integer_vars(), opts)
    }

    /// Decodes a [`MilpResult`] of this model into a placement + yield.
    ///
    /// Accepts proven optima and — for callers that opted into anytime
    /// semantics by setting a wall-clock budget — `TimedOut` incumbents
    /// (feasible placements without an optimality proof). A `NodeLimit`
    /// result still decodes to `None`: the node budget is a safety net,
    /// and experiments treat `solve_exact` results as ground truth, so a
    /// silently suboptimal "exact" answer would be worse than no answer.
    pub fn decode_milp(&self, result: MilpResult) -> Option<(Placement, f64)> {
        if !matches!(result.status, MilpStatus::Optimal | MilpStatus::TimedOut) {
            return None;
        }
        let values = result.values?;
        let j_count = self.e_vars.len();
        let mut placement = Placement::empty(j_count);
        for j in 0..j_count {
            for h in 0..self.num_nodes {
                if let Some(v) = self.e_vars[j][h] {
                    if values[v] > 0.5 {
                        placement.assign(j, h);
                        break;
                    }
                }
            }
        }
        if !placement.is_complete() {
            return None;
        }
        Some((placement, result.objective.unwrap_or(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmplace_model::{evaluate_placement, Node, ProblemInstance, Service};

    /// Figure 1 of the paper.
    fn figure1() -> ProblemInstance {
        let nodes = vec![Node::multicore(4, 0.8, 1.0), Node::multicore(2, 1.0, 0.5)];
        let services = vec![Service::new(
            vec![0.5, 0.5],
            vec![1.0, 0.5],
            vec![0.5, 0.0],
            vec![1.0, 0.0],
        )];
        ProblemInstance::new(nodes, services).unwrap()
    }

    #[test]
    fn figure1_exact_picks_node_b() {
        let ylp = YieldLp::build(&figure1()).unwrap();
        let (placement, obj) = ylp.solve_exact(&MilpOptions::default()).unwrap();
        assert_eq!(placement.node_of(0), Some(1));
        assert!((obj - 1.0).abs() < 1e-6, "objective {obj}");
    }

    #[test]
    fn figure1_relaxation_bounds_exact() {
        let inst = figure1();
        let ylp = YieldLp::build(&inst).unwrap();
        let relaxed = ylp.solve_relaxed(&SimplexOptions::default()).unwrap();
        assert!(relaxed.objective >= 1.0 - 1e-6);
        // e rows sum to 1.
        let sum: f64 = relaxed.e[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn milp_objective_matches_waterfill_evaluation() {
        // Two nodes, three services with fluid CPU needs: the MILP's Y must
        // equal the shared evaluator's min yield for its own placement.
        let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.4, 0.6)];
        let mk = |req: f64, need: f64, mem: f64| {
            Service::new(
                vec![req / 2.0, mem],
                vec![req, mem],
                vec![need / 2.0, 0.0],
                vec![need, 0.0],
            )
        };
        let services = vec![mk(0.2, 0.6, 0.3), mk(0.1, 0.5, 0.4), mk(0.15, 0.7, 0.2)];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let ylp = YieldLp::build(&inst).unwrap();
        let (placement, obj) = ylp.solve_exact(&MilpOptions::default()).unwrap();
        let sol = evaluate_placement(&inst, &placement).unwrap();
        assert!(
            (sol.min_yield - obj).abs() < 1e-5,
            "water-fill {} vs MILP {}",
            sol.min_yield,
            obj
        );
    }

    #[test]
    fn relaxation_upper_bounds_exact_solution() {
        let nodes = vec![Node::multicore(2, 0.5, 0.5), Node::multicore(2, 0.3, 0.4)];
        let mk = |req: f64, need: f64, mem: f64| {
            Service::new(
                vec![req / 2.0, mem],
                vec![req, mem],
                vec![need / 2.0, 0.0],
                vec![need, 0.0],
            )
        };
        let services = vec![mk(0.2, 0.5, 0.2), mk(0.1, 0.4, 0.25), mk(0.2, 0.6, 0.15)];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        let ylp = YieldLp::build(&inst).unwrap();
        let relaxed = ylp.solve_relaxed(&SimplexOptions::default()).unwrap();
        let (_, exact) = ylp.solve_exact(&MilpOptions::default()).unwrap();
        assert!(
            relaxed.objective >= exact - 1e-6,
            "relaxed {} < exact {}",
            relaxed.objective,
            exact
        );
    }

    #[test]
    fn impossible_service_detected() {
        // Service needs more memory than any node offers.
        let nodes = vec![Node::multicore(2, 0.5, 0.3)];
        let services = vec![Service::rigid(vec![0.1, 0.5], vec![0.1, 0.5])];
        let inst = ProblemInstance::new(nodes, services).unwrap();
        assert!(YieldLp::build(&inst).is_none());
    }

    #[test]
    fn infeasible_packing_detected_by_milp() {
        // Two services each needing 0.6 memory, one node with 1.0 total but
        // they also both rigidly need 0.7 CPU on a 1.0-CPU node.
        let nodes = vec![Node::multicore(1, 1.0, 1.0)];
        let svc = Service::rigid(vec![0.7, 0.6], vec![0.7, 0.6]);
        let inst = ProblemInstance::new(nodes, vec![svc.clone(), svc]).unwrap();
        let ylp = YieldLp::build(&inst).unwrap();
        assert!(ylp.solve_exact(&MilpOptions::default()).is_none());
        // The relaxation is also infeasible (single node, both must be there).
        assert!(ylp.solve_relaxed(&SimplexOptions::default()).is_none());
    }

    #[test]
    fn presolve_drops_redundant_elementary_rows() {
        // Memory is poolable (elementary = aggregate) and small, so all
        // memory elementary rows must be dropped. Count rows to confirm the
        // encoding stays lean.
        let inst = figure1();
        let ylp = YieldLp::build(&inst).unwrap();
        // 1 service, 2 nodes: rows = 1 placement + 1 yield + 2 linking +
        // elementary CPU rows where 0.5+0.5 > cᵉ (node A: 1.0 > 0.8 → kept;
        // node B: 1.0 > 1.0 → dropped) + aggregate rows where worst-case
        // exceeds capacity (CPU node A: 2.0 ≤ 3.2 dropped, node B: 2.0 ≤ 2.0
        // dropped; memory: 0.5 ≤ 1.0 and 0.5 ≤ 0.5 dropped).
        assert_eq!(ylp.lp().num_rows(), 1 + 1 + 2 + 1);
    }
}
