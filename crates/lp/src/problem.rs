//! LP model builder.

use crate::simplex::{solve_simplex, LpSolution, SimplexOptions, SimplexSolver};

/// Identifier of a decision variable (index into the model's columns).
pub type VarId = usize;

/// Sense of a linear constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowSense {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A linear program with bounded variables:
///
/// ```text
/// max/min  c·x
/// s.t.     a_i·x {≤,≥,=} b_i   for every row i
///          l ≤ x ≤ u
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    maximize: bool,
    pub(crate) obj: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
    pub(crate) sense: Vec<RowSense>,
    pub(crate) rhs: Vec<f64>,
}

impl LinearProgram {
    /// An empty model (minimisation by default).
    pub fn new() -> Self {
        LinearProgram::default()
    }

    /// Sets the optimisation direction.
    pub fn set_maximize(&mut self, maximize: bool) {
        self.maximize = maximize;
    }

    /// Whether the model maximises its objective.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Adds a variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`. At least one bound must be finite.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        assert!(
            lower.is_finite() || upper.is_finite(),
            "free variables are not supported"
        );
        assert!(lower <= upper, "empty variable domain [{lower}, {upper}]");
        self.obj.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        self.cols.push(Vec::new());
        self.obj.len() - 1
    }

    /// Adds a constraint row. `coeffs` lists `(variable, coefficient)`
    /// pairs; duplicates are summed.
    pub fn add_row(&mut self, sense: RowSense, rhs: f64, coeffs: &[(VarId, f64)]) -> usize {
        let row = self.rhs.len();
        self.sense.push(sense);
        self.rhs.push(rhs);
        for &(v, c) in coeffs {
            assert!(v < self.cols.len(), "unknown variable {v}");
            if c != 0.0 {
                self.cols[v].push((row, c));
            }
        }
        row
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Solves the LP with default options.
    pub fn solve(&self) -> LpSolution {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the LP with explicit simplex options.
    pub fn solve_with(&self, options: &SimplexOptions) -> LpSolution {
        solve_simplex(self, &self.lower, &self.upper, options)
    }

    /// Solves the LP with per-variable bound overrides (used by branch &
    /// bound to fix / tighten integer variables without copying the matrix).
    ///
    /// Each call assembles a fresh solver; callers solving many related
    /// bound variations should use [`LinearProgram::solver`] and
    /// [`SimplexSolver::solve_from`] instead.
    pub fn solve_with_bounds(
        &self,
        lower: &[f64],
        upper: &[f64],
        options: &SimplexOptions,
    ) -> LpSolution {
        assert_eq!(lower.len(), self.num_vars());
        assert_eq!(upper.len(), self.num_vars());
        solve_simplex(self, lower, upper, options)
    }

    /// Creates a persistent [`SimplexSolver`] for this model: the matrix,
    /// slack/artificial columns, and scratch buffers are assembled once and
    /// reused across many solves with different bound overrides (and
    /// optional warm-start bases).
    pub fn solver(&self, options: SimplexOptions) -> SimplexSolver {
        SimplexSolver::new(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_bookkeeping() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, f64::INFINITY, 2.0);
        lp.add_row(RowSense::Le, 5.0, &[(x, 1.0), (y, 1.0)]);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_rows(), 1);
    }

    #[test]
    #[should_panic]
    fn free_variables_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_domain_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0, 0.0, 0.0);
    }
}
