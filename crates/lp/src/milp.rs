//! Mixed-integer linear programming by depth-first branch & bound.
//!
//! Suited to the *small* exact instances the paper solves with its MILP
//! formulation (§3.2): the LP relaxation at every node is solved from
//! scratch with the bounded-variable simplex, nodes branch on the most
//! fractional integer variable, and subtrees are pruned against the
//! incumbent. A node budget keeps worst-case instances from running away.

use crate::problem::LinearProgram;
use crate::simplex::{LpStatus, SimplexOptions};

/// Options for the branch & bound search.
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Integrality tolerance: `|x − round(x)| ≤ int_tol` counts as integral.
    pub int_tol: f64,
    /// Absolute optimality gap at which a node is pruned.
    pub gap_tol: f64,
    /// Options for the node LP solves.
    pub simplex: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 100_000,
            int_tol: 1e-6,
            gap_tol: 1e-9,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Status of a branch & bound run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal integer solution.
    Optimal,
    /// No integer-feasible solution exists.
    Infeasible,
    /// Node budget exhausted; `best` (if any) is a feasible incumbent
    /// without optimality proof.
    NodeLimit,
    /// The LP relaxation failed numerically or was unbounded.
    Error,
}

/// Result of a branch & bound run.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Run status.
    pub status: MilpStatus,
    /// Best integer-feasible objective (user orientation), if found.
    pub objective: Option<f64>,
    /// Variable values of the incumbent, if found.
    pub values: Option<Vec<f64>>,
    /// Explored node count.
    pub nodes: usize,
}

/// Solves `lp` requiring every variable in `int_vars` to be integral.
pub fn solve_milp(lp: &LinearProgram, int_vars: &[usize], opts: &MilpOptions) -> MilpResult {
    let n = lp.num_vars();
    let maximize = lp.is_maximize();
    let mut best_obj: Option<f64> = None;
    let mut best_values: Option<Vec<f64>> = None;
    let mut nodes = 0usize;

    // DFS stack of bound overrides.
    let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(lp.lower.clone(), lp.upper.clone())];

    let better = |candidate: f64, incumbent: Option<f64>| -> bool {
        match incumbent {
            None => true,
            Some(b) => {
                if maximize {
                    candidate > b + opts.gap_tol
                } else {
                    candidate < b - opts.gap_tol
                }
            }
        }
    };

    while let Some((lo, hi)) = stack.pop() {
        if nodes >= opts.max_nodes {
            return MilpResult {
                status: MilpStatus::NodeLimit,
                objective: best_obj,
                values: best_values,
                nodes,
            };
        }
        nodes += 1;

        let sol = lp.solve_with_bounds(&lo, &hi, &opts.simplex);
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Optimal => {}
            LpStatus::Unbounded | LpStatus::IterationLimit | LpStatus::Numerical => {
                return MilpResult {
                    status: MilpStatus::Error,
                    objective: best_obj,
                    values: best_values,
                    nodes,
                };
            }
        }

        // Bound-based pruning.
        if let Some(b) = best_obj {
            let prune = if maximize {
                sol.objective <= b + opts.gap_tol
            } else {
                sol.objective >= b - opts.gap_tol
            };
            if prune {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64, f64)> = None; // (var, value, frac-dist)
        for &v in int_vars {
            debug_assert!(v < n);
            let x = sol.values[v];
            let dist = (x - x.round()).abs();
            if dist > opts.int_tol {
                let score = (x - x.floor() - 0.5).abs(); // smaller = more fractional
                if branch.map(|(_, _, s)| score < s).unwrap_or(true) {
                    branch = Some((v, x, score));
                }
            }
        }

        match branch {
            None => {
                // Integer feasible.
                if better(sol.objective, best_obj) {
                    best_obj = Some(sol.objective);
                    best_values = Some(sol.values);
                }
            }
            Some((v, x, _)) => {
                // Child with x_v ≥ ceil pushed first, floor child explored
                // first (LIFO) — a mild "round down first" preference that
                // works well for placement indicators.
                let mut lo_up = lo.clone();
                let mut hi_dn = hi.clone();
                lo_up[v] = x.ceil();
                hi_dn[v] = x.floor();
                if lo_up[v] <= hi[v] + opts.int_tol {
                    stack.push((lo_up, hi.clone()));
                }
                if hi_dn[v] >= lo[v] - opts.int_tol {
                    stack.push((lo.clone(), hi_dn));
                }
            }
        }
    }

    MilpResult {
        status: if best_obj.is_some() {
            MilpStatus::Optimal
        } else {
            MilpStatus::Infeasible
        },
        objective: best_obj,
        values: best_values,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, RowSense};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 5, binary → b+c best? check:
        // a+c: 10+7=17 weight 5 ✓; b+c: 20 weight 6 ✗; a alone 10; b alone 13 w4 ✓
        // b + nothing = 13; a+c = 17 → optimum 17.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let a = lp.add_var(0.0, 1.0, 10.0);
        let b = lp.add_var(0.0, 1.0, 13.0);
        let c = lp.add_var(0.0, 1.0, 7.0);
        lp.add_row(RowSense::Le, 5.0, &[(a, 3.0), (b, 4.0), (c, 2.0)]);
        let r = solve_milp(&lp, &[a, b, c], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 17.0).abs() < 1e-6);
        let v = r.values.unwrap();
        assert!((v[a] - 1.0).abs() < 1e-6);
        assert!(v[b].abs() < 1e-6);
        assert!((v[c] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x ≤ 7, x integer in [0, 10] → x = 3 (LP gives 3.5).
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 7.0, &[(x, 2.0)]);
        let r = solve_milp(&lp, &[x], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 ≤ x ≤ 0.6 with x integer.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.4, 0.6, 1.0);
        let r = solve_milp(&lp, &[x], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 2i + y s.t. i + y ≤ 3.5, y ≤ 0.8, i integer ≤ 5 → i=2? check:
        // i=3 → y ≤ 0.5 → obj 6.5; i=2 → y ≤ 0.8 → 4.8. So i=3, y=0.5.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let i = lp.add_var(0.0, 5.0, 2.0);
        let y = lp.add_var(0.0, 0.8, 1.0);
        lp.add_row(RowSense::Le, 3.5, &[(i, 1.0), (y, 1.0)]);
        let r = solve_milp(&lp, &[i], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 6.5).abs() < 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let mut vars = Vec::new();
        for k in 0..12 {
            vars.push(lp.add_var(0.0, 1.0, 1.0 + 0.1 * k as f64));
        }
        let coeffs: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 2.0 + v as f64 * 0.37)).collect();
        lp.add_row(RowSense::Le, 11.3, &coeffs);
        let opts = MilpOptions {
            max_nodes: 3,
            ..MilpOptions::default()
        };
        let r = solve_milp(&lp, &vars, &opts);
        assert!(r.nodes <= 3);
    }
}
