//! Mixed-integer linear programming by depth-first branch & bound.
//!
//! Suited to the *small* exact instances the paper solves with its MILP
//! formulation (§3.2). One persistent [`SimplexSolver`] is shared by every
//! node: the matrix, slack/artificial columns, and scratch buffers are
//! assembled once, and each child node warm-starts from its parent's
//! [`BasisSnapshot`] — since parent and child differ in a single variable
//! bound, the parent's optimal basis is usually one short repair away from
//! the child's, eliminating per-node matrix rebuilds and cold phase-1
//! solves. Branching is pseudocost-driven (observed per-unit objective
//! degradation per variable and direction, falling back to most-fractional
//! until statistics exist), diving first into the child with the smaller
//! estimated degradation; subtrees are pruned against the incumbent both
//! before (parent bound) and after their LP solve. A node budget keeps
//! worst-case instances from running away.

use crate::problem::LinearProgram;
use crate::simplex::{BasisSnapshot, FactorStats, LpStatus, SimplexOptions, SimplexSolver};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Options for the branch & bound search.
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Wall-clock budget for the whole tree (node loop **and** the simplex
    /// iteration loops inside each node solve); `None` means unbounded.
    /// When it expires the search stops at the next check point and the
    /// best feasible incumbent found so far is returned with
    /// [`MilpStatus::TimedOut`].
    pub time_budget: Option<Duration>,
    /// Integrality tolerance: `|x − round(x)| ≤ int_tol` counts as integral.
    pub int_tol: f64,
    /// Absolute optimality gap at which a node is pruned.
    pub gap_tol: f64,
    /// Options for the node LP solves.
    pub simplex: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 100_000,
            time_budget: None,
            int_tol: 1e-6,
            gap_tol: 1e-9,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Status of a branch & bound run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal integer solution.
    Optimal,
    /// No integer-feasible solution exists.
    Infeasible,
    /// Node budget exhausted; `best` (if any) is a feasible incumbent
    /// without optimality proof.
    NodeLimit,
    /// Wall-clock budget exhausted; `best` (if any) is a feasible incumbent
    /// without optimality proof.
    TimedOut,
    /// The LP relaxation failed numerically or was unbounded.
    Error,
}

impl MilpStatus {
    /// Whether an incumbent reported under this status is a *feasible*
    /// integer solution (possibly without an optimality proof).
    pub fn incumbent_is_feasible(&self) -> bool {
        matches!(
            self,
            MilpStatus::Optimal | MilpStatus::NodeLimit | MilpStatus::TimedOut
        )
    }
}

/// Result of a branch & bound run.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Run status.
    pub status: MilpStatus,
    /// Best integer-feasible objective (user orientation), if found.
    pub objective: Option<f64>,
    /// Variable values of the incumbent, if found.
    pub values: Option<Vec<f64>>,
    /// Explored node count.
    pub nodes: usize,
    /// Total simplex iterations across every node LP solve (solver-effort
    /// telemetry: warm starts should keep this far below `nodes × cold`).
    pub simplex_iterations: usize,
    /// Factorisation and pricing telemetry accumulated across every node LP
    /// solve: refactorisation counts, warm-column reuse, eta folds,
    /// FTRAN/BTRAN sparsity, and snapshot eta-clone counts.
    pub factor: FactorStats,
}

/// A pending node: its bound box, the basis of the parent that spawned it
/// (shared between siblings), and the parent's LP objective — a valid bound
/// on every descendant, checked against the incumbent *before* paying for
/// the node's own LP solve.
struct Node {
    lo: Vec<f64>,
    hi: Vec<f64>,
    warm: Option<Rc<BasisSnapshot>>,
    parent_bound: Option<f64>,
    /// `(variable, went up, fractional distance moved)` of the branching
    /// that created this node — feeds the pseudocost statistics.
    branched: Option<(usize, bool, f64)>,
}

/// Observed per-unit objective degradation of branching a variable in each
/// direction; the running averages drive pseudocost branching.
#[derive(Clone, Copy, Default)]
struct PseudoCost {
    down_sum: f64,
    down_cnt: u32,
    up_sum: f64,
    up_cnt: u32,
}

/// Solves `lp` requiring every variable in `int_vars` to be integral.
///
/// One-shot convenience over [`MilpSolver`]; repeated solves of the same
/// model (e.g. a service re-solving an unchanged instance under a new
/// budget) should construct the solver once and call
/// [`MilpSolver::solve`].
pub fn solve_milp(lp: &LinearProgram, int_vars: &[usize], opts: &MilpOptions) -> MilpResult {
    MilpSolver::new(lp, int_vars, opts.clone()).solve()
}

/// A persistent branch & bound solver for one [`LinearProgram`].
///
/// Construction assembles the underlying [`SimplexSolver`] (matrix, slack
/// and artificial columns, pricing state, scratch) once; every
/// [`MilpSolver::solve`] call reuses it, so re-solving the same model —
/// the allocation service's "re-solve with tightened budget" requests —
/// pays no assembly cost and keeps the solver's candidate lists and
/// factorisation allocations warm.
pub struct MilpSolver {
    solver: SimplexSolver,
    /// The model's own variable bounds (the root node's box).
    lower: Vec<f64>,
    upper: Vec<f64>,
    int_vars: Vec<usize>,
    maximize: bool,
    n: usize,
    opts: MilpOptions,
}

impl MilpSolver {
    /// Builds a persistent solver for `lp` with the given integer set.
    pub fn new(lp: &LinearProgram, int_vars: &[usize], opts: MilpOptions) -> MilpSolver {
        MilpSolver {
            solver: SimplexSolver::new(lp, opts.simplex.clone()),
            lower: lp.lower.clone(),
            upper: lp.upper.clone(),
            int_vars: int_vars.to_vec(),
            maximize: lp.is_maximize(),
            n: lp.num_vars(),
            opts,
        }
    }

    /// The branch & bound options (adjust `max_nodes` / `time_budget`
    /// between solves via [`MilpSolver::options_mut`]).
    pub fn options(&self) -> &MilpOptions {
        &self.opts
    }

    /// Mutable access to the branch & bound options.
    pub fn options_mut(&mut self) -> &mut MilpOptions {
        &mut self.opts
    }

    /// Runs the branch & bound search from the root. Each call is an
    /// independent solve: the simplex is reset to its canonical state and
    /// no pseudocost statistics carry over, so a re-solve returns
    /// **bit-identical** results (tree, nodes, values) to a fresh solver
    /// — only the assembly cost is amortised.
    pub fn solve(&mut self) -> MilpResult {
        self.solver.reset_state();
        let deadline = self.opts.time_budget.map(|b| Instant::now() + b);
        self.solver.set_deadline(deadline);
        let mut result = self.search(deadline);
        result.factor = self.solver.stats().clone();
        self.solver.set_deadline(None);
        result
    }

    fn search(&mut self, deadline: Option<Instant>) -> MilpResult {
        let n = self.n;
        let opts = self.opts.clone();
        let maximize = self.maximize;
        let solver = &mut self.solver;
        let mut best_obj: Option<f64> = None;
        let mut best_values: Option<Vec<f64>> = None;
        let mut nodes = 0usize;
        let mut simplex_iterations = 0usize;

        // DFS stack of bound overrides + parent bases.
        let mut stack: Vec<Node> = vec![Node {
            lo: self.lower.clone(),
            hi: self.upper.clone(),
            warm: None,
            parent_bound: None,
            branched: None,
        }];
        let mut pc: Vec<PseudoCost> = vec![PseudoCost::default(); n];
        // Global averages back uninitialised variables. With nothing observed
        // yet the estimates collapse to plain fractionality scoring.
        let mut global_down = (0.0f64, 0u32);
        let mut global_up = (0.0f64, 0u32);

        let better = |candidate: f64, incumbent: Option<f64>| -> bool {
            match incumbent {
                None => true,
                Some(b) => {
                    if maximize {
                        candidate > b + opts.gap_tol
                    } else {
                        candidate < b - opts.gap_tol
                    }
                }
            }
        };

        let int_vars = &self.int_vars;
        while let Some(node) = stack.pop() {
            // The parent's relaxation objective bounds every solution in this
            // subtree; if the incumbent already matches it, skip the LP solve.
            if let (Some(pb), Some(b)) = (node.parent_bound, best_obj) {
                let prune = if maximize {
                    pb <= b + opts.gap_tol
                } else {
                    pb >= b - opts.gap_tol
                };
                if prune {
                    continue;
                }
            }
            if nodes >= opts.max_nodes {
                return MilpResult {
                    status: MilpStatus::NodeLimit,
                    objective: best_obj,
                    values: best_values,
                    nodes,
                    simplex_iterations,
                    factor: FactorStats::default(),
                };
            }
            // Wall-clock cutoff, checked once per node; the node's own simplex
            // iteration loop checks the same deadline at a finer grain.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return MilpResult {
                    status: MilpStatus::TimedOut,
                    objective: best_obj,
                    values: best_values,
                    nodes,
                    simplex_iterations,
                    factor: FactorStats::default(),
                };
            }
            nodes += 1;

            let sol = solver.solve_from(node.warm.as_deref(), &node.lo, &node.hi);
            simplex_iterations += sol.iterations;
            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Optimal => {}
                // A node whose LP timed out ends the search with the incumbent
                // found so far — the deadline never surfaces as an error.
                LpStatus::TimedOut => {
                    return MilpResult {
                        status: MilpStatus::TimedOut,
                        objective: best_obj,
                        values: best_values,
                        nodes,
                        simplex_iterations,
                        factor: FactorStats::default(),
                    };
                }
                LpStatus::Unbounded | LpStatus::IterationLimit | LpStatus::Numerical => {
                    return MilpResult {
                        status: MilpStatus::Error,
                        objective: best_obj,
                        values: best_values,
                        nodes,
                        simplex_iterations,
                        factor: FactorStats::default(),
                    };
                }
            }

            // Record the observed degradation of the branching that produced
            // this node (per unit of fractional distance moved).
            if let (Some((v, up, dist)), Some(pb)) = (node.branched, node.parent_bound) {
                if dist > opts.int_tol {
                    let deg = if maximize {
                        (pb - sol.objective).max(0.0)
                    } else {
                        (sol.objective - pb).max(0.0)
                    } / dist;
                    if up {
                        pc[v].up_sum += deg;
                        pc[v].up_cnt += 1;
                        global_up.0 += deg;
                        global_up.1 += 1;
                    } else {
                        pc[v].down_sum += deg;
                        pc[v].down_cnt += 1;
                        global_down.0 += deg;
                        global_down.1 += 1;
                    }
                }
            }

            // Bound-based pruning.
            if let Some(b) = best_obj {
                let prune = if maximize {
                    sol.objective <= b + opts.gap_tol
                } else {
                    sol.objective >= b - opts.gap_tol
                };
                if prune {
                    continue;
                }
            }

            // Pseudocost branching: pick the fractional variable with the
            // largest guaranteed (min of both directions) estimated bound
            // degradation; with no statistics yet this reduces to plain
            // most-fractional scoring.
            let gd = if global_down.1 > 0 {
                global_down.0 / global_down.1 as f64
            } else {
                1.0
            };
            let gu = if global_up.1 > 0 {
                global_up.0 / global_up.1 as f64
            } else {
                1.0
            };
            let mut branch: Option<(usize, f64, f64, f64)> = None; // (var, value, score, dn_est−up_est)
            for &v in int_vars {
                debug_assert!(v < n);
                let x = sol.values[v];
                let dist = (x - x.round()).abs();
                if dist > opts.int_tol {
                    let f = x - x.floor();
                    let pcd = if pc[v].down_cnt > 0 {
                        pc[v].down_sum / pc[v].down_cnt as f64
                    } else {
                        gd
                    };
                    let pcu = if pc[v].up_cnt > 0 {
                        pc[v].up_sum / pc[v].up_cnt as f64
                    } else {
                        gu
                    };
                    let dn_est = pcd * f;
                    let up_est = pcu * (1.0 - f);
                    let score = dn_est.min(up_est);
                    if branch.map(|(_, _, s, _)| score > s).unwrap_or(true) {
                        branch = Some((v, x, score, dn_est - up_est));
                    }
                }
            }

            match branch {
                None => {
                    // Integer feasible.
                    if better(sol.objective, best_obj) {
                        best_obj = Some(sol.objective);
                        best_values = Some(sol.values);
                    }
                }
                Some((v, x, _, est_diff)) => {
                    // Both children warm-start from this node's optimal basis.
                    let warm = Rc::new(solver.snapshot());
                    let Node { lo, hi, .. } = node;
                    let mut lo_up = lo.clone();
                    let mut hi_dn = hi.clone();
                    lo_up[v] = x.ceil();
                    hi_dn[v] = x.floor();
                    let up_ok = lo_up[v] <= hi[v] + opts.int_tol;
                    let dn_ok = hi_dn[v] >= lo[v] - opts.int_tol;
                    let f = x - x.floor();
                    let up_node = up_ok.then(|| Node {
                        lo: lo_up,
                        hi: hi.clone(),
                        warm: Some(warm.clone()),
                        parent_bound: Some(sol.objective),
                        branched: Some((v, true, 1.0 - f)),
                    });
                    let dn_node = dn_ok.then_some(Node {
                        lo,
                        hi: hi_dn,
                        warm: Some(warm),
                        parent_bound: Some(sol.objective),
                        branched: Some((v, false, f)),
                    });
                    // Dive into the child with the smaller estimated
                    // degradation first (LIFO: it is pushed last) — it keeps
                    // the better bound and reaches good incumbents sooner.
                    let dive_up = est_diff >= 0.0;
                    let (first, second) = if dive_up {
                        (dn_node, up_node)
                    } else {
                        (up_node, dn_node)
                    };
                    stack.extend(first);
                    stack.extend(second);
                }
            }
        }

        MilpResult {
            status: if best_obj.is_some() {
                MilpStatus::Optimal
            } else {
                MilpStatus::Infeasible
            },
            objective: best_obj,
            values: best_values,
            nodes,
            simplex_iterations,
            factor: FactorStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, RowSense};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 5, binary → b+c best? check:
        // a+c: 10+7=17 weight 5 ✓; b+c: 20 weight 6 ✗; a alone 10; b alone 13 w4 ✓
        // b + nothing = 13; a+c = 17 → optimum 17.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let a = lp.add_var(0.0, 1.0, 10.0);
        let b = lp.add_var(0.0, 1.0, 13.0);
        let c = lp.add_var(0.0, 1.0, 7.0);
        lp.add_row(RowSense::Le, 5.0, &[(a, 3.0), (b, 4.0), (c, 2.0)]);
        let r = solve_milp(&lp, &[a, b, c], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 17.0).abs() < 1e-6);
        let v = r.values.unwrap();
        assert!((v[a] - 1.0).abs() < 1e-6);
        assert!(v[b].abs() < 1e-6);
        assert!((v[c] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x ≤ 7, x integer in [0, 10] → x = 3 (LP gives 3.5).
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 7.0, &[(x, 2.0)]);
        let r = solve_milp(&lp, &[x], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 3.0).abs() < 1e-6);
    }

    /// A binary knapsack family large enough that the tree has real work.
    fn hard_knapsack(nv: usize) -> (LinearProgram, Vec<usize>) {
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let mut vars = Vec::new();
        for k in 0..nv {
            vars.push(lp.add_var(0.0, 1.0, 1.0 + 0.13 * k as f64));
        }
        let row_a: Vec<(usize, f64)> = vars
            .iter()
            .map(|&v| (v, 2.0 + (v as f64 * 0.71).sin().abs()))
            .collect();
        let row_b: Vec<(usize, f64)> = vars
            .iter()
            .map(|&v| (v, 1.0 + (v as f64 * 1.37).cos().abs() * 2.0))
            .collect();
        let cap_a = row_a.iter().map(|&(_, w)| w).sum::<f64>() * 0.5;
        let cap_b = row_b.iter().map(|&(_, w)| w).sum::<f64>() * 0.5;
        lp.add_row(RowSense::Le, cap_a, &row_a);
        lp.add_row(RowSense::Le, cap_b, &row_b);
        (lp, vars)
    }

    #[test]
    fn expired_budget_returns_incumbent_not_error() {
        let (lp, vars) = hard_knapsack(18);
        let opts = MilpOptions {
            time_budget: Some(std::time::Duration::ZERO),
            ..MilpOptions::default()
        };
        let r = solve_milp(&lp, &vars, &opts);
        // A zero budget expires before (or just after) the root: the search
        // stops cleanly; any reported incumbent is integer feasible.
        assert!(
            matches!(r.status, MilpStatus::TimedOut),
            "status {:?}",
            r.status
        );
        assert!(r.status.incumbent_is_feasible() || r.objective.is_none());
    }

    #[test]
    fn persistent_solver_resolves_identically() {
        let (lp, vars) = hard_knapsack(12);
        let reference = solve_milp(&lp, &vars, &MilpOptions::default());
        assert_eq!(reference.status, MilpStatus::Optimal);

        let mut solver = MilpSolver::new(&lp, &vars, MilpOptions::default());
        for round in 0..3 {
            let r = solver.solve();
            assert_eq!(r.status, MilpStatus::Optimal, "round {round}");
            assert_eq!(r.objective, reference.objective, "round {round}");
            assert_eq!(r.values, reference.values, "round {round}");
            assert_eq!(r.nodes, reference.nodes, "round {round}");
        }
    }

    #[test]
    fn budget_toggles_between_solves_on_one_solver() {
        let (lp, vars) = hard_knapsack(18);
        let mut solver = MilpSolver::new(&lp, &vars, MilpOptions::default());
        solver.options_mut().time_budget = Some(std::time::Duration::ZERO);
        let cut = solver.solve();
        assert_eq!(cut.status, MilpStatus::TimedOut);
        // Clearing the budget restores the full, proven-optimal search.
        solver.options_mut().time_budget = None;
        let full = solver.solve();
        assert_eq!(full.status, MilpStatus::Optimal);
        if let (Some(inc), Some(opt)) = (cut.objective, full.objective) {
            assert!(inc <= opt + 1e-9, "incumbent {inc} above optimum {opt}");
        }
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 ≤ x ≤ 0.6 with x integer (a row-free model: exercises the
        // boxed fast path through the persistent solver).
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.4, 0.6, 1.0);
        let r = solve_milp(&lp, &[x], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 2i + y s.t. i + y ≤ 3.5, y ≤ 0.8, i integer ≤ 5 → i=2? check:
        // i=3 → y ≤ 0.5 → obj 6.5; i=2 → y ≤ 0.8 → 4.8. So i=3, y=0.5.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let i = lp.add_var(0.0, 5.0, 2.0);
        let y = lp.add_var(0.0, 0.8, 1.0);
        lp.add_row(RowSense::Le, 3.5, &[(i, 1.0), (y, 1.0)]);
        let r = solve_milp(&lp, &[i], &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 6.5).abs() < 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let mut vars = Vec::new();
        for k in 0..12 {
            vars.push(lp.add_var(0.0, 1.0, 1.0 + 0.1 * k as f64));
        }
        let coeffs: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 2.0 + v as f64 * 0.37)).collect();
        lp.add_row(RowSense::Le, 11.3, &coeffs);
        let opts = MilpOptions {
            max_nodes: 3,
            ..MilpOptions::default()
        };
        let r = solve_milp(&lp, &vars, &opts);
        assert!(r.nodes <= 3);
    }

    #[test]
    fn warm_started_tree_matches_brute_force() {
        // Randomised binary programs small enough to enumerate: the
        // warm-started search must find the exact optimum every time.
        let mut state = 0x5eed_cafe_u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..25 {
            let nv = 6;
            let mut lp = LinearProgram::new();
            lp.set_maximize(true);
            let mut profits = Vec::new();
            let mut vars = Vec::new();
            for _ in 0..nv {
                let p = 1.0 + 9.0 * rnd();
                profits.push(p);
                vars.push(lp.add_var(0.0, 1.0, p));
            }
            let mut weights_a = Vec::new();
            let mut weights_b = Vec::new();
            for _ in 0..nv {
                weights_a.push(1.0 + 4.0 * rnd());
                weights_b.push(1.0 + 4.0 * rnd());
            }
            let cap_a = weights_a.iter().sum::<f64>() * (0.3 + 0.4 * rnd());
            let cap_b = weights_b.iter().sum::<f64>() * (0.3 + 0.4 * rnd());
            let row_a: Vec<(usize, f64)> = vars.iter().map(|&v| (v, weights_a[v])).collect();
            let row_b: Vec<(usize, f64)> = vars.iter().map(|&v| (v, weights_b[v])).collect();
            lp.add_row(RowSense::Le, cap_a, &row_a);
            lp.add_row(RowSense::Le, cap_b, &row_b);

            let r = solve_milp(&lp, &vars, &MilpOptions::default());
            assert_eq!(r.status, MilpStatus::Optimal, "trial {trial}");

            // Exhaustive enumeration.
            let mut best = f64::NEG_INFINITY;
            for mask in 0u32..(1 << nv) {
                let mut wa = 0.0;
                let mut wb = 0.0;
                let mut p = 0.0;
                for v in 0..nv {
                    if mask & (1 << v) != 0 {
                        wa += weights_a[v];
                        wb += weights_b[v];
                        p += profits[v];
                    }
                }
                if wa <= cap_a + 1e-9 && wb <= cap_b + 1e-9 {
                    best = best.max(p);
                }
            }
            assert!(
                (r.objective.unwrap() - best).abs() < 1e-6,
                "trial {trial}: milp {} vs brute force {best}",
                r.objective.unwrap()
            );
        }
    }
}
