//! Bounded-variable two-phase revised simplex with a persistent,
//! warm-startable solver.
//!
//! Implementation notes:
//!
//! * [`SimplexSolver`] assembles the CSC matrix (structural + slack +
//!   artificial columns), bounds, scratch buffers, and basis state **once**
//!   and is re-entered via [`SimplexSolver::solve_from`] with fresh bound
//!   overrides — branch & bound calls it thousands of times without
//!   rebuilding anything.
//! * Rows are converted to equalities with slack columns whose bounds encode
//!   the sense (`≤ → s ∈ [0, ∞)`, `≥ → s ∈ (−∞, 0]`, `= → s ∈ [0, 0]`).
//!   One artificial column per row is part of the permanent matrix; it is
//!   pinned to `[0, 0]` except during a cold phase 1, where rows whose slack
//!   start value violates its bounds activate it on the violated side.
//! * Warm starts restore a [`BasisSnapshot`] (basis + variable statuses +
//!   the shared factorisation of that basis) and repair residual primal
//!   infeasibility by minimising the violation of out-of-bounds basic
//!   variables over a box widened to the current point; the repair can also
//!   *prove* the new bound system infeasible, and only when it fails does
//!   the solve fall back to a cold phase 1.
//! * The basis inverse is kept as a sparse LU factorisation
//!   ([`crate::lu::SparseLu`]) of a reference basis plus a product-form eta
//!   file; the basis is refactorised every `refactor_interval` pivots, which
//!   also recomputes the basic values to wash out drift. Refactorisation is
//!   *partial*: the longest common prefix of the reference LU's basis and
//!   the current basis is reused verbatim through
//!   [`crate::lu::SparseLu::refactorize_from`] (left-looking columns depend
//!   only on earlier columns, so the reuse is bit-for-bit identical to a
//!   from-scratch rebuild; disable with [`SimplexOptions::partial_refactor`]
//!   to ablate).
//! * Pricing is candidate-list partial pricing with static steepest-edge
//!   scoring (`|d_j| / √(1 + ‖a_j‖²)`): a short list of attractive columns
//!   is re-priced against fresh duals each iteration and refilled by a
//!   rotating section scan once it goes stale; a full rotation with no
//!   candidate proves optimality. With
//!   [`SimplexOptions::exact_candidate_weights`] the refill finalists get
//!   *exact* steepest-edge weights `√(1 + ‖B⁻¹a_j‖²)` from one batched
//!   multi-RHS FTRAN ([`crate::lu::SparseLu::solve_batch`]). A long
//!   degenerate stall switches to Bland's rule (full lowest-index scan),
//!   restoring the termination guarantee.
//! * FTRAN tracks the nonzero pattern symbolically through
//!   [`crate::lu::SparseLu::solve_sparse`] and the eta file, so the ratio
//!   test and basic-value updates touch only actual nonzeros. BTRAN does
//!   the same through [`crate::lu::SparseLu::solve_transpose_sparse`]
//!   whenever `c_B` is sparse (in phase 2 of the yield LP it has a single
//!   nonzero), falling back to the dense transpose solve otherwise.
//! * The ratio test performs bound flips for the entering variable when the
//!   opposite bound is reached first, and breaks near-ties by pivot
//!   magnitude for numerical stability.

use crate::lu::{SolveScratch, SparseLu};
use crate::problem::{LinearProgram, RowSense};
use crate::sparse::CscMatrix;
use std::rc::Rc;

use std::time::Instant;

/// Options controlling the simplex method.
#[derive(Clone, Debug)]
pub struct SimplexOptions {
    /// Hard iteration cap; 0 means automatic (`1000 + 40·(m+n)`).
    pub max_iterations: usize,
    /// Pivots between basis refactorisations.
    pub refactor_interval: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Dual (reduced-cost) tolerance.
    pub opt_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_threshold: usize,
    /// Reuse the unchanged leading columns of the previous reference LU on
    /// refactorisation (see [`crate::lu::SparseLu::refactorize_from`]).
    /// The produced factorisation is bit-identical either way; turning this
    /// off exists for differential testing and benchmarking only.
    pub partial_refactor: bool,
    /// Compute *exact* steepest-edge weights `√(1 + ‖B⁻¹a_j‖²)` for the
    /// candidate-list refill finalists via one batched multi-RHS FTRAN,
    /// instead of the static column norms. Changes pivot sequences
    /// (deterministically); off by default.
    pub exact_candidate_weights: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 0,
            refactor_interval: 96,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            stall_threshold: 800,
            partial_refactor: true,
            exact_candidate_weights: false,
        }
    }
}

/// Termination status of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists (phase 1 could not reach zero).
    Infeasible,
    /// Objective unbounded along a feasible ray.
    Unbounded,
    /// Iteration limit hit before convergence.
    IterationLimit,
    /// The solver's wall-clock deadline (see
    /// [`SimplexSolver::set_deadline`]) expired mid-solve.
    TimedOut,
    /// Numerical failure (singular basis after recovery attempts).
    Numerical,
}

/// Result of an LP solve.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Termination status; `objective`/`values` are meaningful for
    /// [`LpStatus::Optimal`] only.
    pub status: LpStatus,
    /// Objective value in the *user's* orientation (max or min).
    pub objective: f64,
    /// Values of the structural variables.
    pub values: Vec<f64>,
    /// Simplex iterations performed (all phases of this solve).
    pub iterations: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Nonbasic at value zero — the only consistent resting point for a
    /// variable with two infinite bounds.
    Free,
}

/// An opaque snapshot of a basis (basis columns + every variable's status),
/// taken with [`SimplexSolver::snapshot`] and replayed through
/// [`SimplexSolver::solve_from`] to warm-start a related solve.
#[derive(Clone, Debug)]
pub struct BasisSnapshot {
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    /// The factorisation of this basis — reference LU plus the eta file on
    /// top of it — shared so warm starts skip refactorisation entirely.
    lu: Option<Rc<SparseLu>>,
    etas: Rc<Vec<Eta>>,
    /// The basis the reference LU factorised (`basis` minus the eta-file
    /// pivots) — the anchor for partial refactorisation after restore.
    lu_basis: Rc<Vec<usize>>,
}

/// Factorisation and triangular-solve telemetry accumulated by a
/// [`SimplexSolver`] since its last [`SimplexSolver::reset_state`] (for a
/// [`crate::MilpSolver`], one branch & bound tree).
///
/// Every counter is observational: reading or resetting it never affects
/// the solve path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FactorStats {
    /// Reference-LU rebuilds (interval refactorisations, snapshot eta
    /// fold-ins, and warm-start restores without a shared factorisation).
    pub refactorisations: u64,
    /// Basis columns factored from scratch across all refactorisations.
    pub cols_factored: u64,
    /// Basis columns reused verbatim from the previous reference LU
    /// (partial refactorisation warm reuse).
    pub cols_reused: u64,
    /// Snapshot-triggered eta-file fold-ins (a refactorisation taken
    /// because the eta file grew past the snapshot fold threshold).
    pub eta_folds: u64,
    /// Stored nonzeros of the most recent reference LU.
    pub fill_nnz: usize,
    /// Sparsity-tracked FTRAN solves (one per simplex pivot attempt).
    pub ftran_solves: u64,
    /// Total nonzeros across all FTRAN results.
    pub ftran_nnz: u64,
    /// Total FTRAN result length (`m` per solve) — denominator for
    /// [`FactorStats::ftran_sparsity`].
    pub ftran_dim: u64,
    /// Dual (BTRAN) solves performed.
    pub btran_solves: u64,
    /// BTRAN solves that took the sparse reachability path.
    pub btran_sparse: u64,
    /// Total nonzeros across sparse-path BTRAN results (the pattern length
    /// the reachability walk reports; the dense path does not count its
    /// output — scanning it would cost more than the telemetry is worth).
    pub btran_nnz: u64,
    /// Total sparse-path BTRAN result length (`m` per sparse solve) —
    /// denominator for [`FactorStats::btran_sparsity`].
    pub btran_dim: u64,
    /// Candidate columns re-weighted through batched multi-RHS FTRANs
    /// (only nonzero with [`SimplexOptions::exact_candidate_weights`]).
    pub pricing_batched_cols: u64,
    /// Basis snapshots taken.
    pub snapshots: u64,
    /// Snapshots that had to deep-clone the eta file (the rest reused the
    /// cached `Rc` because no pivot had touched the file in between).
    pub snapshot_eta_clones: u64,
}

impl FactorStats {
    /// Fraction of refactorised basis columns reused from the previous
    /// reference LU (0 when no refactorisation happened).
    pub fn warm_reuse_ratio(&self) -> f64 {
        let total = self.cols_factored + self.cols_reused;
        if total == 0 {
            0.0
        } else {
            self.cols_reused as f64 / total as f64
        }
    }

    /// Mean FTRAN result density `nnz / m` (1.0 = dense).
    pub fn ftran_sparsity(&self) -> f64 {
        if self.ftran_dim == 0 {
            0.0
        } else {
            self.ftran_nnz as f64 / self.ftran_dim as f64
        }
    }

    /// Mean sparse-path BTRAN result density `nnz / m` (1.0 = dense);
    /// 0.0 when no BTRAN took the sparse path.
    pub fn btran_sparsity(&self) -> f64 {
        if self.btran_dim == 0 {
            0.0
        } else {
            self.btran_nnz as f64 / self.btran_dim as f64
        }
    }

    /// Merges another solver's counters into this one (used when a result
    /// aggregates several solver lifetimes).
    pub fn absorb(&mut self, other: &FactorStats) {
        self.refactorisations += other.refactorisations;
        self.cols_factored += other.cols_factored;
        self.cols_reused += other.cols_reused;
        self.eta_folds += other.eta_folds;
        self.fill_nnz = other.fill_nnz.max(self.fill_nnz);
        self.ftran_solves += other.ftran_solves;
        self.ftran_nnz += other.ftran_nnz;
        self.ftran_dim += other.ftran_dim;
        self.btran_solves += other.btran_solves;
        self.btran_sparse += other.btran_sparse;
        self.btran_nnz += other.btran_nnz;
        self.btran_dim += other.btran_dim;
        self.pricing_batched_cols += other.pricing_batched_cols;
        self.snapshots += other.snapshots;
        self.snapshot_eta_clones += other.snapshot_eta_clones;
    }
}

#[derive(Clone, Debug)]
struct Eta {
    pos: usize,
    pivot: f64,
    // Entries of the FTRAN column t, excluding the pivot position.
    entries: Vec<(usize, f64)>,
}

const PIVOT_TOL: f64 = 1e-9;
/// Maximum size of the pricing candidate list.
const CAND_CAP: usize = 16;
/// Minimum columns per pricing section scan.
const SECTION_MIN: usize = 64;
/// A cached candidate list is considered stale once its best score drops
/// below this fraction of the best score at the last refill.
const REFILL_DECAY: f64 = 0.5;
/// Snapshots fold eta files at least this long into a fresh LU; shorter
/// files are cheaper to clone than to refactorise away.
const SNAPSHOT_FOLD_ETAS: usize = 16;
/// Lanes per batched multi-RHS pricing FTRAN (exact candidate weights).
const PRICE_BATCH: usize = 8;
/// The dual solve takes the sparse BTRAN path when `c_B` (after the eta
/// transpose application) touches at most this fraction of the basis.
/// The reachability walk only beats the dense triangular sweeps when the
/// right-hand side is *very* sparse — at these basis sizes (m ≈ 70) the
/// transpose reach closure of even a handful of entries covers most of the
/// matrix, so the threshold is deliberately strict.
const BTRAN_SPARSE_FRACTION: usize = 32;
/// The iteration loop polls the wall-clock deadline whenever
/// `iterations & DEADLINE_CHECK_MASK == 0` — every 64th iteration, keeping
/// the `Instant::now` syscall off the per-pivot hot path.
pub const DEADLINE_CHECK_MASK: usize = 63;

/// Outcome of the warm-start feasibility repair.
enum Repair {
    /// Basis is primal feasible; proceed straight to phase 2.
    Feasible,
    /// The repair *proved* the bound system infeasible.
    Infeasible,
    /// Could not restore feasibility cheaply; fall back to a cold start.
    Fallback,
}

/// A persistent bounded-variable simplex solver for one [`LinearProgram`].
///
/// Construction assembles the constraint matrix (structural, slack, and
/// artificial columns), cost vectors, and all scratch buffers. Each call to
/// [`SimplexSolver::solve_from`] then solves the model under fresh
/// per-variable bound overrides, optionally warm-starting from a
/// [`BasisSnapshot`] of an earlier, related solve — the access pattern of
/// branch & bound, where successive node LPs differ in a single bound.
pub struct SimplexSolver {
    m: usize,
    n_struct: usize,
    /// +1 for minimisation, −1 for maximisation (costs are pre-multiplied).
    sign: f64,
    a: CscMatrix, // structural + slack + artificial columns
    slack_lower: Vec<f64>,
    slack_upper: Vec<f64>,
    lower: Vec<f64>, // working bounds
    upper: Vec<f64>,
    cost: Vec<f64>, // phase-dependent
    real_cost: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    rhs: Vec<f64>,
    lu: Option<Rc<SparseLu>>,
    /// The basis the reference LU factorised; shared with snapshots so a
    /// restore re-anchors partial refactorisation without copying.
    lu_basis: Rc<Vec<usize>>,
    lu_scratch: SolveScratch,
    etas: Vec<Eta>,
    /// Cached `Rc` of the eta file handed to the last snapshot; reused by
    /// later snapshots until a pivot or refactorisation touches the file.
    snap_etas: Option<Rc<Vec<Eta>>>,
    opts: SimplexOptions,
    // scratch
    dense_a: Vec<f64>,
    dense_b: Vec<f64>,
    y: Vec<f64>,
    /// Positions of `y` written by the last sparse BTRAN (`y_dense` false).
    y_pattern: Vec<usize>,
    /// Whether the last BTRAN overwrote all of `y` via the dense path.
    y_dense: bool,
    /// BTRAN right-hand side c_B; all-zero between calls.
    du: Vec<f64>,
    du_pattern: Vec<usize>,
    du_mark: Vec<bool>,
    fb: Vec<f64>, // FTRAN right-hand side; all-zero between calls
    t: Vec<f64>,  // FTRAN result; zero outside t_pattern between pivots
    t_pattern: Vec<usize>,
    t_mark: Vec<bool>,
    // batched pricing scratch (lazily sized to m)
    batch_b: Vec<[f64; PRICE_BATCH]>,
    batch_x: Vec<[f64; PRICE_BATCH]>,
    // pricing
    cand: Vec<usize>,
    /// Steepest-edge weight per cached candidate (parallel to `cand`):
    /// the static column norm, or the exact `√(1 + ‖B⁻¹a_j‖²)` when
    /// `exact_candidate_weights` is on.
    cand_weight: Vec<f64>,
    scan_cursor: usize,
    /// Static steepest-edge weights: `√(1 + ‖a_j‖²)` per column.
    col_norm: Vec<f64>,
    /// Best candidate score at the last refill, decayed: when the cached
    /// list's best falls below this, the list is stale and is refilled.
    refill_floor: f64,
    // per-solve state
    iterations: usize,
    degenerate_streak: usize,
    bland: bool,
    /// Wall-clock cutoff checked periodically in the iteration loop.
    deadline: Option<Instant>,
    stats: FactorStats,
}

/// Solves `lp` with the given structural-variable bounds (callers may
/// override the model's own bounds, which branch & bound relies on).
///
/// One-shot convenience over [`SimplexSolver`]; repeated related solves
/// should construct the solver once and call
/// [`SimplexSolver::solve_from`].
pub fn solve_simplex(
    lp: &LinearProgram,
    lower: &[f64],
    upper: &[f64],
    opts: &SimplexOptions,
) -> LpSolution {
    SimplexSolver::new(lp, opts.clone()).solve_from(None, lower, upper)
}

impl SimplexSolver {
    /// Assembles the solver state for `lp`: CSC matrix with slack and
    /// artificial columns, cost vectors, and scratch buffers.
    pub fn new(lp: &LinearProgram, opts: SimplexOptions) -> SimplexSolver {
        let m = lp.num_rows();
        let n = lp.num_vars();
        let sign = if lp.is_maximize() { -1.0 } else { 1.0 };
        let n_total = n + 2 * m;

        let mut a = CscMatrix::new(m);
        let mut real_cost = Vec::with_capacity(n_total);
        for j in 0..n {
            a.push_column(&lp.cols[j]);
            real_cost.push(sign * lp.obj[j]);
        }
        let mut slack_lower = Vec::with_capacity(m);
        let mut slack_upper = Vec::with_capacity(m);
        for i in 0..m {
            a.push_column(&[(i, 1.0)]);
            let (lo, hi) = match lp.sense[i] {
                RowSense::Le => (0.0, f64::INFINITY),
                RowSense::Ge => (f64::NEG_INFINITY, 0.0),
                RowSense::Eq => (0.0, 0.0),
            };
            slack_lower.push(lo);
            slack_upper.push(hi);
            real_cost.push(0.0);
        }
        // Artificial columns are permanent; solve_from pins them to [0, 0]
        // and cold starts open the violated side for phase 1.
        for i in 0..m {
            a.push_column(&[(i, 1.0)]);
            real_cost.push(0.0);
        }
        debug_assert_eq!(a.ncols(), n_total);
        let col_norm = (0..n_total)
            .map(|j| {
                let (_, vals) = a.col(j);
                (1.0 + vals.iter().map(|v| v * v).sum::<f64>()).sqrt()
            })
            .collect();

        SimplexSolver {
            m,
            n_struct: n,
            sign,
            a,
            slack_lower,
            slack_upper,
            lower: vec![0.0; n_total],
            upper: vec![0.0; n_total],
            cost: vec![0.0; n_total],
            real_cost,
            status: vec![VarStatus::AtLower; n_total],
            basis: vec![0; m],
            xb: vec![0.0; m],
            rhs: lp.rhs.clone(),
            lu: None,
            lu_basis: Rc::new(Vec::new()),
            lu_scratch: SolveScratch::default(),
            etas: Vec::new(),
            snap_etas: None,
            opts,
            dense_a: vec![0.0; m],
            dense_b: vec![0.0; m],
            y: vec![0.0; m],
            y_pattern: Vec::new(),
            y_dense: false,
            du: vec![0.0; m],
            du_pattern: Vec::new(),
            du_mark: vec![false; m],
            fb: vec![0.0; m],
            t: vec![0.0; m],
            t_pattern: Vec::new(),
            t_mark: vec![false; m],
            batch_b: Vec::new(),
            batch_x: Vec::new(),
            cand: Vec::new(),
            cand_weight: Vec::new(),
            scan_cursor: 0,
            col_norm,
            refill_floor: 0.0,
            iterations: 0,
            degenerate_streak: 0,
            bland: false,
            deadline: None,
            stats: FactorStats::default(),
        }
    }

    /// Factorisation and triangular-solve telemetry accumulated since the
    /// last [`SimplexSolver::reset_state`].
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Pivot rows of the current reference LU, or `None` before the first
    /// factorisation. Differential suites compare this across solvers to
    /// certify that partial and full refactorisation produce the same
    /// pivot sequence.
    pub fn lu_pivot_rows(&self) -> Option<&[usize]> {
        self.lu.as_deref().map(SparseLu::pivot_rows)
    }

    /// The options this solver was built with.
    pub fn options(&self) -> &SimplexOptions {
        &self.opts
    }

    /// Sets (or clears) a wall-clock deadline. The iteration loop checks it
    /// every [`DEADLINE_CHECK_MASK`]+1 iterations and aborts the solve with
    /// [`LpStatus::TimedOut`] once it has passed; the deadline persists
    /// across [`SimplexSolver::solve_from`] calls until cleared, which lets
    /// branch & bound install one deadline for a whole tree.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Returns the solver to its just-constructed state: basis, variable
    /// statuses, factorisation, pricing caches and FTRAN scratch are all
    /// reset, while the assembled matrix, column norms and buffer
    /// allocations are retained.
    ///
    /// Two jobs: (1) a persistent solver that is reset before each root
    /// solve replays **bit-identically** to a freshly built one — the
    /// surviving pricing state could otherwise steer degenerate pivots
    /// down a different (equally optimal) path; (2) a solve aborted
    /// mid-pivot by the deadline can leave the FTRAN scratch violating
    /// its between-solve invariants, which the reset re-establishes.
    pub fn reset_state(&mut self) {
        self.status.fill(VarStatus::AtLower);
        self.basis.fill(0);
        self.xb.fill(0.0);
        self.lu = None;
        self.lu_basis = Rc::new(Vec::new());
        self.etas.clear();
        self.snap_etas = None;
        self.dense_a.fill(0.0);
        self.dense_b.fill(0.0);
        self.y.fill(0.0);
        self.y_pattern.clear();
        self.y_dense = false;
        self.du.fill(0.0);
        self.du_pattern.clear();
        self.du_mark.fill(false);
        self.fb.fill(0.0);
        self.t.fill(0.0);
        self.t_pattern.clear();
        self.t_mark.fill(false);
        self.cand.clear();
        self.cand_weight.clear();
        self.scan_cursor = 0;
        self.refill_floor = 0.0;
        self.iterations = 0;
        self.degenerate_streak = 0;
        self.bland = false;
        self.stats = FactorStats::default();
    }

    /// Captures the current basis and variable statuses for warm-starting a
    /// later, related solve. Meaningful after a [`LpStatus::Optimal`] solve.
    ///
    /// The snapshot carries the current factorisation (reference LU + eta
    /// file), so warm starts from it never refactorise. A long eta file is
    /// folded into a fresh LU first — cloning it would cost more than the
    /// factorisation it saves.
    pub fn snapshot(&mut self) -> BasisSnapshot {
        if self.lu.is_some() && self.etas.len() >= SNAPSHOT_FOLD_ETAS {
            self.stats.eta_folds += 1;
            if self.refactorize().is_err() {
                self.lu = None; // defensive: snapshot degrades to basis-only
            }
        }
        self.stats.snapshots += 1;
        // Branch & bound snapshots the same state once per branched node
        // (both children share it) and often re-snapshots an unchanged
        // solver; clone the eta file only when it actually changed.
        let etas = match &self.snap_etas {
            Some(rc) => rc.clone(),
            None => {
                self.stats.snapshot_eta_clones += 1;
                let rc = Rc::new(self.etas.clone());
                self.snap_etas = Some(rc.clone());
                rc
            }
        };
        BasisSnapshot {
            status: self.status.clone(),
            basis: self.basis.clone(),
            lu: self.lu.clone(),
            etas,
            lu_basis: self.lu_basis.clone(),
        }
    }

    /// Solves the model under the given structural-variable bounds,
    /// warm-starting from `warm` when provided. Falls back to a cold
    /// two-phase solve whenever the snapshot cannot be repaired to primal
    /// feasibility, so the result is identical (status and objective) to a
    /// cold solve either way.
    pub fn solve_from(
        &mut self,
        warm: Option<&BasisSnapshot>,
        lower: &[f64],
        upper: &[f64],
    ) -> LpSolution {
        assert_eq!(lower.len(), self.n_struct);
        assert_eq!(upper.len(), self.n_struct);
        self.iterations = 0;
        self.bland = false;
        self.degenerate_streak = 0;
        // The candidate list deliberately survives across solves: its
        // entries are just column indices, re-priced before use, and the
        // same columns tend to stay attractive across branch & bound nodes.
        self.refill_floor = 0.0;

        for j in 0..self.n_struct {
            if lower[j] > upper[j] {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    values: Vec::new(),
                    iterations: 0,
                };
            }
        }
        if self.m == 0 {
            return self.solve_boxed(lower, upper);
        }

        // Install the working bounds: caller's structural box, sense-derived
        // slack bounds, artificials pinned to zero.
        self.lower[..self.n_struct].copy_from_slice(lower);
        self.upper[..self.n_struct].copy_from_slice(upper);
        for i in 0..self.m {
            self.lower[self.n_struct + i] = self.slack_lower[i];
            self.upper[self.n_struct + i] = self.slack_upper[i];
            let aj = self.n_struct + self.m + i;
            self.lower[aj] = 0.0;
            self.upper[aj] = 0.0;
        }

        let status = match warm {
            Some(snap) => match self.try_warm(snap) {
                Repair::Feasible => self.phase2(),
                Repair::Infeasible => LpStatus::Infeasible,
                Repair::Fallback => self.cold_solve(),
            },
            None => self.cold_solve(),
        };

        let mut objective = 0.0;
        let mut values = vec![0.0; self.n_struct];
        if status == LpStatus::Optimal {
            for j in 0..self.n_struct {
                let v = self.value_of(j);
                values[j] = v;
                objective += self.real_cost[j] * v;
            }
            objective *= self.sign;
        }
        LpSolution {
            status,
            objective,
            values,
            iterations: self.iterations,
        }
    }

    /// Row-free model: each variable rests at its best finite bound.
    fn solve_boxed(&self, lower: &[f64], upper: &[f64]) -> LpSolution {
        let n = self.n_struct;
        let mut values = vec![0.0; n];
        let mut obj = 0.0;
        for j in 0..n {
            let c = self.real_cost[j];
            let v = if c > 0.0 {
                lower[j]
            } else if c < 0.0 {
                upper[j]
            } else {
                lower[j].max(upper[j].min(0.0))
            };
            if !v.is_finite() {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    objective: 0.0,
                    values: Vec::new(),
                    iterations: 0,
                };
            }
            values[j] = v;
            obj += c * v;
        }
        LpSolution {
            status: LpStatus::Optimal,
            objective: self.sign * obj,
            values,
            iterations: 0,
        }
    }

    /// Normalises a snapshot status against the current working bounds:
    /// nonbasic variables must rest on a finite bound (or at zero when both
    /// bounds are infinite).
    fn normalize_status(&self, j: usize, s: VarStatus) -> VarStatus {
        match s {
            s @ VarStatus::Basic(_) => s,
            VarStatus::AtLower if !self.lower[j].is_finite() => {
                if self.upper[j].is_finite() {
                    VarStatus::AtUpper
                } else {
                    VarStatus::Free
                }
            }
            VarStatus::AtUpper if !self.upper[j].is_finite() => {
                if self.lower[j].is_finite() {
                    VarStatus::AtLower
                } else {
                    VarStatus::Free
                }
            }
            VarStatus::Free if self.lower[j].is_finite() || self.upper[j].is_finite() => {
                initial_bound_status(self.lower[j], self.upper[j])
            }
            s => s,
        }
    }

    /// Restores a snapshot under the current working bounds and repairs it
    /// to primal feasibility.
    fn try_warm(&mut self, snap: &BasisSnapshot) -> Repair {
        let n_total = self.n_total();
        if snap.status.len() != n_total || snap.basis.len() != self.m {
            return Repair::Fallback;
        }
        // Depth-first search usually solves a child immediately after its
        // parent, so the solver often still *holds* the snapshot's basis —
        // with a valid LU + eta factorisation. Detect that and skip the
        // refactorisation: only the basic values need recomputing under the
        // new bounds.
        let same_basis = self.lu.is_some()
            && self.basis == snap.basis
            && (0..n_total).all(|j| self.status[j] == self.normalize_status(j, snap.status[j]));
        if same_basis {
            self.recompute_xb();
        } else {
            self.basis.copy_from_slice(&snap.basis);
            for j in 0..n_total {
                self.status[j] = self.normalize_status(j, snap.status[j]);
            }
            self.etas.clear();
            self.snap_etas = None;
            if let Some(lu) = &snap.lu {
                // The snapshot carries the factorisation of exactly this
                // basis: reference LU plus the eta file on top of it.
                self.lu = Some(lu.clone());
                self.lu_basis = snap.lu_basis.clone();
                self.etas.clone_from(&snap.etas);
                // The eta file now equals the snapshot's Rc verbatim; a
                // snapshot taken before the next pivot can reuse it.
                self.snap_etas = Some(snap.etas.clone());
                self.recompute_xb();
            } else {
                if self.refactorize().is_err() {
                    return Repair::Fallback;
                }
            }
        }
        self.repair_primal()
    }

    /// Repairs primal feasibility of a restored basis: each out-of-bounds
    /// basic variable has its violated bound widened to the current value
    /// and gets a unit cost pushing it back inside; minimising that proxy
    /// either restores feasibility, proves the bound system infeasible
    /// (the proxy optimum exceeds what any point inside the true box could
    /// score), or gives up for a cold restart.
    fn repair_primal(&mut self) -> Repair {
        let tol = self.opts.feas_tol;
        // (variable, widened side was upper, original bound value)
        let mut widened: Vec<(usize, bool, f64)> = Vec::new();
        for p in 0..self.m {
            let j = self.basis[p];
            let x = self.xb[p];
            if x > self.upper[j] + tol {
                widened.push((j, true, self.upper[j]));
                self.upper[j] = x;
            } else if x < self.lower[j] - tol {
                widened.push((j, false, self.lower[j]));
                self.lower[j] = x;
            }
        }
        if widened.is_empty() {
            return Repair::Feasible;
        }
        for j in 0..self.n_total() {
            self.cost[j] = 0.0;
        }
        for &(j, was_upper, _) in &widened {
            self.cost[j] = if was_upper { 1.0 } else { -1.0 };
        }
        let outcome = self.optimize();
        // Proxy value at the repair optimum vs the best score any point of
        // the *true* box could achieve.
        let mut achieved = 0.0;
        let mut target = 0.0;
        for &(j, was_upper, orig) in &widened {
            achieved += self.cost[j] * self.value_of(j);
            target += if was_upper { orig } else { -orig };
        }
        for &(j, was_upper, orig) in &widened {
            if was_upper {
                self.upper[j] = orig;
            } else {
                self.lower[j] = orig;
            }
        }
        if outcome.is_err() {
            return Repair::Fallback;
        }
        if achieved > target + tol * 10.0 * (1.0 + widened.len() as f64).sqrt() {
            return Repair::Infeasible;
        }
        // Nonbasic variables sit on true bounds again; recompute the basics
        // and verify feasibility survived the bound restoration.
        self.recompute_xb();
        for p in 0..self.m {
            let j = self.basis[p];
            if self.xb[p] > self.upper[j] + tol || self.xb[p] < self.lower[j] - tol {
                return Repair::Fallback;
            }
        }
        Repair::Feasible
    }

    /// Cold start: crash basis from slacks, artificials on violated rows,
    /// phase 1 if needed, then phase 2.
    fn cold_solve(&mut self) -> LpStatus {
        let n = self.n_struct;
        let m = self.m;
        for j in 0..n {
            self.status[j] = initial_bound_status(self.lower[j], self.upper[j]);
        }
        // Row activity with nonbasic structural values.
        for i in 0..m {
            self.dense_b[i] = 0.0;
        }
        for j in 0..n {
            let v = nonbasic_value(self.lower[j], self.upper[j], self.status[j]);
            if v != 0.0 {
                self.a.col_axpy(j, v, &mut self.dense_b);
            }
        }
        let mut any_artificial = false;
        for i in 0..m {
            let sj = n + i;
            let aj = n + m + i;
            self.lower[aj] = 0.0;
            self.upper[aj] = 0.0;
            self.status[aj] = VarStatus::AtLower;
            let want = self.rhs[i] - self.dense_b[i];
            if want >= self.lower[sj] - self.opts.feas_tol
                && want <= self.upper[sj] + self.opts.feas_tol
            {
                self.status[sj] = VarStatus::Basic(i);
                self.basis[i] = sj;
                self.xb[i] = want;
            } else {
                // Slack pinned to its nearest bound; the artificial opens on
                // the violated side and covers the rest.
                let pinned = want.clamp(self.lower[sj], self.upper[sj]);
                self.status[sj] = if self.lower[sj].is_finite() && pinned == self.lower[sj] {
                    VarStatus::AtLower
                } else {
                    VarStatus::AtUpper
                };
                let residual = want - pinned;
                if residual >= 0.0 {
                    self.upper[aj] = f64::INFINITY;
                } else {
                    self.lower[aj] = f64::NEG_INFINITY;
                }
                self.status[aj] = VarStatus::Basic(i);
                self.basis[i] = aj;
                self.xb[i] = residual;
                any_artificial = true;
            }
        }
        self.etas.clear();
        self.snap_etas = None;
        if self.refactorize().is_err() {
            return LpStatus::Numerical;
        }

        // Phase 1: minimise Σ |artificials| (signs folded into unit costs).
        if any_artificial {
            for j in 0..self.n_total() {
                self.cost[j] = 0.0;
            }
            for i in 0..m {
                let aj = n + m + i;
                if self.upper[aj] == f64::INFINITY {
                    self.cost[aj] = 1.0;
                } else if self.lower[aj] == f64::NEG_INFINITY {
                    self.cost[aj] = -1.0;
                }
            }
            self.bland = false;
            self.degenerate_streak = 0;
            self.refill_floor = 0.0;
            if let Err(st) = self.optimize() {
                return st;
            }
            let infeas: f64 = (n + m..self.n_total())
                .map(|j| self.value_of(j).abs())
                .sum();
            if infeas > self.opts.feas_tol * 10.0 * (1.0 + m as f64).sqrt() {
                return LpStatus::Infeasible;
            }
            // Pin artificials at zero for phase 2.
            for i in 0..m {
                let aj = n + m + i;
                self.lower[aj] = 0.0;
                self.upper[aj] = 0.0;
                if !matches!(self.status[aj], VarStatus::Basic(_)) {
                    self.status[aj] = VarStatus::AtLower;
                }
            }
        }
        self.phase2()
    }

    /// Phase 2: the real objective from the current (feasible) basis.
    fn phase2(&mut self) -> LpStatus {
        self.cost.copy_from_slice(&self.real_cost);
        self.bland = false;
        self.degenerate_streak = 0;
        self.refill_floor = 0.0;
        match self.optimize() {
            Ok(()) => LpStatus::Optimal,
            Err(st) => st,
        }
    }

    #[inline]
    fn n_total(&self) -> usize {
        self.a.ncols()
    }

    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::Basic(p) => self.xb[p],
            s => nonbasic_value(self.lower[j], self.upper[j], s),
        }
    }

    fn max_iterations(&self) -> usize {
        if self.opts.max_iterations > 0 {
            self.opts.max_iterations
        } else {
            1000 + 40 * (self.m + self.n_total())
        }
    }

    /// Runs primal iterations until optimality for the current cost vector.
    fn optimize(&mut self) -> Result<(), LpStatus> {
        let max_iters = self.max_iterations();
        loop {
            if self.iterations >= max_iters {
                return Err(LpStatus::IterationLimit);
            }
            if self.iterations & DEADLINE_CHECK_MASK == 0 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return Err(LpStatus::TimedOut);
                    }
                }
            }
            self.iterations += 1;

            self.compute_duals();
            let entering = self.price();
            let Some((q, dir)) = entering else {
                return Ok(()); // optimal for current costs
            };
            self.ftran(q);

            match self.ratio_test(q, dir) {
                RatioOutcome::Unbounded => return Err(LpStatus::Unbounded),
                RatioOutcome::BoundFlip(step) => {
                    // Entering variable jumps to its opposite bound.
                    let delta = dir * step;
                    for &p in &self.t_pattern {
                        self.xb[p] -= delta * self.t[p];
                    }
                    self.status[q] = match self.status[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        b => b,
                    };
                    self.note_degenerate(step <= self.opts.feas_tol);
                }
                RatioOutcome::Pivot {
                    pos,
                    step,
                    to_upper,
                } => {
                    let delta = dir * step;
                    let xq_new =
                        nonbasic_value(self.lower[q], self.upper[q], self.status[q]) + delta;
                    for &p in &self.t_pattern {
                        self.xb[p] -= delta * self.t[p];
                    }
                    let leaving = self.basis[pos];
                    self.status[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.basis[pos] = q;
                    self.status[q] = VarStatus::Basic(pos);
                    self.xb[pos] = xq_new;

                    // Record the eta before clearing t.
                    let pivot = self.t[pos];
                    let mut entries = Vec::with_capacity(self.t_pattern.len());
                    for &p in &self.t_pattern {
                        if p != pos && self.t[p] != 0.0 {
                            entries.push((p, self.t[p]));
                        }
                    }
                    self.etas.push(Eta {
                        pos,
                        pivot,
                        entries,
                    });
                    self.snap_etas = None;
                    self.note_degenerate(step <= self.opts.feas_tol);

                    if self.etas.len() >= self.opts.refactor_interval {
                        self.refactorize().map_err(|_| LpStatus::Numerical)?;
                    }
                }
            }
        }
    }

    fn note_degenerate(&mut self, degenerate: bool) {
        if degenerate {
            self.degenerate_streak += 1;
            if self.degenerate_streak > self.opts.stall_threshold {
                self.bland = true;
            }
        } else {
            self.degenerate_streak = 0;
            self.bland = false;
        }
    }

    /// y = Bᵀ⁻¹ c_B via the eta file and the LU transpose solve.
    ///
    /// `c_B` is assembled sparsely (in phase 2 of the yield LP the
    /// objective has a single nonzero) and the eta transpose application is
    /// pattern-tracked — each eta changes only its own position, so the
    /// pattern grows by at most one per eta. When the resulting right-hand
    /// side stays sparse the LU solve takes the reachability-walk transpose
    /// path; either way `y` holds the dense-valued duals afterwards (zeros
    /// everywhere the solution is zero).
    fn compute_duals(&mut self) {
        let m = self.m;
        let du = &mut self.du;
        let du_mark = &mut self.du_mark;
        let du_pattern = &mut self.du_pattern;
        du_pattern.clear();
        for p in 0..m {
            let c = self.cost[self.basis[p]];
            if c != 0.0 {
                du[p] = c;
                du_mark[p] = true;
                du_pattern.push(p);
            }
        }
        for eta in self.etas.iter().rev() {
            // uᵀ ← uᵀ E⁻¹: only component `pos` changes.
            let mut dot = 0.0;
            for &(p, v) in &eta.entries {
                dot += v * du[p];
            }
            du[eta.pos] = (du[eta.pos] - dot) / eta.pivot;
            if !du_mark[eta.pos] {
                du_mark[eta.pos] = true;
                du_pattern.push(eta.pos);
            }
        }

        // Clear the previous duals down to the zero invariant.
        if self.y_dense {
            self.y.fill(0.0);
        } else {
            for &r in &self.y_pattern {
                self.y[r] = 0.0;
            }
        }
        self.y_pattern.clear();
        let lu = self.lu.as_ref().expect("factorized");
        self.stats.btran_solves += 1;
        if self.du_pattern.len() * BTRAN_SPARSE_FRACTION <= m {
            lu.solve_transpose_sparse(
                &mut self.du,
                &self.du_pattern,
                &mut self.y,
                &mut self.y_pattern,
                &mut self.lu_scratch,
            );
            self.y_dense = false;
            self.stats.btran_sparse += 1;
            self.stats.btran_nnz += self.y_pattern.len() as u64;
            self.stats.btran_dim += m as u64;
            // The sparse solve restored `du` to zero; drop the marks.
            for &p in &self.du_pattern {
                self.du_mark[p] = false;
            }
        } else {
            lu.solve_transpose(&mut self.du, &mut self.y);
            self.y_dense = true;
            // The dense solve consumed `du` as scratch: restore it.
            self.du.fill(0.0);
            for &p in &self.du_pattern {
                self.du_mark[p] = false;
            }
        }
    }

    /// Entering eligibility of column `j` against the current duals:
    /// `(direction, |d_j|)` where direction +1 increases from the resting
    /// point and −1 decreases. Callers normalise the reduced-cost magnitude
    /// by a steepest-edge weight (static column norm or the exact batched
    /// weight), which picks markedly better pivots than raw Dantzig
    /// scoring.
    fn eligibility(&self, j: usize) -> Option<(f64, f64)> {
        match self.status[j] {
            VarStatus::Basic(_) => None,
            VarStatus::AtLower | VarStatus::AtUpper if self.upper[j] - self.lower[j] <= 0.0 => {
                None // fixed
            }
            _ => self.eligibility_given(j, self.reduced_cost(j)),
        }
    }

    /// Prices the contiguous column run `lo..hi` against the refill sweep's
    /// dots, appending eligible entries as `(column, direction, score,
    /// static weight)`. Zipped slice iteration keeps the per-column cost to
    /// a handful of branch-predictable loads — this loop sees every column
    /// of the problem once per refill and most are rejected.
    fn scan_run(&self, lo: usize, hi: usize, found: &mut Vec<(usize, f64, f64, f64)>) {
        let tol = self.opts.opt_tol;
        for j in lo..hi {
            let (dir, absd) = match self.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::AtLower => {
                    if self.upper[j] - self.lower[j] <= 0.0 {
                        continue;
                    }
                    let d = self.reduced_cost(j);
                    if d >= -tol {
                        continue;
                    }
                    (1.0, -d)
                }
                VarStatus::AtUpper => {
                    if self.upper[j] - self.lower[j] <= 0.0 {
                        continue;
                    }
                    let d = self.reduced_cost(j);
                    if d <= tol {
                        continue;
                    }
                    (-1.0, d)
                }
                VarStatus::Free => {
                    let d = self.reduced_cost(j);
                    if d < -tol {
                        (1.0, -d)
                    } else if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            let nm = self.col_norm[j];
            found.push((j, dir, absd / nm, nm));
        }
    }

    /// [`SimplexSolver::eligibility`] with the reduced cost already in hand
    /// — the refill scan computes every column's `d` in one row sweep.
    #[inline]
    fn eligibility_given(&self, j: usize, d: f64) -> Option<(f64, f64)> {
        let tol = self.opts.opt_tol;
        match self.status[j] {
            VarStatus::Basic(_) => None,
            VarStatus::AtLower => {
                if self.upper[j] - self.lower[j] <= 0.0 {
                    return None; // fixed
                }
                if d < -tol {
                    Some((1.0, -d))
                } else {
                    None
                }
            }
            VarStatus::AtUpper => {
                if self.upper[j] - self.lower[j] <= 0.0 {
                    return None;
                }
                if d > tol {
                    Some((-1.0, d))
                } else {
                    None
                }
            }
            VarStatus::Free => {
                if d < -tol {
                    Some((1.0, -d))
                } else if d > tol {
                    Some((-1.0, d))
                } else {
                    None
                }
            }
        }
    }

    /// Chooses the entering variable by candidate-list partial pricing;
    /// returns `(column, direction)`.
    fn price(&mut self) -> Option<(usize, f64)> {
        if self.bland {
            return self.price_bland();
        }
        // Re-price the cached candidates against the fresh duals; drop the
        // ones no longer attractive. Each candidate is scored against its
        // stored steepest-edge weight.
        let mut cand = std::mem::take(&mut self.cand);
        let mut weights = std::mem::take(&mut self.cand_weight);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut kept = 0usize;
        for i in 0..cand.len() {
            let j = cand[i];
            if let Some((dir, absd)) = self.eligibility(j) {
                let score = absd / weights[i];
                if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                    best = Some((j, dir, score));
                }
                cand[kept] = j;
                weights[kept] = weights[i];
                kept += 1;
            }
        }
        cand.truncate(kept);
        weights.truncate(kept);
        self.cand = cand;
        self.cand_weight = weights;
        // Serve from the cache only while its best stays competitive with
        // the scores seen at the last refill; grinding a stale list down to
        // its dregs costs far more iterations than a rescan costs columns.
        if let Some((j, dir, score)) = best {
            if score >= self.refill_floor {
                return Some((j, dir));
            }
        }
        // Refill: rotating section scan, continuing until enough candidates
        // accumulate for decent pivot diversity; a full rotation finding
        // nothing proves optimality for the current costs.
        self.cand.clear();
        self.cand_weight.clear();
        let n_total = self.n_total();
        let section = (n_total / 4).clamp(SECTION_MIN.min(n_total), n_total);
        let mut scanned = 0usize;
        // (column, direction, score, weight) with score = |d| / weight.
        let mut found: Vec<(usize, f64, f64, f64)> = Vec::new();
        while scanned < n_total {
            let start = self.scan_cursor;
            let len = section.min(n_total - scanned);
            // The rotating window wraps at most once; scanning it as two
            // contiguous runs keeps the hot loop free of index arithmetic.
            let first_end = (start + len).min(n_total);
            self.scan_run(start, first_end, &mut found);
            self.scan_run(0, (start + len).saturating_sub(n_total), &mut found);
            self.scan_cursor = (start + len) % n_total;
            scanned += len;
            if found.len() >= CAND_CAP {
                break;
            }
        }
        if found.is_empty() {
            // A full rotation saw nothing eligible — even a previously
            // cached best would have been rediscovered — so: optimal.
            return None;
        }
        found.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        found.truncate(CAND_CAP);
        if self.opts.exact_candidate_weights {
            self.exact_reweight(&mut found);
        }
        self.cand.extend(found.iter().map(|&(j, _, _, _)| j));
        self.cand_weight.extend(found.iter().map(|&(_, _, _, w)| w));
        let (j, dir, top, _) = found[0];
        self.refill_floor = top * REFILL_DECAY;
        Some((j, dir))
    }

    /// Replaces the refill finalists' static weights with exact steepest
    /// edge weights `√(1 + ‖B⁻¹a_j‖²)`, computed through batched multi-RHS
    /// FTRANs ([`SparseLu::solve_batch`], [`PRICE_BATCH`] lanes per pass
    /// over the factor) plus the eta file, then re-sorts by the exact
    /// score.
    fn exact_reweight(&mut self, found: &mut [(usize, f64, f64, f64)]) {
        let m = self.m;
        if self.batch_b.len() < m {
            self.batch_b.resize(m, [0.0; PRICE_BATCH]);
            self.batch_x.resize(m, [0.0; PRICE_BATCH]);
        }
        let mut start = 0;
        while start < found.len() {
            let lanes = (found.len() - start).min(PRICE_BATCH);
            for row in self.batch_b[..m].iter_mut() {
                *row = [0.0; PRICE_BATCH];
            }
            for (lane, &(j, ..)) in found[start..start + lanes].iter().enumerate() {
                let (rows, vals) = self.a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    self.batch_b[r][lane] = v;
                }
            }
            self.lu
                .as_ref()
                .expect("factorized")
                .solve_batch(&mut self.batch_b[..m], &mut self.batch_x[..m]);
            let batch_x = &mut self.batch_x;
            for eta in &self.etas {
                let xp = batch_x[eta.pos];
                let mut tr = [0.0f64; PRICE_BATCH];
                for (lane, t) in tr.iter_mut().enumerate() {
                    *t = xp[lane] / eta.pivot;
                }
                batch_x[eta.pos] = tr;
                for &(p, v) in &eta.entries {
                    let row = &mut batch_x[p];
                    for lane in 0..PRICE_BATCH {
                        row[lane] -= v * tr[lane];
                    }
                }
            }
            for (lane, entry) in found[start..start + lanes].iter_mut().enumerate() {
                let mut gamma = 1.0;
                for row in self.batch_x[..m].iter() {
                    gamma += row[lane] * row[lane];
                }
                let weight = gamma.sqrt();
                let absd = entry.2 * entry.3;
                entry.2 = absd / weight;
                entry.3 = weight;
            }
            self.stats.pricing_batched_cols += lanes as u64;
            start += lanes;
        }
        found.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    }

    /// Bland's rule: the eligible column with the lowest index.
    fn price_bland(&self) -> Option<(usize, f64)> {
        (0..self.n_total()).find_map(|j| self.eligibility(j).map(|(dir, _)| (j, dir)))
    }

    #[inline]
    fn reduced_cost(&self, j: usize) -> f64 {
        self.cost[j] - self.a.col_dot(j, &self.y)
    }

    /// t = B⁻¹ a_q with its nonzero pattern tracked symbolically through the
    /// LU solve and the eta file.
    fn ftran(&mut self, q: usize) {
        // Clear the previous tableau column.
        for &p in &self.t_pattern {
            self.t[p] = 0.0;
        }
        self.t_pattern.clear();
        {
            let (rows, vals) = self.a.col(q);
            for (&r, &v) in rows.iter().zip(vals) {
                self.fb[r] = v;
            }
            self.lu.as_ref().expect("factorized").solve_sparse(
                &mut self.fb,
                rows,
                &mut self.t,
                &mut self.t_pattern,
                &mut self.lu_scratch,
            );
        }
        if !self.etas.is_empty() {
            for &p in &self.t_pattern {
                self.t_mark[p] = true;
            }
            for eta in &self.etas {
                let tp = self.t[eta.pos];
                if tp == 0.0 {
                    continue;
                }
                let tr = tp / eta.pivot;
                self.t[eta.pos] = tr;
                for &(p, v) in &eta.entries {
                    if !self.t_mark[p] {
                        self.t_mark[p] = true;
                        self.t_pattern.push(p);
                    }
                    self.t[p] -= v * tr;
                }
            }
            for &p in &self.t_pattern {
                self.t_mark[p] = false;
            }
        }
        let t = &mut self.t;
        self.t_pattern.retain(|&p| {
            if t[p].abs() > 1e-12 {
                true
            } else {
                t[p] = 0.0;
                false
            }
        });
        self.stats.ftran_solves += 1;
        self.stats.ftran_nnz += self.t_pattern.len() as u64;
        self.stats.ftran_dim += self.m as u64;
    }

    fn ratio_test(&self, q: usize, dir: f64) -> RatioOutcome {
        let feas_tol = self.opts.feas_tol;
        // Bound-flip distance of the entering variable itself.
        let range = self.upper[q] - self.lower[q];
        let mut best_step = range; // may be +inf
        let mut best: Option<(usize, bool, f64)> = None; // (pos, to_upper, |pivot|)

        for &p in &self.t_pattern {
            let tp = self.t[p];
            if tp.abs() < PIVOT_TOL {
                continue;
            }
            let b = self.basis[p];
            // xb[p] changes at rate -dir*tp per unit of entering step.
            let rate = -dir * tp;
            let (limit, to_upper) = if rate < 0.0 {
                if self.lower[b] == f64::NEG_INFINITY {
                    continue;
                }
                (((self.xb[p] - self.lower[b]).max(0.0)) / -rate, false)
            } else {
                if self.upper[b] == f64::INFINITY {
                    continue;
                }
                (((self.upper[b] - self.xb[p]).max(0.0)) / rate, true)
            };
            if limit < best_step - feas_tol {
                best_step = limit;
                best = Some((p, to_upper, tp.abs()));
            } else if limit <= best_step + feas_tol {
                // Near-tie: prefer larger pivot magnitude (stability), or
                // smallest variable index under Bland's rule.
                if let Some((bp, _, babs)) = best {
                    let replace = if self.bland {
                        self.basis[p] < self.basis[bp]
                    } else {
                        tp.abs() > babs
                    };
                    if replace {
                        best_step = best_step.min(limit);
                        best = Some((p, to_upper, tp.abs()));
                    }
                } else if limit < best_step {
                    best_step = limit;
                    best = Some((p, to_upper, tp.abs()));
                }
            }
        }

        match best {
            None => {
                if best_step.is_finite() {
                    RatioOutcome::BoundFlip(best_step)
                } else {
                    RatioOutcome::Unbounded
                }
            }
            Some((pos, to_upper, _)) => {
                if range.is_finite() && range < best_step {
                    RatioOutcome::BoundFlip(range)
                } else {
                    RatioOutcome::Pivot {
                        pos,
                        step: best_step.max(0.0),
                        to_upper,
                    }
                }
            }
        }
    }

    /// Rebuilds the LU factorisation of the current basis and recomputes the
    /// basic values (washing out accumulated drift).
    ///
    /// When [`SimplexOptions::partial_refactor`] is on and a reference LU
    /// exists, the factorisation is *warm*: the longest common prefix of the
    /// previous and current basis column lists keeps its already-factored
    /// L/U columns verbatim ([`SparseLu::refactorize_from`]) and only the
    /// suffix is re-eliminated. Left-looking construction makes the result
    /// bit-for-bit identical to a from-scratch factorisation.
    fn refactorize(&mut self) -> Result<(), ()> {
        let a = &self.a;
        let basis = &self.basis;
        let keep = if self.opts.partial_refactor {
            lcp(&self.lu_basis, basis)
        } else {
            0
        };
        let column = |p: usize, buf: &mut Vec<(usize, f64)>| {
            let (rows, vals) = a.col(basis[p]);
            buf.extend(rows.iter().copied().zip(vals.iter().copied()));
        };
        let lu = match (keep > 0).then_some(self.lu.as_deref()).flatten() {
            Some(prev) => SparseLu::refactorize_from(prev, keep, column),
            None => SparseLu::factorize(self.m, column),
        }
        .map_err(|_| ())?;
        self.stats.refactorisations += 1;
        self.stats.cols_factored += (self.m - keep) as u64;
        self.stats.cols_reused += keep as u64;
        self.stats.fill_nnz = lu.fill_nnz();
        self.lu = Some(Rc::new(lu));
        Rc::make_mut(&mut self.lu_basis).clone_from(basis);
        self.etas.clear();
        self.snap_etas = None;
        // With the eta file just cleared this reduces to a plain LU solve.
        self.recompute_xb();
        Ok(())
    }

    /// Recomputes the basic values under the *current* factorisation
    /// (LU reference basis + eta file) without refactorising — used when
    /// only bounds changed while the basis and its factorisation are still
    /// valid.
    fn recompute_xb(&mut self) {
        let m = self.m;
        for p in 0..m {
            self.dense_b[p] = self.rhs[p];
        }
        for j in 0..self.n_total() {
            match self.status[j] {
                VarStatus::Basic(_) => {}
                s => {
                    let v = nonbasic_value(self.lower[j], self.upper[j], s);
                    if v != 0.0 {
                        self.a.col_axpy(j, -v, &mut self.dense_b);
                    }
                }
            }
        }
        self.lu
            .as_ref()
            .expect("factorized")
            .solve(&mut self.dense_b, &mut self.dense_a);
        // Push through the eta file, exactly as FTRAN does.
        for eta in &self.etas {
            let tr = self.dense_a[eta.pos] / eta.pivot;
            self.dense_a[eta.pos] = tr;
            if tr != 0.0 {
                for &(p, v) in &eta.entries {
                    self.dense_a[p] -= v * tr;
                }
            }
        }
        self.xb.copy_from_slice(&self.dense_a[..m]);
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot {
        pos: usize,
        step: f64,
        to_upper: bool,
    },
}

/// Length of the longest common prefix of two basis column lists — the
/// number of leading LU columns a warm partial refactorisation can reuse.
fn lcp(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[inline]
fn initial_bound_status(lower: f64, upper: f64) -> VarStatus {
    if lower.is_finite() && (lower.abs() <= upper.abs() || !upper.is_finite()) {
        VarStatus::AtLower
    } else if upper.is_finite() {
        VarStatus::AtUpper
    } else {
        VarStatus::Free
    }
}

#[inline]
fn nonbasic_value(lower: f64, upper: f64, status: VarStatus) -> f64 {
    match status {
        VarStatus::AtLower => lower,
        VarStatus::AtUpper => upper,
        VarStatus::Free => 0.0,
        VarStatus::Basic(_) => unreachable!("nonbasic_value on basic variable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, RowSense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn tiny_maximization() {
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, 0 ≤ x,y ≤ 10 → x=4, y=0.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 3.0);
        let y = lp.add_var(0.0, 10.0, 2.0);
        lp.add_row(RowSense::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 3.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 12.0);
        assert_close(s.values[x], 4.0);
        assert_close(s.values[y], 0.0);
    }

    #[test]
    fn classic_lp_with_interior_optimum_vertex() {
        // max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6 → x=3, y=1.5, obj=21.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 100.0, 5.0);
        let y = lp.add_var(0.0, 100.0, 4.0);
        lp.add_row(RowSense::Le, 24.0, &[(x, 6.0), (y, 4.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 2.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 21.0);
        assert_close(s.values[x], 3.0);
        assert_close(s.values[y], 1.5);
    }

    #[test]
    fn equality_rows_need_phase_one() {
        // min x + y s.t. x + y = 2, x − y = 0 → x=y=1, obj=2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Eq, 2.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Eq, 0.0, &[(x, 1.0), (y, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
        assert_close(s.values[x], 1.0);
        assert_close(s.values[y], 1.0);
    }

    #[test]
    fn ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≤ 4 → x=4, y=6, obj=26.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 4.0, 2.0);
        let y = lp.add_var(0.0, 100.0, 3.0);
        lp.add_row(RowSense::Ge, 10.0, &[(x, 1.0), (y, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 26.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 3 with 0 ≤ x ≤ 10.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 1.0, &[(x, 1.0)]);
        lp.add_row(RowSense::Ge, 3.0, &[(x, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with x ≥ 0 unbounded above, one irrelevant row.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let _x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, 1.0, 0.0);
        lp.add_row(RowSense::Le, 1.0, &[(y, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // max x + y s.t. x − y ≤ 0, x,y ∈ [0,1] → x=y=1: requires y to move
        // to its upper bound (bound flip or pivot).
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 1.0);
        lp.add_row(RowSense::Le, 0.0, &[(x, 1.0), (y, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn negative_rhs_equality() {
        // min x s.t. −x = −5 → x = 5.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Eq, -5.0, &[(x, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x], 5.0);
    }

    #[test]
    fn degenerate_instance_terminates() {
        // Many redundant rows through the same vertex.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        for k in 1..8 {
            lp.add_row(RowSense::Le, k as f64, &[(x, k as f64), (y, k as f64)]);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn solve_with_bounds_overrides() {
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 8.0, &[(x, 1.0)]);
        let s = lp.solve_with_bounds(&[0.0], &[3.0], &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn free_variable_override_rests_at_zero() {
        // Regression: a variable freed through bound overrides used to get
        // nonbasic status AtUpper and value +∞, poisoning the crash basis
        // activity. It must rest at zero and solve correctly.
        // min x s.t. x ≥ −3, x free → x = −3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Ge, -3.0, &[(x, 1.0)]);
        let s = lp.solve_with_bounds(
            &[f64::NEG_INFINITY],
            &[f64::INFINITY],
            &SimplexOptions::default(),
        );
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -3.0);
        assert_close(s.values[x], -3.0);
    }

    #[test]
    fn free_variable_maximization_hits_row_limit() {
        // max x s.t. x ≤ 5 with x free → 5 (the row, not a bound, binds).
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_row(RowSense::Le, 5.0, &[(x, 1.0)]);
        let s = lp.solve_with_bounds(
            &[f64::NEG_INFINITY],
            &[f64::INFINITY],
            &SimplexOptions::default(),
        );
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn warm_start_matches_cold_after_tightening() {
        // Solve, snapshot, tighten a bound (the B&B access pattern), and
        // verify the warm solve agrees with a cold one.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 3.0);
        let y = lp.add_var(0.0, 10.0, 2.0);
        lp.add_row(RowSense::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 3.0)]);

        let mut solver = SimplexSolver::new(&lp, SimplexOptions::default());
        let parent = solver.solve_from(None, &[0.0, 0.0], &[10.0, 10.0]);
        assert_eq!(parent.status, LpStatus::Optimal);
        let snap = solver.snapshot();

        for (lo, hi) in [
            ([0.0, 0.0], [2.5, 10.0]), // cut off the old optimum
            ([0.0, 1.0], [10.0, 10.0]),
            ([3.0, 0.0], [10.0, 0.5]),
            ([0.0, 0.0], [0.0, 0.0]), // everything fixed
        ] {
            let warm = solver.solve_from(Some(&snap), &lo, &hi);
            let cold = lp.solve_with_bounds(&lo, &hi, &SimplexOptions::default());
            assert_eq!(warm.status, cold.status, "bounds {lo:?}..{hi:?}");
            if warm.status == LpStatus::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-7,
                    "bounds {lo:?}..{hi:?}: warm {} vs cold {}",
                    warm.objective,
                    cold.objective
                );
            }
        }
    }

    #[test]
    fn snapshot_reuses_eta_rc_until_pivots_dirty_it() {
        // Branch & bound snapshots the same solved state once per branched
        // node; the eta file must be cloned once, not per snapshot.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 3.0);
        let y = lp.add_var(0.0, 10.0, 2.0);
        lp.add_row(RowSense::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 3.0)]);
        let mut solver = SimplexSolver::new(&lp, SimplexOptions::default());
        assert_eq!(
            solver.solve_from(None, &[0.0, 0.0], &[10.0, 10.0]).status,
            LpStatus::Optimal
        );
        let a = solver.snapshot();
        let b = solver.snapshot();
        assert!(Rc::ptr_eq(&a.etas, &b.etas), "unchanged eta file recloned");
        assert_eq!(solver.stats().snapshot_eta_clones, 1);
        // A solve that pivots (bound change forces re-optimisation) must
        // invalidate the cache: the next snapshot sees a different eta file.
        let warm = solver.solve_from(Some(&a), &[0.0, 0.0], &[2.5, 10.0]);
        assert_eq!(warm.status, LpStatus::Optimal);
        let c = solver.snapshot();
        assert!(
            !Rc::ptr_eq(&a.etas, &c.etas),
            "stale eta Rc served after pivoting"
        );
    }

    #[test]
    fn exact_candidate_weights_matches_static_weights() {
        // The exact steepest-edge refill weights change pivot order, not
        // answers: statuses and objectives must agree with the static path.
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let mut lp = LinearProgram::new();
            lp.set_maximize(true);
            let n = 6;
            let vars: Vec<usize> = (0..n).map(|_| lp.add_var(0.0, 8.0, rnd() * 4.0)).collect();
            for _ in 0..4 {
                let coeffs: Vec<(usize, f64)> = vars
                    .iter()
                    .filter_map(|&v| {
                        if rnd() < 0.7 {
                            Some((v, rnd() * 3.0 + 0.1))
                        } else {
                            None
                        }
                    })
                    .collect();
                if coeffs.is_empty() {
                    continue;
                }
                lp.add_row(RowSense::Le, 6.0 + rnd() * 10.0, &coeffs);
            }
            let lo = vec![0.0; n];
            let hi = vec![8.0; n];
            let static_w = lp.solve_with_bounds(&lo, &hi, &SimplexOptions::default());
            let exact_w = lp.solve_with_bounds(
                &lo,
                &hi,
                &SimplexOptions {
                    exact_candidate_weights: true,
                    ..SimplexOptions::default()
                },
            );
            assert_eq!(static_w.status, exact_w.status, "trial {trial}");
            if static_w.status == LpStatus::Optimal {
                assert!(
                    (static_w.objective - exact_w.objective).abs() < 1e-7,
                    "trial {trial}: static {} vs exact {}",
                    static_w.objective,
                    exact_w.objective
                );
            }
        }
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        // min x + y s.t. x + y ≥ 4, x,y ≤ 3: feasible. Tightening both to
        // ≤ 1 makes the system infeasible; the warm repair must report it.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 3.0, 1.0);
        let y = lp.add_var(0.0, 3.0, 1.0);
        lp.add_row(RowSense::Ge, 4.0, &[(x, 1.0), (y, 1.0)]);
        let mut solver = SimplexSolver::new(&lp, SimplexOptions::default());
        let parent = solver.solve_from(None, &[0.0, 0.0], &[3.0, 3.0]);
        assert_eq!(parent.status, LpStatus::Optimal);
        let snap = solver.snapshot();
        let child = solver.solve_from(Some(&snap), &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(child.status, LpStatus::Infeasible);
    }

    #[test]
    fn larger_randomised_vs_bruteforce_2d() {
        // Random 2-variable LPs cross-checked against a dense vertex
        // enumeration. Catches sign errors in pricing / ratio logic.
        let mut state = 0xdeadbeefu64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 2.0 - 1.0
        };
        for trial in 0..200 {
            let mut lp = LinearProgram::new();
            lp.set_maximize(true);
            let cx = rnd();
            let cy = rnd();
            let x = lp.add_var(0.0, 1.0, cx);
            let y = lp.add_var(0.0, 1.0, cy);
            let mut rows = Vec::new();
            for _ in 0..4 {
                let a = rnd();
                let b = rnd();
                let c = rnd() + 1.2; // keep origin feasible
                lp.add_row(RowSense::Le, c, &[(x, a), (y, b)]);
                rows.push((a, b, c));
            }
            let s = lp.solve();
            assert_eq!(s.status, LpStatus::Optimal, "trial {trial}");
            // brute force on a fine grid (origin is feasible so optimum ≥ 0 grid pt)
            let mut best = f64::NEG_INFINITY;
            let n = 200;
            for i in 0..=n {
                for jj in 0..=n {
                    let px = i as f64 / n as f64;
                    let py = jj as f64 / n as f64;
                    if rows.iter().all(|&(a, b, c)| a * px + b * py <= c + 1e-9) {
                        best = best.max(cx * px + cy * py);
                    }
                }
            }
            assert!(
                s.objective >= best - 1e-6,
                "trial {trial}: simplex {} < grid {}",
                s.objective,
                best
            );
            // and the simplex solution must itself be feasible
            for &(a, b, c) in &rows {
                assert!(
                    a * s.values[x] + b * s.values[y] <= c + 1e-6,
                    "trial {trial}"
                );
            }
        }
    }
}
