//! Bounded-variable two-phase revised simplex.
//!
//! Implementation notes:
//!
//! * Rows are converted to equalities with slack columns whose bounds encode
//!   the sense (`≤ → s ∈ [0, ∞)`, `≥ → s ∈ (−∞, 0]`, `= → s ∈ [0, 0]`).
//! * Phase 1 installs artificial columns only on rows whose slack start
//!   value violates its bounds, and minimises the sum of artificials; on
//!   success artificials are fixed to `[0, 0]` and phase 2 optimises the
//!   real objective.
//! * The basis inverse is kept as a sparse LU factorisation
//!   ([`crate::lu::SparseLu`]) of a reference basis plus a product-form eta
//!   file; the basis is refactorised every `refactor_interval` pivots, which
//!   also recomputes the basic values to wash out drift.
//! * Pricing is Dantzig (most negative reduced cost) with an automatic
//!   switch to Bland's rule after a long degenerate stall, restoring the
//!   termination guarantee.
//! * The ratio test performs bound flips for the entering variable when the
//!   opposite bound is reached first, and breaks near-ties by pivot
//!   magnitude for numerical stability.

use crate::lu::SparseLu;
use crate::problem::{LinearProgram, RowSense};
use crate::sparse::CscMatrix;

/// Options controlling the simplex method.
#[derive(Clone, Debug)]
pub struct SimplexOptions {
    /// Hard iteration cap; 0 means automatic (`1000 + 40·(m+n)`).
    pub max_iterations: usize,
    /// Pivots between basis refactorisations.
    pub refactor_interval: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Dual (reduced-cost) tolerance.
    pub opt_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 0,
            refactor_interval: 96,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            stall_threshold: 800,
        }
    }
}

/// Termination status of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists (phase 1 could not reach zero).
    Infeasible,
    /// Objective unbounded along a feasible ray.
    Unbounded,
    /// Iteration limit hit before convergence.
    IterationLimit,
    /// Numerical failure (singular basis after recovery attempts).
    Numerical,
}

/// Result of an LP solve.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Termination status; `objective`/`values` are meaningful for
    /// [`LpStatus::Optimal`] only.
    pub status: LpStatus,
    /// Objective value in the *user's* orientation (max or min).
    pub objective: f64,
    /// Values of the structural variables.
    pub values: Vec<f64>,
    /// Simplex iterations performed (both phases).
    pub iterations: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Eta {
    pos: usize,
    pivot: f64,
    // Entries of the FTRAN column t, excluding the pivot position.
    entries: Vec<(usize, f64)>,
}

const PIVOT_TOL: f64 = 1e-9;

struct Solver<'a> {
    m: usize,
    n_struct: usize,
    a: CscMatrix, // structural + slack + artificial columns
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>, // phase-dependent
    real_cost: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    rhs: Vec<f64>,
    lu: Option<SparseLu>,
    etas: Vec<Eta>,
    opts: &'a SimplexOptions,
    // scratch
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    y: Vec<f64>,
    t: Vec<f64>,
    t_pattern: Vec<usize>,
    iterations: usize,
    degenerate_streak: usize,
    bland: bool,
}

/// Solves `lp` with the given structural-variable bounds (callers may
/// override the model's own bounds, which branch & bound relies on).
pub fn solve_simplex(
    lp: &LinearProgram,
    lower: &[f64],
    upper: &[f64],
    opts: &SimplexOptions,
) -> LpSolution {
    let m = lp.num_rows();
    let n = lp.num_vars();
    for j in 0..n {
        if lower[j] > upper[j] {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
                iterations: 0,
            };
        }
    }
    if m == 0 {
        // Box-constrained optimum: each variable at its best finite bound.
        let mut values = vec![0.0; n];
        let mut obj = 0.0;
        let sign = if lp.is_maximize() { -1.0 } else { 1.0 };
        for j in 0..n {
            let c = sign * lp.obj[j];
            let v = if c > 0.0 {
                lower[j]
            } else if c < 0.0 {
                upper[j]
            } else {
                lower[j].max(upper[j].min(0.0))
            };
            if !v.is_finite() {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    objective: 0.0,
                    values: Vec::new(),
                    iterations: 0,
                };
            }
            values[j] = v;
            obj += lp.obj[j] * v;
        }
        return LpSolution {
            status: LpStatus::Optimal,
            objective: obj,
            values,
            iterations: 0,
        };
    }

    let mut solver = Solver::build(lp, lower, upper, opts);
    let (status, iterations) = solver.run();
    let mut objective = 0.0;
    let mut values = vec![0.0; n];
    if status == LpStatus::Optimal {
        for j in 0..n {
            let v = solver.value_of(j);
            values[j] = v;
            objective += lp.obj[j] * v;
        }
    }
    LpSolution {
        status,
        objective,
        values,
        iterations,
    }
}

impl<'a> Solver<'a> {
    fn build(
        lp: &LinearProgram,
        lower_s: &[f64],
        upper_s: &[f64],
        opts: &'a SimplexOptions,
    ) -> Self {
        let m = lp.num_rows();
        let n = lp.num_vars();
        let sign = if lp.is_maximize() { -1.0 } else { 1.0 };

        let mut columns: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n + m);
        let mut lower = Vec::with_capacity(n + 2 * m);
        let mut upper = Vec::with_capacity(n + 2 * m);
        let mut real_cost = Vec::with_capacity(n + 2 * m);
        for j in 0..n {
            columns.push(lp.cols[j].clone());
            lower.push(lower_s[j]);
            upper.push(upper_s[j]);
            real_cost.push(sign * lp.obj[j]);
        }
        // Slack columns.
        for i in 0..m {
            columns.push(vec![(i, 1.0)]);
            let (lo, hi) = match lp.sense[i] {
                RowSense::Le => (0.0, f64::INFINITY),
                RowSense::Ge => (f64::NEG_INFINITY, 0.0),
                RowSense::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(hi);
            real_cost.push(0.0);
        }

        // Initial nonbasic statuses for structural variables.
        let mut status = Vec::with_capacity(n + 2 * m);
        for j in 0..n {
            status.push(initial_bound_status(lower[j], upper[j]));
        }

        // Row activity with nonbasic structural values.
        let mut activity = vec![0.0; m];
        for j in 0..n {
            let v = nonbasic_value(lower[j], upper[j], status[j]);
            if v != 0.0 {
                for &(r, c) in &columns[j] {
                    activity[r] += c * v;
                }
            }
        }

        // Slack / artificial installation. Slack statuses occupy indices
        // n..n+m; artificial columns (and their statuses) strictly follow at
        // n+m.., keeping `is_artificial` a simple index test.
        let mut basis = Vec::with_capacity(m);
        let mut xb = Vec::with_capacity(m);
        let mut artificials: Vec<(usize, f64, f64)> = Vec::new(); // (row, sign, value)
        for i in 0..m {
            let sj = n + i;
            let want = lp.rhs[i] - activity[i];
            if want >= lower[sj] - opts.feas_tol && want <= upper[sj] + opts.feas_tol {
                status.push(VarStatus::Basic(i));
                basis.push(sj);
                xb.push(want);
            } else {
                // Slack pinned to its nearest bound; artificial covers the rest.
                let pinned = want.clamp(lower[sj], upper[sj]);
                status.push(if lower[sj].is_finite() && pinned == lower[sj] {
                    VarStatus::AtLower
                } else {
                    VarStatus::AtUpper
                });
                let residual = want - pinned;
                artificials.push((i, residual.signum(), residual.abs()));
                basis.push(usize::MAX); // patched below once index is known
                xb.push(residual.abs());
            }
        }
        for &(i, sign, _value) in &artificials {
            let aj = columns.len();
            columns.push(vec![(i, sign)]);
            lower.push(0.0);
            upper.push(f64::INFINITY);
            real_cost.push(0.0);
            status.push(VarStatus::Basic(i));
            basis[i] = aj;
        }

        let a = CscMatrix::from_columns(m, &columns);
        let n_total = a.ncols();
        debug_assert_eq!(status.len(), n_total);

        Solver {
            m,
            n_struct: n,
            a,
            lower,
            upper,
            cost: vec![0.0; n_total],
            real_cost,
            status,
            basis,
            xb,
            rhs: lp.rhs.clone(),
            lu: None,
            etas: Vec::new(),
            opts,
            scratch_a: vec![0.0; m],
            scratch_b: vec![0.0; m],
            y: vec![0.0; m],
            t: vec![0.0; m],
            t_pattern: Vec::new(),
            iterations: 0,
            degenerate_streak: 0,
            bland: false,
        }
    }

    #[inline]
    fn n_total(&self) -> usize {
        self.a.ncols()
    }

    #[inline]
    fn is_artificial(&self, j: usize) -> bool {
        j >= self.n_struct + self.m
    }

    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::Basic(p) => self.xb[p],
            s => nonbasic_value(self.lower[j], self.upper[j], s),
        }
    }

    fn max_iterations(&self) -> usize {
        if self.opts.max_iterations > 0 {
            self.opts.max_iterations
        } else {
            1000 + 40 * (self.m + self.n_total())
        }
    }

    fn run(&mut self) -> (LpStatus, usize) {
        if self.refactorize().is_err() {
            return (LpStatus::Numerical, self.iterations);
        }

        // Phase 1: minimise Σ artificials (if any are in the basis).
        let has_artificials = self.n_total() > self.n_struct + self.m;
        if has_artificials {
            for j in 0..self.n_total() {
                self.cost[j] = if self.is_artificial(j) { 1.0 } else { 0.0 };
            }
            match self.optimize() {
                Ok(()) => {}
                Err(st) => return (st, self.iterations),
            }
            let infeas: f64 = (self.n_struct + self.m..self.n_total())
                .map(|j| self.value_of(j))
                .sum();
            if infeas > self.opts.feas_tol * 10.0 * (1.0 + self.m as f64).sqrt() {
                return (LpStatus::Infeasible, self.iterations);
            }
            // Fix artificials at zero for phase 2.
            for j in self.n_struct + self.m..self.n_total() {
                self.lower[j] = 0.0;
                self.upper[j] = 0.0;
            }
        }

        // Phase 2: the real objective.
        self.cost.copy_from_slice(&self.real_cost);
        self.bland = false;
        self.degenerate_streak = 0;
        match self.optimize() {
            Ok(()) => (LpStatus::Optimal, self.iterations),
            Err(st) => (st, self.iterations),
        }
    }

    /// Runs primal iterations until optimality for the current cost vector.
    fn optimize(&mut self) -> Result<(), LpStatus> {
        let max_iters = self.max_iterations();
        loop {
            if self.iterations >= max_iters {
                return Err(LpStatus::IterationLimit);
            }
            self.iterations += 1;

            self.compute_duals();
            let entering = self.price();
            let Some((q, dir)) = entering else {
                return Ok(()); // optimal for current costs
            };
            self.ftran(q);

            match self.ratio_test(q, dir) {
                RatioOutcome::Unbounded => return Err(LpStatus::Unbounded),
                RatioOutcome::BoundFlip(step) => {
                    // Entering variable jumps to its opposite bound.
                    let delta = dir * step;
                    for &p in &self.t_pattern {
                        self.xb[p] -= delta * self.t[p];
                    }
                    self.status[q] = match self.status[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        b => b,
                    };
                    if step <= self.opts.feas_tol {
                        self.note_degenerate(true);
                    } else {
                        self.note_degenerate(false);
                    }
                }
                RatioOutcome::Pivot {
                    pos,
                    step,
                    to_upper,
                } => {
                    let delta = dir * step;
                    let xq_new =
                        nonbasic_value(self.lower[q], self.upper[q], self.status[q]) + delta;
                    for &p in &self.t_pattern {
                        self.xb[p] -= delta * self.t[p];
                    }
                    let leaving = self.basis[pos];
                    self.status[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.basis[pos] = q;
                    self.status[q] = VarStatus::Basic(pos);
                    self.xb[pos] = xq_new;

                    // Record the eta before clearing t.
                    let pivot = self.t[pos];
                    let mut entries = Vec::with_capacity(self.t_pattern.len());
                    for &p in &self.t_pattern {
                        if p != pos && self.t[p] != 0.0 {
                            entries.push((p, self.t[p]));
                        }
                    }
                    self.etas.push(Eta {
                        pos,
                        pivot,
                        entries,
                    });
                    self.note_degenerate(step <= self.opts.feas_tol);

                    if self.etas.len() >= self.opts.refactor_interval {
                        self.refactorize().map_err(|_| LpStatus::Numerical)?;
                    }
                }
            }
        }
    }

    fn note_degenerate(&mut self, degenerate: bool) {
        if degenerate {
            self.degenerate_streak += 1;
            if self.degenerate_streak > self.opts.stall_threshold {
                self.bland = true;
            }
        } else {
            self.degenerate_streak = 0;
            self.bland = false;
        }
    }

    /// y = Bᵀ⁻¹ c_B via the eta file and the LU transpose solve.
    fn compute_duals(&mut self) {
        let m = self.m;
        let u = &mut self.scratch_a;
        for p in 0..m {
            u[p] = self.cost[self.basis[p]];
        }
        for eta in self.etas.iter().rev() {
            // uᵀ ← uᵀ E⁻¹: only component `pos` changes.
            let mut dot = 0.0;
            for &(p, v) in &eta.entries {
                dot += v * u[p];
            }
            u[eta.pos] = (u[eta.pos] - dot) / eta.pivot;
        }
        self.lu
            .as_ref()
            .expect("factorized")
            .solve_transpose(u, &mut self.y);
    }

    /// Chooses the entering variable; returns `(column, direction)` where
    /// direction +1 means increase from lower bound, −1 decrease from upper.
    fn price(&self) -> Option<(usize, f64)> {
        let tol = self.opts.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.n_total() {
            let (dir, d) = match self.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::AtLower => {
                    if self.upper[j] - self.lower[j] <= 0.0 {
                        continue; // fixed
                    }
                    let d = self.reduced_cost(j);
                    if d < -tol {
                        (1.0, -d)
                    } else {
                        continue;
                    }
                }
                VarStatus::AtUpper => {
                    if self.upper[j] - self.lower[j] <= 0.0 {
                        continue;
                    }
                    let d = self.reduced_cost(j);
                    if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            if self.bland {
                return Some((j, dir));
            }
            if best.map(|(_, _, s)| d > s).unwrap_or(true) {
                best = Some((j, dir, d));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    #[inline]
    fn reduced_cost(&self, j: usize) -> f64 {
        self.cost[j] - self.a.col_dot(j, &self.y)
    }

    /// t = B⁻¹ a_q (dense with recorded pattern).
    fn ftran(&mut self, q: usize) {
        let m = self.m;
        for p in 0..m {
            self.scratch_a[p] = 0.0;
        }
        {
            let (rows, vals) = self.a.col(q);
            for (&r, &v) in rows.iter().zip(vals) {
                self.scratch_a[r] = v;
            }
        }
        self.lu
            .as_ref()
            .expect("factorized")
            .solve(&mut self.scratch_a, &mut self.t);
        for eta in &self.etas {
            let tr = self.t[eta.pos] / eta.pivot;
            self.t[eta.pos] = tr;
            if tr != 0.0 {
                for &(p, v) in &eta.entries {
                    self.t[p] -= v * tr;
                }
            }
        }
        self.t_pattern.clear();
        for p in 0..m {
            if self.t[p].abs() > 1e-12 {
                self.t_pattern.push(p);
            } else {
                self.t[p] = 0.0;
            }
        }
    }

    fn ratio_test(&self, q: usize, dir: f64) -> RatioOutcome {
        let feas_tol = self.opts.feas_tol;
        // Bound-flip distance of the entering variable itself.
        let range = self.upper[q] - self.lower[q];
        let mut best_step = range; // may be +inf
        let mut best: Option<(usize, bool, f64)> = None; // (pos, to_upper, |pivot|)

        for &p in &self.t_pattern {
            let tp = self.t[p];
            if tp.abs() < PIVOT_TOL {
                continue;
            }
            let b = self.basis[p];
            // xb[p] changes at rate -dir*tp per unit of entering step.
            let rate = -dir * tp;
            let (limit, to_upper) = if rate < 0.0 {
                if self.lower[b] == f64::NEG_INFINITY {
                    continue;
                }
                (((self.xb[p] - self.lower[b]).max(0.0)) / -rate, false)
            } else {
                if self.upper[b] == f64::INFINITY {
                    continue;
                }
                (((self.upper[b] - self.xb[p]).max(0.0)) / rate, true)
            };
            if limit < best_step - feas_tol {
                best_step = limit;
                best = Some((p, to_upper, tp.abs()));
            } else if limit <= best_step + feas_tol {
                // Near-tie: prefer larger pivot magnitude (stability), or
                // smallest variable index under Bland's rule.
                if let Some((bp, _, babs)) = best {
                    let replace = if self.bland {
                        self.basis[p] < self.basis[bp]
                    } else {
                        tp.abs() > babs
                    };
                    if replace {
                        best_step = best_step.min(limit);
                        best = Some((p, to_upper, tp.abs()));
                    }
                } else if limit < best_step {
                    best_step = limit;
                    best = Some((p, to_upper, tp.abs()));
                }
            }
        }

        match best {
            None => {
                if best_step.is_finite() {
                    RatioOutcome::BoundFlip(best_step)
                } else {
                    RatioOutcome::Unbounded
                }
            }
            Some((pos, to_upper, _)) => {
                if range.is_finite() && range < best_step {
                    RatioOutcome::BoundFlip(range)
                } else {
                    RatioOutcome::Pivot {
                        pos,
                        step: best_step.max(0.0),
                        to_upper,
                    }
                }
            }
        }
    }

    /// Rebuilds the LU factorisation of the current basis and recomputes the
    /// basic values from scratch (washing out accumulated drift).
    fn refactorize(&mut self) -> Result<(), ()> {
        let a = &self.a;
        let basis = &self.basis;
        let lu = SparseLu::factorize(self.m, |p, buf| {
            let (rows, vals) = a.col(basis[p]);
            buf.extend(rows.iter().copied().zip(vals.iter().copied()));
        })
        .map_err(|_| ())?;
        self.lu = Some(lu);
        self.etas.clear();

        // xb = B⁻¹ (rhs − Σ nonbasic a_j v_j)
        let m = self.m;
        for p in 0..m {
            self.scratch_b[p] = self.rhs[p];
        }
        for j in 0..self.n_total() {
            match self.status[j] {
                VarStatus::Basic(_) => {}
                s => {
                    let v = nonbasic_value(self.lower[j], self.upper[j], s);
                    if v != 0.0 {
                        self.a.col_axpy(j, -v, &mut self.scratch_b);
                    }
                }
            }
        }
        let lu = self.lu.as_ref().unwrap();
        lu.solve(&mut self.scratch_b, &mut self.scratch_a);
        self.xb.copy_from_slice(&self.scratch_a[..m]);
        Ok(())
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot {
        pos: usize,
        step: f64,
        to_upper: bool,
    },
}

#[inline]
fn initial_bound_status(lower: f64, upper: f64) -> VarStatus {
    if lower.is_finite() && (lower.abs() <= upper.abs() || !upper.is_finite()) {
        VarStatus::AtLower
    } else {
        VarStatus::AtUpper
    }
}

#[inline]
fn nonbasic_value(lower: f64, upper: f64, status: VarStatus) -> f64 {
    match status {
        VarStatus::AtLower => lower,
        VarStatus::AtUpper => upper,
        VarStatus::Basic(_) => unreachable!("nonbasic_value on basic variable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, RowSense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn tiny_maximization() {
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, 0 ≤ x,y ≤ 10 → x=4, y=0.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 3.0);
        let y = lp.add_var(0.0, 10.0, 2.0);
        lp.add_row(RowSense::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 3.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 12.0);
        assert_close(s.values[x], 4.0);
        assert_close(s.values[y], 0.0);
    }

    #[test]
    fn classic_lp_with_interior_optimum_vertex() {
        // max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6 → x=3, y=1.5, obj=21.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 100.0, 5.0);
        let y = lp.add_var(0.0, 100.0, 4.0);
        lp.add_row(RowSense::Le, 24.0, &[(x, 6.0), (y, 4.0)]);
        lp.add_row(RowSense::Le, 6.0, &[(x, 1.0), (y, 2.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 21.0);
        assert_close(s.values[x], 3.0);
        assert_close(s.values[y], 1.5);
    }

    #[test]
    fn equality_rows_need_phase_one() {
        // min x + y s.t. x + y = 2, x − y = 0 → x=y=1, obj=2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Eq, 2.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(RowSense::Eq, 0.0, &[(x, 1.0), (y, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
        assert_close(s.values[x], 1.0);
        assert_close(s.values[y], 1.0);
    }

    #[test]
    fn ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≤ 4 → x=4, y=6, obj=26.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 4.0, 2.0);
        let y = lp.add_var(0.0, 100.0, 3.0);
        lp.add_row(RowSense::Ge, 10.0, &[(x, 1.0), (y, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 26.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 3 with 0 ≤ x ≤ 10.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 1.0, &[(x, 1.0)]);
        lp.add_row(RowSense::Ge, 3.0, &[(x, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with x ≥ 0 unbounded above, one irrelevant row.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let _x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, 1.0, 0.0);
        lp.add_row(RowSense::Le, 1.0, &[(y, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // max x + y s.t. x − y ≤ 0, x,y ∈ [0,1] → x=y=1: requires y to move
        // to its upper bound (bound flip or pivot).
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 1.0);
        lp.add_row(RowSense::Le, 0.0, &[(x, 1.0), (y, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn negative_rhs_equality() {
        // min x s.t. −x = −5 → x = 5.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Eq, -5.0, &[(x, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x], 5.0);
    }

    #[test]
    fn degenerate_instance_terminates() {
        // Many redundant rows through the same vertex.
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        for k in 1..8 {
            lp.add_row(RowSense::Le, k as f64, &[(x, k as f64), (y, k as f64)]);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn solve_with_bounds_overrides() {
        let mut lp = LinearProgram::new();
        lp.set_maximize(true);
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_row(RowSense::Le, 8.0, &[(x, 1.0)]);
        let s = lp.solve_with_bounds(&[0.0], &[3.0], &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn larger_randomised_vs_bruteforce_2d() {
        // Random 2-variable LPs cross-checked against a dense vertex
        // enumeration. Catches sign errors in pricing / ratio logic.
        let mut state = 0xdeadbeefu64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 2.0 - 1.0
        };
        for trial in 0..200 {
            let mut lp = LinearProgram::new();
            lp.set_maximize(true);
            let cx = rnd();
            let cy = rnd();
            let x = lp.add_var(0.0, 1.0, cx);
            let y = lp.add_var(0.0, 1.0, cy);
            let mut rows = Vec::new();
            for _ in 0..4 {
                let a = rnd();
                let b = rnd();
                let c = rnd() + 1.2; // keep origin feasible
                lp.add_row(RowSense::Le, c, &[(x, a), (y, b)]);
                rows.push((a, b, c));
            }
            let s = lp.solve();
            assert_eq!(s.status, LpStatus::Optimal, "trial {trial}");
            // brute force on a fine grid (origin is feasible so optimum ≥ 0 grid pt)
            let mut best = f64::NEG_INFINITY;
            let n = 200;
            for i in 0..=n {
                for jj in 0..=n {
                    let px = i as f64 / n as f64;
                    let py = jj as f64 / n as f64;
                    if rows.iter().all(|&(a, b, c)| a * px + b * py <= c + 1e-9) {
                        best = best.max(cx * px + cy * py);
                    }
                }
            }
            assert!(
                s.objective >= best - 1e-6,
                "trial {trial}: simplex {} < grid {}",
                s.objective,
                best
            );
            // and the simplex solution must itself be feasible
            for &(a, b, c) in &rows {
                assert!(
                    a * s.values[x] + b * s.values[y] <= c + 1e-6,
                    "trial {trial}"
                );
            }
        }
    }
}
