//! A from-scratch linear/mixed-integer programming substrate.
//!
//! The paper solves its §3.1 MILP (and the rational relaxation used by the
//! RRND/RRNZ rounding algorithms) with GLPK or CPLEX. Neither is available
//! here, so this crate implements the required solver stack natively:
//!
//! * [`sparse`] — compressed sparse column matrices;
//! * [`lu`] — sparse LU factorisation with partial pivoting
//!   (left-looking Gilbert–Peierls), including transpose solves and
//!   pattern-tracking sparse right-hand-side solves;
//! * [`simplex`] — a bounded-variable, two-phase revised simplex method with
//!   product-form-of-the-inverse updates, periodic refactorisation,
//!   candidate-list partial pricing, and a persistent
//!   [`SimplexSolver`] that warm-starts from [`BasisSnapshot`]s;
//! * [`milp`] — depth-first branch & bound on integer variables, each node
//!   warm-started from its parent's basis;
//! * [`yield_lp`] — the paper's Equations 1–7 encoded from a
//!   [`vmplace_model::ProblemInstance`], with a presolve pass that removes
//!   impossible placements and never-binding elementary rows.
//!
//! The simplex method is deliberately general (arbitrary bounds, ≤/≥/=
//! rows) so the MILP search can tighten variable bounds without rebuilding
//! the matrix.

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the paper's subscript
// notation (d over dimensions, i/j over rows/services) or index several
// arrays in lockstep.
#![allow(clippy::needless_range_loop)]

pub mod lu;
pub mod milp;
pub mod problem;
pub mod simplex;
pub mod sparse;
pub mod yield_lp;

pub use milp::{solve_milp, MilpOptions, MilpResult, MilpSolver, MilpStatus};
pub use problem::{LinearProgram, RowSense, VarId};
pub use simplex::{
    BasisSnapshot, FactorStats, LpSolution, LpStatus, SimplexOptions, SimplexSolver,
};
pub use yield_lp::{RelaxedSolution, YieldLp};
