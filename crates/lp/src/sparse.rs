//! Compressed sparse column (CSC) matrices.
//!
//! The simplex method accesses the constraint matrix strictly by column
//! (pricing computes `yᵀ·a_j`, FTRAN solves against one column), so CSC is
//! the only layout we need.

/// A sparse matrix in compressed sparse column format.
#[derive(Clone, Debug)]
pub struct CscMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An empty matrix with `nrows` rows and no columns yet; grow it with
    /// [`CscMatrix::push_column`].
    pub fn new(nrows: usize) -> Self {
        CscMatrix {
            nrows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one column. Entries may be unsorted and may contain
    /// duplicate rows (summed); exact-zero sums are dropped. Returns the
    /// index of the new column.
    pub fn push_column(&mut self, entries: &[(usize, f64)]) -> usize {
        let mut buf: Vec<(usize, f64)> = entries.to_vec();
        buf.sort_unstable_by_key(|&(r, _)| r);
        let mut i = 0;
        while i < buf.len() {
            let r = buf[i].0;
            debug_assert!(
                r < self.nrows,
                "row index {r} out of bounds ({} rows)",
                self.nrows
            );
            let mut v = 0.0;
            while i < buf.len() && buf[i].0 == r {
                v += buf[i].1;
                i += 1;
            }
            if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
        self.col_ptr.len() - 2
    }

    /// Builds a CSC matrix from per-column entry lists. Entries within a
    /// column may be unsorted and may contain duplicates (summed).
    pub fn from_columns(nrows: usize, columns: &[Vec<(usize, f64)>]) -> Self {
        let mut m = CscMatrix::new(nrows);
        m.row_idx.reserve(columns.iter().map(Vec::len).sum());
        for col in columns {
            m.push_column(col);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The (row indices, values) of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += v * y[r];
        }
        acc
    }

    /// Scatters `scale × column j` into a dense vector: `out[r] += scale·v`.
    #[inline]
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += scale * v;
        }
    }

    /// Dense `m×n` reconstruction (tests only; quadratic memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols()]; self.nrows];
        for j in 0..self.ncols() {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                out[r][j] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_and_dedups() {
        let m = CscMatrix::from_columns(
            3,
            &[vec![(2, 1.0), (0, 2.0), (2, 3.0)], vec![], vec![(1, -1.0)]],
        );
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 4.0]);
        assert_eq!(m.col(1).0.len(), 0);
    }

    #[test]
    fn drops_exact_zero_sums() {
        let m = CscMatrix::from_columns(2, &[vec![(0, 1.0), (0, -1.0)]]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dot_and_axpy() {
        let m = CscMatrix::from_columns(2, &[vec![(0, 2.0), (1, 3.0)]]);
        assert_eq!(m.col_dot(0, &[1.0, 10.0]), 32.0);
        let mut out = vec![0.0, 1.0];
        m.col_axpy(0, 0.5, &mut out);
        assert_eq!(out, vec![1.0, 2.5]);
    }

    #[test]
    fn push_column_matches_from_columns() {
        let cols = vec![vec![(2, 1.0), (0, 2.0), (2, 3.0)], vec![], vec![(1, -1.0)]];
        let whole = CscMatrix::from_columns(3, &cols);
        let mut grown = CscMatrix::new(3);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(grown.push_column(col), j);
        }
        assert_eq!(grown.to_dense(), whole.to_dense());
    }

    #[test]
    fn to_dense_roundtrip() {
        let cols = vec![vec![(0, 1.0)], vec![(1, 5.0), (0, -2.0)]];
        let m = CscMatrix::from_columns(2, &cols);
        assert_eq!(m.to_dense(), vec![vec![1.0, -2.0], vec![0.0, 5.0]]);
    }
}
