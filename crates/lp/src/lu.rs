//! Sparse LU factorisation with partial pivoting.
//!
//! Left-looking Gilbert–Peierls: each column of the input matrix is
//! processed by a sparse triangular solve against the already-computed part
//! of `L` (reachability found by DFS over the column graph), followed by
//! partial pivoting on the not-yet-pivoted rows.
//!
//! The factorisation satisfies `P·B = L·U` with `L` unit lower triangular
//! and `U` upper triangular in pivot order; `P` maps pivot order to original
//! row indices. Both ordinary and transpose solves are provided — the
//! simplex method needs `B·x = a` (FTRAN) and `Bᵀ·y = c_B` (BTRAN) — in
//! dense, sparsity-exploiting, and batched multi-RHS variants.
//!
//! Because the construction is left-looking, column `j` of `L`/`U` depends
//! only on input columns `0..=j` (and the pivot rows they chose). A new
//! factorisation whose leading columns match an existing one can therefore
//! reuse that prefix verbatim — see [`SparseLu::refactorize_from`] — and the
//! result is bit-for-bit identical to refactorising from scratch; no
//! separate pivot-compatibility check is needed.

/// Error returned when the matrix is numerically singular.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularMatrix {
    /// Column at which no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

const PIVOT_TOL: f64 = 1e-11;
const UNPIVOTED: usize = usize::MAX;

/// Reusable scratch space for [`SparseLu::solve_sparse`] and
/// [`SparseLu::solve_transpose_sparse`].
///
/// Holds the DFS markers and stacks of the symbolic phases so repeated
/// solves (the simplex FTRAN/BTRAN inner loops) allocate nothing. One
/// instance may be shared across factorisations of different matrices; it
/// grows to the largest dimension seen.
#[derive(Clone, Debug, Default)]
pub struct SolveScratch {
    visited: Vec<bool>,
    stack: Vec<(usize, usize)>,
    reach_l: Vec<usize>,
    reach_u: Vec<usize>,
}

impl SolveScratch {
    fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, false);
        }
    }
}

/// A sparse LU factorisation of a square matrix.
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    // L (unit diagonal implicit), stored by column in *original* row indices.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    // U stored by column in *pivot* indices (strictly above diagonal).
    u_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    diag: Vec<f64>,
    // pivot_row[k] = original row pivoted at step k; pivot_of_row inverse.
    pivot_row: Vec<usize>,
    pivot_of_row: Vec<usize>,
    // Row-wise (CSR) *pattern* mirrors, values omitted, used by the sparse
    // transpose symbolic walks: `ut` lists for each pivot m the columns
    // k > m whose U column contains row m; `lt` lists for each pivot p the
    // columns k < p whose L column contains original row `pivot_row[p]`.
    ut_ptr: Vec<usize>,
    ut_cols: Vec<usize>,
    lt_ptr: Vec<usize>,
    lt_cols: Vec<usize>,
}

impl SparseLu {
    fn empty(n: usize) -> SparseLu {
        SparseLu {
            n,
            l_ptr: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_ptr: vec![0],
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            diag: vec![0.0; n],
            pivot_row: vec![0; n],
            pivot_of_row: vec![UNPIVOTED; n],
            ut_ptr: Vec::new(),
            ut_cols: Vec::new(),
            lt_ptr: Vec::new(),
            lt_cols: Vec::new(),
        }
    }

    /// Factorises an `n×n` matrix given by a column-provider callback:
    /// `column(j, buf)` must fill `buf` with the `(row, value)` entries of
    /// column `j` (unsorted is fine, duplicates are not allowed).
    pub fn factorize<F>(n: usize, mut column: F) -> Result<SparseLu, SingularMatrix>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let mut lu = SparseLu::empty(n);
        lu.factorize_columns(0, &mut column)?;
        lu.build_row_patterns();
        Ok(lu)
    }

    /// Factorises a matrix that shares its leading `keep` columns with
    /// `prev`, reusing the already-computed `L`/`U` prefix.
    ///
    /// `column` is only consulted for columns `keep..n`. Left-looking
    /// construction makes column `j` a function of input columns `0..=j`
    /// alone, so the reused prefix — and the remainder built on top of it —
    /// is bit-for-bit identical to a full [`SparseLu::factorize`] of the
    /// whole matrix. `keep` is typically the longest common prefix of the
    /// old and new simplex basis column lists.
    pub fn refactorize_from<F>(
        prev: &SparseLu,
        keep: usize,
        mut column: F,
    ) -> Result<SparseLu, SingularMatrix>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        debug_assert!(keep <= prev.n);
        let mut lu = prev.prefix(keep);
        lu.factorize_columns(keep, &mut column)?;
        lu.build_row_patterns();
        Ok(lu)
    }

    /// A partially-factorised copy holding only columns `0..keep`.
    fn prefix(&self, keep: usize) -> SparseLu {
        let ln = self.l_ptr[keep];
        let un = self.u_ptr[keep];
        let mut pivot_of_row = vec![UNPIVOTED; self.n];
        let mut pivot_row = vec![0; self.n];
        pivot_row[..keep].copy_from_slice(&self.pivot_row[..keep]);
        for (k, &r) in pivot_row[..keep].iter().enumerate() {
            pivot_of_row[r] = k;
        }
        let mut diag = vec![0.0; self.n];
        diag[..keep].copy_from_slice(&self.diag[..keep]);
        SparseLu {
            n: self.n,
            l_ptr: self.l_ptr[..=keep].to_vec(),
            l_rows: self.l_rows[..ln].to_vec(),
            l_vals: self.l_vals[..ln].to_vec(),
            u_ptr: self.u_ptr[..=keep].to_vec(),
            u_rows: self.u_rows[..un].to_vec(),
            u_vals: self.u_vals[..un].to_vec(),
            diag,
            pivot_row,
            pivot_of_row,
            ut_ptr: Vec::new(),
            ut_cols: Vec::new(),
            lt_ptr: Vec::new(),
            lt_cols: Vec::new(),
        }
    }

    /// Runs the left-looking loop for columns `start..n`. Columns `0..start`
    /// must already be factored (`l_ptr`/`u_ptr` have `start + 1` entries).
    fn factorize_columns<F>(&mut self, start: usize, column: &mut F) -> Result<(), SingularMatrix>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let n = self.n;
        let mut x = vec![0.0f64; n]; // dense accumulator
        let mut in_pattern = vec![false; n]; // row -> currently in pattern
        let mut pattern: Vec<usize> = Vec::new(); // touched rows
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        let mut reached: Vec<usize> = Vec::new(); // pivot indices to apply
        let mut visited = vec![false; n]; // pivot index -> visited this column
        let mut stack: Vec<(usize, usize)> = Vec::new(); // DFS (pivot, l-cursor)

        for j in start..n {
            colbuf.clear();
            column(j, &mut colbuf);

            // Scatter column j and collect DFS roots.
            pattern.clear();
            reached.clear();
            for &(r, v) in &colbuf {
                debug_assert!(r < n);
                if !in_pattern[r] {
                    in_pattern[r] = true;
                    pattern.push(r);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
            }

            // Symbolic phase: find every pivot column reachable from the
            // pattern through L (fill-in), iteratively to bound stack depth.
            for pi in 0..pattern.len() {
                let r = pattern[pi];
                let k0 = self.pivot_of_row[r];
                if k0 == UNPIVOTED || visited[k0] {
                    continue;
                }
                visited[k0] = true;
                stack.push((k0, self.l_ptr[k0]));
                while let Some(&(k, cursor)) = stack.last() {
                    let end = self.l_ptr[k + 1];
                    let mut next_child = None;
                    let mut c = cursor;
                    while c < end {
                        let r2 = self.l_rows[c];
                        c += 1;
                        let k2 = self.pivot_of_row[r2];
                        if k2 != UNPIVOTED && !visited[k2] {
                            next_child = Some(k2);
                            break;
                        }
                    }
                    stack.last_mut().unwrap().1 = c;
                    match next_child {
                        Some(k2) => {
                            visited[k2] = true;
                            stack.push((k2, self.l_ptr[k2]));
                        }
                        None => {
                            reached.push(k);
                            stack.pop();
                        }
                    }
                }
            }
            // Dependencies always point from smaller to larger pivot index,
            // so ascending order is a valid elimination order.
            reached.sort_unstable();

            // Numeric phase: sparse lower-triangular solve.
            for &k in &reached {
                visited[k] = false; // reset for next column
                let xk = x[self.pivot_row[k]];
                if xk == 0.0 {
                    continue;
                }
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    let r2 = self.l_rows[idx];
                    if !in_pattern[r2] {
                        in_pattern[r2] = true;
                        pattern.push(r2);
                        x[r2] = 0.0;
                    }
                    x[r2] -= self.l_vals[idx] * xk;
                }
            }

            // Partial pivoting over not-yet-pivoted rows.
            let mut best_row = UNPIVOTED;
            let mut best_abs = 0.0f64;
            for &r in &pattern {
                if self.pivot_of_row[r] == UNPIVOTED {
                    let a = x[r].abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = r;
                    }
                }
            }
            if best_row == UNPIVOTED || best_abs <= PIVOT_TOL {
                // Clean up scratch before erroring out.
                for &r in &pattern {
                    in_pattern[r] = false;
                    x[r] = 0.0;
                }
                return Err(SingularMatrix { column: j });
            }

            // Emit U column (pivoted rows) and L column (unpivoted rows).
            for &r in &pattern {
                let k = self.pivot_of_row[r];
                if k != UNPIVOTED && x[r] != 0.0 {
                    self.u_rows.push(k);
                    self.u_vals.push(x[r]);
                }
            }
            self.u_ptr.push(self.u_rows.len());
            let pivot_val = x[best_row];
            self.diag[j] = pivot_val;
            for &r in &pattern {
                if self.pivot_of_row[r] == UNPIVOTED && r != best_row && x[r] != 0.0 {
                    self.l_rows.push(r);
                    self.l_vals.push(x[r] / pivot_val);
                }
            }
            self.l_ptr.push(self.l_rows.len());
            self.pivot_of_row[best_row] = j;
            self.pivot_row[j] = best_row;

            // Clear scratch.
            for &r in &pattern {
                in_pattern[r] = false;
                x[r] = 0.0;
            }
        }
        Ok(())
    }

    /// Builds the row-wise pattern mirrors of `U` and `L` (counting sort;
    /// values are not duplicated). These drive the symbolic reachability of
    /// [`SparseLu::solve_transpose_sparse`].
    fn build_row_patterns(&mut self) {
        let n = self.n;
        // U: entry (m, k) lives in column k with u_rows == m; mirror keyed
        // by m. The two-slot shift lets `ut_ptr[m + 1]` double as the fill
        // cursor for row m and land on the final CSR offsets.
        self.ut_ptr.clear();
        self.ut_ptr.resize(n + 2, 0);
        for &m in &self.u_rows {
            self.ut_ptr[m + 2] += 1;
        }
        for i in 2..n + 2 {
            self.ut_ptr[i] += self.ut_ptr[i - 1];
        }
        self.ut_cols.clear();
        self.ut_cols.resize(self.u_rows.len(), 0);
        for k in 0..n {
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                let m = self.u_rows[idx];
                self.ut_cols[self.ut_ptr[m + 1]] = k;
                self.ut_ptr[m + 1] += 1;
            }
        }
        self.ut_ptr.pop();

        // L: entry in column k with original row r belongs to pivot
        // p = pivot_of_row[r] > k; mirror keyed by p.
        self.lt_ptr.clear();
        self.lt_ptr.resize(n + 2, 0);
        for &r in &self.l_rows {
            self.lt_ptr[self.pivot_of_row[r] + 2] += 1;
        }
        for i in 2..n + 2 {
            self.lt_ptr[i] += self.lt_ptr[i - 1];
        }
        self.lt_cols.clear();
        self.lt_cols.resize(self.l_rows.len(), 0);
        for k in 0..n {
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                let p = self.pivot_of_row[self.l_rows[idx]];
                self.lt_cols[self.lt_ptr[p + 1]] = k;
                self.lt_ptr[p + 1] += 1;
            }
        }
        self.lt_ptr.pop();
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros in `L` and `U` (diagnostics).
    pub fn fill_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// The pivot permutation: element `k` is the original row pivoted at
    /// elimination step `k`. Two factorisations of the same basis are
    /// identical iff their pivot rows (and values) agree — the differential
    /// suites compare this to certify warm ≡ cold.
    #[inline]
    pub fn pivot_rows(&self) -> &[usize] {
        &self.pivot_row[..self.n]
    }

    /// Solves `B·x = b`.
    ///
    /// `b` is indexed by original row on input; on output it is garbage.
    /// The solution is written to `out`, indexed by pivot order — which for
    /// a simplex basis equals the basis *position*.
    pub fn solve(&self, b: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        // Forward: L·w = P·b, w in pivot coordinates (stored into out).
        for k in 0..self.n {
            let wk = b[self.pivot_row[k]];
            out[k] = wk;
            if wk != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    b[self.l_rows[idx]] -= self.l_vals[idx] * wk;
                }
            }
        }
        // Backward: U·x = w, processed by columns.
        for k in (0..self.n).rev() {
            let xk = out[k] / self.diag[k];
            out[k] = xk;
            if xk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    out[self.u_rows[idx]] -= self.u_vals[idx] * xk;
                }
            }
        }
    }

    /// Solves `B·x = b` for `N` right-hand sides at once.
    ///
    /// Lane `i` of `b`/`out` is one right-hand side, laid out exactly as in
    /// [`SparseLu::solve`]. The factor entries are loaded once per column
    /// and applied to every lane, so the memory traffic over `L`/`U` is paid
    /// once instead of `N` times. Each lane's arithmetic runs in the same
    /// order as a scalar solve, so per-lane results equal `N` sequential
    /// [`SparseLu::solve`] calls.
    pub fn solve_batch<const N: usize>(&self, b: &mut [[f64; N]], out: &mut [[f64; N]]) {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for k in 0..self.n {
            let w = b[self.pivot_row[k]];
            out[k] = w;
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                let r = self.l_rows[idx];
                let v = self.l_vals[idx];
                for lane in 0..N {
                    b[r][lane] -= v * w[lane];
                }
            }
        }
        for k in (0..self.n).rev() {
            let d = self.diag[k];
            let mut xk = out[k];
            for lane in 0..N {
                xk[lane] /= d;
            }
            out[k] = xk;
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                let m = self.u_rows[idx];
                let v = self.u_vals[idx];
                for lane in 0..N {
                    out[m][lane] -= v * xk[lane];
                }
            }
        }
    }

    /// Solves `B·x = b` exploiting sparsity of the right-hand side.
    ///
    /// `b` must be zero everywhere except (possibly) at the rows listed in
    /// `b_pattern`, and `out` must be entirely zero on entry. The nonzero
    /// structure of the solution is discovered symbolically (DFS
    /// reachability through `L`, then through `U`, exactly as in
    /// Gilbert–Peierls factorisation), so the work is proportional to the
    /// entries actually touched instead of `n`. On return `b` has been
    /// restored to all-zero, `out` holds the solution in pivot order, and
    /// `out_pattern` lists every position of `out` that may be nonzero.
    pub fn solve_sparse(
        &self,
        b: &mut [f64],
        b_pattern: &[usize],
        out: &mut [f64],
        out_pattern: &mut Vec<usize>,
        scratch: &mut SolveScratch,
    ) {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        scratch.ensure(self.n);

        // Symbolic forward pass: pivot indices reachable from the pattern
        // through L (edges k → pivot-of(l_rows of column k)). DFS postorder
        // places every node after its descendants, so *reverse* postorder
        // is a valid elimination order — no sorting required.
        scratch.reach_l.clear();
        for &r in b_pattern {
            let k0 = self.pivot_of_row[r];
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.l_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.l_ptr[k + 1];
                let mut next_child = None;
                let mut c = cursor;
                while c < end {
                    let k2 = self.pivot_of_row[self.l_rows[c]];
                    c += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = c;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.l_ptr[k2]));
                    }
                    None => {
                        scratch.reach_l.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric forward: L·w = P·b on the reached positions only, in
        // reverse postorder (dependencies point from smaller to larger
        // pivot index; a node's updates land only on its descendants).
        for &k in scratch.reach_l.iter().rev() {
            scratch.visited[k] = false;
            let wk = b[self.pivot_row[k]];
            out[k] = wk;
            if wk != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    b[self.l_rows[idx]] -= self.l_vals[idx] * wk;
                }
            }
        }
        // Every row touched (inputs and fill) has its pivot in the reach
        // set, so this restores b to all-zero.
        for &k in &scratch.reach_l {
            b[self.pivot_row[k]] = 0.0;
        }

        // Symbolic backward pass: positions reachable from the forward
        // pattern through U (edges k → u_rows of column k, pointing from
        // larger to smaller pivot index); reverse postorder again gives a
        // valid substitution order.
        out_pattern.clear();
        for &k0 in &scratch.reach_l {
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.u_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.u_ptr[k + 1];
                let mut next_child = None;
                let mut c = cursor;
                while c < end {
                    let k2 = self.u_rows[c];
                    c += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = c;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.u_ptr[k2]));
                    }
                    None => {
                        out_pattern.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric backward: U·x = w over the reached positions.
        for &k in out_pattern.iter().rev() {
            scratch.visited[k] = false;
            let xk = out[k] / self.diag[k];
            out[k] = xk;
            if xk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    out[self.u_rows[idx]] -= self.u_vals[idx] * xk;
                }
            }
        }
    }

    /// Solves `Bᵀ·y = c`.
    ///
    /// `c` is indexed by basis position (pivot order) on input and is
    /// consumed as scratch. The solution is written to `out`, indexed by
    /// original row.
    pub fn solve_transpose(&self, c: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(c.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        // Forward: Uᵀ·z = c (U column k gives U[m, k], m < k).
        for k in 0..self.n {
            let mut s = c[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_vals[idx] * c[self.u_rows[idx]];
            }
            c[k] = s / self.diag[k];
            // c[m] for m < k already hold final z values; entries m > k are
            // untouched, so in-place forward substitution is safe.
        }
        // Backward: Lᵀ·w = z; L column k holds rows pivoted later (κ(r) > k).
        for k in (0..self.n).rev() {
            let mut s = c[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_vals[idx] * c[self.pivot_of_row[self.l_rows[idx]]];
            }
            c[k] = s;
        }
        // y = Pᵀ·w.
        for k in 0..self.n {
            out[self.pivot_row[k]] = c[k];
        }
    }

    /// Solves `Bᵀ·y = c` for `N` right-hand sides at once.
    ///
    /// Lane layout and contracts follow [`SparseLu::solve_transpose`]; the
    /// factor is traversed once per column with every lane updated in the
    /// scalar arithmetic order, so per-lane results equal `N` sequential
    /// [`SparseLu::solve_transpose`] calls.
    pub fn solve_transpose_batch<const N: usize>(&self, c: &mut [[f64; N]], out: &mut [[f64; N]]) {
        debug_assert_eq!(c.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for k in 0..self.n {
            let mut s = c[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                let v = self.u_vals[idx];
                let cm = c[self.u_rows[idx]];
                for lane in 0..N {
                    s[lane] -= v * cm[lane];
                }
            }
            let d = self.diag[k];
            for lane in 0..N {
                s[lane] /= d;
            }
            c[k] = s;
        }
        for k in (0..self.n).rev() {
            let mut s = c[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                let v = self.l_vals[idx];
                let cp = c[self.pivot_of_row[self.l_rows[idx]]];
                for lane in 0..N {
                    s[lane] -= v * cp[lane];
                }
            }
            c[k] = s;
        }
        for k in 0..self.n {
            out[self.pivot_row[k]] = c[k];
        }
    }

    /// Solves `Bᵀ·y = c` exploiting sparsity of the right-hand side.
    ///
    /// `c` (indexed by pivot order) must be zero outside the positions
    /// listed in `c_pattern`, and `out` (indexed by original row) must be
    /// entirely zero on entry. The symbolic phases walk the row-wise
    /// pattern mirrors (`Uᵀ` then `Lᵀ`), while the numeric phases *gather*
    /// through the column-stored factors in exactly the order of
    /// [`SparseLu::solve_transpose`] — so every computed entry is
    /// bit-identical to the dense path (untouched entries stay `0.0` where
    /// dense may produce a differently-signed zero). On return `c` is
    /// restored to all-zero and `out_pattern` lists every original row of
    /// `out` that may be nonzero.
    pub fn solve_transpose_sparse(
        &self,
        c: &mut [f64],
        c_pattern: &[usize],
        out: &mut [f64],
        out_pattern: &mut Vec<usize>,
        scratch: &mut SolveScratch,
    ) {
        debug_assert_eq!(c.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        debug_assert_eq!(self.ut_ptr.len(), self.n + 1, "row patterns not built");
        scratch.ensure(self.n);

        // Symbolic forward pass: z[k] can be nonzero iff k is reachable
        // from the c-pattern through Uᵀ — edges m → k for every column
        // k > m whose U column contains row m (the `ut` mirror). Reverse
        // postorder puts ancestors (smaller k) first: a valid order for the
        // ascending forward substitution.
        scratch.reach_u.clear();
        for &k0 in c_pattern {
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.ut_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.ut_ptr[k + 1];
                let mut next_child = None;
                let mut cur = cursor;
                while cur < end {
                    let k2 = self.ut_cols[cur];
                    cur += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = cur;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.ut_ptr[k2]));
                    }
                    None => {
                        scratch.reach_u.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric forward: gather s = c[k] − Σ U[m,k]·z[m] over column k's
        // full stored pattern, identical to the dense loop (entries outside
        // the reach set are zero and contribute nothing).
        for &k in scratch.reach_u.iter().rev() {
            scratch.visited[k] = false;
            let mut s = c[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_vals[idx] * c[self.u_rows[idx]];
            }
            c[k] = s / self.diag[k];
        }

        // Symbolic backward pass: w[k] can be nonzero iff k is reachable
        // from the z-pattern through Lᵀ — edges p → k for every column
        // k < p whose L column contains original row pivot_row[p] (the `lt`
        // mirror). Reverse postorder puts larger k first: a valid order for
        // the descending backward substitution.
        scratch.reach_l.clear();
        for &k0 in &scratch.reach_u {
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.lt_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.lt_ptr[k + 1];
                let mut next_child = None;
                let mut cur = cursor;
                while cur < end {
                    let k2 = self.lt_cols[cur];
                    cur += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = cur;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.lt_ptr[k2]));
                    }
                    None => {
                        scratch.reach_l.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric backward: gather s = z[k] − Σ L[r,k]·w[κ(r)] over column
        // k's full stored pattern, again identical to the dense loop.
        for &k in scratch.reach_l.iter().rev() {
            scratch.visited[k] = false;
            let mut s = c[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_vals[idx] * c[self.pivot_of_row[self.l_rows[idx]]];
            }
            c[k] = s;
        }

        // Scatter y = Pᵀ·w, record the pattern, and restore c to zero. The
        // backward reach contains the forward reach (its DFS roots), so one
        // sweep clears everything written.
        out_pattern.clear();
        for &k in &scratch.reach_l {
            out[self.pivot_row[k]] = c[k];
            out_pattern.push(self.pivot_row[k]);
            c[k] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<Vec<(usize, f64)>> {
        let n = a.len();
        (0..n)
            .map(|j| {
                (0..n)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn factor(a: &[&[f64]]) -> SparseLu {
        let cols = dense_cols(a);
        SparseLu::factorize(a.len(), |j, buf| buf.extend_from_slice(&cols[j])).unwrap()
    }

    fn check_solve(a: &[&[f64]], b: &[f64]) {
        let n = a.len();
        let lu = factor(a);
        let mut rhs = b.to_vec();
        let mut x = vec![0.0; n];
        lu.solve(&mut rhs, &mut x);
        // x is in pivot order; column k of the basis is column k of A here,
        // so the solution for variable j is x[j] directly (columns were
        // processed in natural order and pivot order == column order).
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9, "row {i}: {ax} vs {}", b[i]);
        }
    }

    fn check_solve_transpose(a: &[&[f64]], c: &[f64]) {
        let n = a.len();
        let lu = factor(a);
        let mut rhs = c.to_vec();
        let mut y = vec![0.0; n];
        lu.solve_transpose(&mut rhs, &mut y);
        // Verify Aᵀ y = c, i.e. for each column j: Σ_i A[i][j]·y[i] = c[j].
        for j in 0..n {
            let aty: f64 = (0..n).map(|i| a[i][j] * y[i]).sum();
            assert!((aty - c[j]).abs() < 1e-9, "col {j}: {aty} vs {}", c[j]);
        }
    }

    #[test]
    fn identity() {
        let a: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        check_solve(a, &[3.0, -4.0]);
        check_solve_transpose(a, &[1.5, 2.5]);
    }

    #[test]
    fn requires_row_pivoting() {
        // Zero on the natural diagonal forces a permutation.
        let a: &[&[f64]] = &[&[0.0, 2.0, 0.0], &[1.0, 0.0, 0.5], &[0.0, 1.0, 1.0]];
        check_solve(a, &[1.0, 2.0, 3.0]);
        check_solve_transpose(a, &[-1.0, 0.5, 2.0]);
    }

    #[test]
    fn dense_3x3() {
        let a: &[&[f64]] = &[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]];
        check_solve(a, &[12.0, -25.0, 32.0]);
        check_solve_transpose(a, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn singular_detected() {
        let cols = dense_cols(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let r = SparseLu::factorize(2, |j, buf| buf.extend_from_slice(&cols[j]));
        assert!(r.is_err());
    }

    fn random_sparse(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut a = vec![vec![0.0f64; n]; n];
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) - 1.0
        };
        for i in 0..n {
            for _ in 0..5 {
                let j = ((rnd().abs() * n as f64) as usize).min(n - 1);
                a[i][j] += rnd();
            }
            a[i][i] += 8.0; // dominance => nonsingular
        }
        a
    }

    #[test]
    fn larger_random_matrix() {
        let a = random_sparse(60, 0x12345678);
        let refs: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        let b: Vec<f64> = (0..60).map(|i| (i as f64) * 0.1 - 2.0).collect();
        check_solve(&refs, &b);
        check_solve_transpose(&refs, &b);
    }

    #[test]
    fn sparse_solve_matches_dense_solve() {
        // Sparse matrix, sparse right-hand sides: solve_sparse must agree
        // with the dense path, restore b to zero, and report a pattern
        // covering every nonzero of the solution.
        let a: &[&[f64]] = &[
            &[2.0, 0.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 4.0, 0.0, 0.0],
            &[0.0, 0.5, 0.0, 5.0, 2.0],
            &[0.0, 0.0, 1.0, 0.0, 6.0],
        ];
        let n = a.len();
        let lu = factor(a);
        let mut scratch = SolveScratch::default();
        for &nz in &[0usize, 1, 2, 3, 4] {
            // One-hot and two-hot right-hand sides.
            for &nz2 in &[nz, (nz + 2) % n] {
                let mut b_dense = vec![0.0; n];
                b_dense[nz] = 1.5;
                b_dense[nz2] += -2.0;
                let mut expect = b_dense.clone();
                let mut x_dense = vec![0.0; n];
                lu.solve(&mut expect, &mut x_dense);

                let mut b = b_dense.clone();
                let pattern: Vec<usize> = if nz == nz2 { vec![nz] } else { vec![nz, nz2] };
                let mut x = vec![0.0; n];
                let mut out_pattern = Vec::new();
                lu.solve_sparse(&mut b, &pattern, &mut x, &mut out_pattern, &mut scratch);
                assert!(b.iter().all(|&v| v == 0.0), "b not restored to zero");
                for k in 0..n {
                    assert!(
                        (x[k] - x_dense[k]).abs() < 1e-12,
                        "x[{k}] = {} vs dense {}",
                        x[k],
                        x_dense[k]
                    );
                    if x[k] != 0.0 {
                        assert!(out_pattern.contains(&k), "pattern misses nonzero {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_transpose_matches_dense_transpose() {
        // Sparse right-hand sides through solve_transpose_sparse must agree
        // bit-for-bit with the dense transpose path, restore c to zero, and
        // report a pattern covering every nonzero of the solution.
        for (n, seed) in [(20usize, 0xfeedu64), (60, 0xdeadbeef)] {
            let a = random_sparse(n, seed);
            let refs: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
            let lu = factor(&refs);
            let mut scratch = SolveScratch::default();
            for nz in 0..n {
                for &nz2 in &[nz, (nz + 7) % n, (nz + n / 2) % n] {
                    let mut c_dense = vec![0.0; n];
                    c_dense[nz] = 1.25;
                    c_dense[nz2] += -0.75;
                    let mut expect = c_dense.clone();
                    let mut y_dense = vec![0.0; n];
                    lu.solve_transpose(&mut expect, &mut y_dense);

                    let mut c = c_dense.clone();
                    let mut pattern = vec![nz];
                    if nz2 != nz {
                        pattern.push(nz2);
                    }
                    let mut y = vec![0.0; n];
                    let mut out_pattern = Vec::new();
                    lu.solve_transpose_sparse(
                        &mut c,
                        &pattern,
                        &mut y,
                        &mut out_pattern,
                        &mut scratch,
                    );
                    assert!(c.iter().all(|&v| v == 0.0), "c not restored to zero");
                    for r in 0..n {
                        assert!(
                            y[r] == y_dense[r],
                            "y[{r}] = {} vs dense {}",
                            y[r],
                            y_dense[r]
                        );
                        if y[r] != 0.0 {
                            assert!(out_pattern.contains(&r), "pattern misses nonzero {r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_solves_match_sequential() {
        const N: usize = 4;
        let a = random_sparse(40, 0xabcd);
        let refs: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        let n = refs.len();
        let lu = factor(&refs);
        let mut state = 0x55aa55aau64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) - 1.0
        };
        let rhs: Vec<Vec<f64>> = (0..N).map(|_| (0..n).map(|_| rnd()).collect()).collect();

        // FTRAN batch vs N scalar solves.
        let mut b_batch: Vec<[f64; N]> =
            (0..n).map(|i| std::array::from_fn(|l| rhs[l][i])).collect();
        let mut x_batch = vec![[0.0f64; N]; n];
        lu.solve_batch(&mut b_batch, &mut x_batch);
        for (lane, r) in rhs.iter().enumerate() {
            let mut b = r.clone();
            let mut x = vec![0.0; n];
            lu.solve(&mut b, &mut x);
            for k in 0..n {
                assert!(
                    x_batch[k][lane] == x[k],
                    "ftran lane {lane} pos {k}: {} vs {}",
                    x_batch[k][lane],
                    x[k]
                );
            }
        }

        // BTRAN batch vs N scalar transpose solves.
        let mut c_batch: Vec<[f64; N]> =
            (0..n).map(|i| std::array::from_fn(|l| rhs[l][i])).collect();
        let mut y_batch = vec![[0.0f64; N]; n];
        lu.solve_transpose_batch(&mut c_batch, &mut y_batch);
        for (lane, r) in rhs.iter().enumerate() {
            let mut c = r.clone();
            let mut y = vec![0.0; n];
            lu.solve_transpose(&mut c, &mut y);
            for k in 0..n {
                assert!(
                    y_batch[k][lane] == y[k],
                    "btran lane {lane} pos {k}: {} vs {}",
                    y_batch[k][lane],
                    y[k]
                );
            }
        }
    }

    #[test]
    fn partial_refactorisation_is_bit_identical() {
        // Factor A, then build B sharing a leading column prefix with A and
        // differing afterwards; refactorize_from must equal a from-scratch
        // factorisation of B exactly (pivot rows, values, solves).
        let n = 50;
        let a = random_sparse(n, 0x1357);
        let mut b = a.clone();
        let mut state = 0x2468u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) - 1.0
        };
        for keep in [0usize, 1, 17, 30, n - 1, n] {
            // B = A on columns 0..keep, perturbed (dense-ish, so pivoting
            // reshuffles) on columns keep..n.
            for col in 0..n {
                for row in 0..n {
                    b[row][col] = a[row][col];
                    if col >= keep {
                        b[row][col] += rnd() * 0.5;
                    }
                }
                if col >= keep {
                    b[col][col] += 4.0;
                }
            }
            let refs_b: Vec<&[f64]> = b.iter().map(|r| r.as_slice()).collect();
            let cols_b = dense_cols(&refs_b);
            let refs_a: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
            let lu_a = factor(&refs_a);
            let cold = SparseLu::factorize(n, |j, buf| buf.extend_from_slice(&cols_b[j])).unwrap();
            let warm = SparseLu::refactorize_from(&lu_a, keep, |j, buf| {
                assert!(j >= keep, "column callback consulted inside the prefix");
                buf.extend_from_slice(&cols_b[j])
            })
            .unwrap();

            assert_eq!(warm.pivot_rows(), cold.pivot_rows(), "keep={keep}");
            assert_eq!(warm.fill_nnz(), cold.fill_nnz(), "keep={keep}");
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 4.0).collect();
            let (mut b1, mut b2) = (rhs.clone(), rhs.clone());
            let mut x1 = vec![0.0; n];
            let mut x2 = vec![0.0; n];
            warm.solve(&mut b1, &mut x1);
            cold.solve(&mut b2, &mut x2);
            assert!(x1 == x2, "keep={keep}: warm/cold FTRAN differ");
            let (mut c1, mut c2) = (rhs.clone(), rhs.clone());
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            warm.solve_transpose(&mut c1, &mut y1);
            cold.solve_transpose(&mut c2, &mut y2);
            assert!(y1 == y2, "keep={keep}: warm/cold BTRAN differ");
        }
    }

    #[test]
    fn pivot_order_differs_from_column_order_is_consistent() {
        // Solve with a matrix whose pivoting shuffles rows, verify A·x = b
        // through the public interface only.
        let a: &[&[f64]] = &[
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 3.0, 1.0],
            &[5.0, 0.0, 0.0, 2.0],
            &[0.0, 0.5, 0.0, 1.0],
        ];
        check_solve(a, &[1.0, -1.0, 2.0, 0.0]);
        check_solve_transpose(a, &[0.0, 1.0, 0.0, -2.0]);
    }
}
