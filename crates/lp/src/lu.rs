//! Sparse LU factorisation with partial pivoting.
//!
//! Left-looking Gilbert–Peierls: each column of the input matrix is
//! processed by a sparse triangular solve against the already-computed part
//! of `L` (reachability found by DFS over the column graph), followed by
//! partial pivoting on the not-yet-pivoted rows.
//!
//! The factorisation satisfies `P·B = L·U` with `L` unit lower triangular
//! and `U` upper triangular in pivot order; `P` maps pivot order to original
//! row indices. Both ordinary and transpose solves are provided — the
//! simplex method needs `B·x = a` (FTRAN) and `Bᵀ·y = c_B` (BTRAN).

/// Error returned when the matrix is numerically singular.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularMatrix {
    /// Column at which no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

const PIVOT_TOL: f64 = 1e-11;

/// Reusable scratch space for [`SparseLu::solve_sparse`].
///
/// Holds the DFS markers and stacks of the symbolic phases so repeated
/// solves (the simplex FTRAN inner loop) allocate nothing. One instance may
/// be shared across factorisations of different matrices; it grows to the
/// largest dimension seen.
#[derive(Clone, Debug, Default)]
pub struct SolveScratch {
    visited: Vec<bool>,
    stack: Vec<(usize, usize)>,
    reach_l: Vec<usize>,
}

impl SolveScratch {
    fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, false);
        }
    }
}

/// A sparse LU factorisation of a square matrix.
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    // L (unit diagonal implicit), stored by column in *original* row indices.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    // U stored by column in *pivot* indices (strictly above diagonal).
    u_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    diag: Vec<f64>,
    // pivot_row[k] = original row pivoted at step k; pivot_of_row inverse.
    pivot_row: Vec<usize>,
    pivot_of_row: Vec<usize>,
}

impl SparseLu {
    /// Factorises an `n×n` matrix given by a column-provider callback:
    /// `column(j, buf)` must fill `buf` with the `(row, value)` entries of
    /// column `j` (unsorted is fine, duplicates are not allowed).
    pub fn factorize<F>(n: usize, mut column: F) -> Result<SparseLu, SingularMatrix>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        const UNPIVOTED: usize = usize::MAX;
        let mut lu = SparseLu {
            n,
            l_ptr: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_ptr: vec![0],
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            diag: vec![0.0; n],
            pivot_row: vec![0; n],
            pivot_of_row: vec![UNPIVOTED; n],
        };

        let mut x = vec![0.0f64; n]; // dense accumulator
        let mut in_pattern = vec![false; n]; // row -> currently in pattern
        let mut pattern: Vec<usize> = Vec::new(); // touched rows
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        let mut reached: Vec<usize> = Vec::new(); // pivot indices to apply
        let mut visited = vec![false; n]; // pivot index -> visited this column
        let mut stack: Vec<(usize, usize)> = Vec::new(); // DFS (pivot, l-cursor)

        for j in 0..n {
            colbuf.clear();
            column(j, &mut colbuf);

            // Scatter column j and collect DFS roots.
            pattern.clear();
            reached.clear();
            for &(r, v) in &colbuf {
                debug_assert!(r < n);
                if !in_pattern[r] {
                    in_pattern[r] = true;
                    pattern.push(r);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
            }

            // Symbolic phase: find every pivot column reachable from the
            // pattern through L (fill-in), iteratively to bound stack depth.
            for pi in 0..pattern.len() {
                let r = pattern[pi];
                let k0 = lu.pivot_of_row[r];
                if k0 == UNPIVOTED || visited[k0] {
                    continue;
                }
                visited[k0] = true;
                stack.push((k0, lu.l_ptr[k0]));
                while let Some(&(k, cursor)) = stack.last() {
                    let end = lu.l_ptr[k + 1];
                    let mut next_child = None;
                    let mut c = cursor;
                    while c < end {
                        let r2 = lu.l_rows[c];
                        c += 1;
                        let k2 = lu.pivot_of_row[r2];
                        if k2 != UNPIVOTED && !visited[k2] {
                            next_child = Some(k2);
                            break;
                        }
                    }
                    stack.last_mut().unwrap().1 = c;
                    match next_child {
                        Some(k2) => {
                            visited[k2] = true;
                            stack.push((k2, lu.l_ptr[k2]));
                        }
                        None => {
                            reached.push(k);
                            stack.pop();
                        }
                    }
                }
            }
            // Dependencies always point from smaller to larger pivot index,
            // so ascending order is a valid elimination order.
            reached.sort_unstable();

            // Numeric phase: sparse lower-triangular solve.
            for &k in &reached {
                visited[k] = false; // reset for next column
                let xk = x[lu.pivot_row[k]];
                if xk == 0.0 {
                    continue;
                }
                for idx in lu.l_ptr[k]..lu.l_ptr[k + 1] {
                    let r2 = lu.l_rows[idx];
                    if !in_pattern[r2] {
                        in_pattern[r2] = true;
                        pattern.push(r2);
                        x[r2] = 0.0;
                    }
                    x[r2] -= lu.l_vals[idx] * xk;
                }
            }

            // Partial pivoting over not-yet-pivoted rows.
            let mut best_row = UNPIVOTED;
            let mut best_abs = 0.0f64;
            for &r in &pattern {
                if lu.pivot_of_row[r] == UNPIVOTED {
                    let a = x[r].abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = r;
                    }
                }
            }
            if best_row == UNPIVOTED || best_abs <= PIVOT_TOL {
                // Clean up scratch before erroring out.
                for &r in &pattern {
                    in_pattern[r] = false;
                    x[r] = 0.0;
                }
                return Err(SingularMatrix { column: j });
            }

            // Emit U column (pivoted rows) and L column (unpivoted rows).
            for &r in &pattern {
                let k = lu.pivot_of_row[r];
                if k != UNPIVOTED && x[r] != 0.0 {
                    lu.u_rows.push(k);
                    lu.u_vals.push(x[r]);
                }
            }
            lu.u_ptr.push(lu.u_rows.len());
            let pivot_val = x[best_row];
            lu.diag[j] = pivot_val;
            for &r in &pattern {
                if lu.pivot_of_row[r] == UNPIVOTED && r != best_row && x[r] != 0.0 {
                    lu.l_rows.push(r);
                    lu.l_vals.push(x[r] / pivot_val);
                }
            }
            lu.l_ptr.push(lu.l_rows.len());
            lu.pivot_of_row[best_row] = j;
            lu.pivot_row[j] = best_row;

            // Clear scratch.
            for &r in &pattern {
                in_pattern[r] = false;
                x[r] = 0.0;
            }
        }
        Ok(lu)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros in `L` and `U` (diagnostics).
    pub fn fill_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// Solves `B·x = b`.
    ///
    /// `b` is indexed by original row on input; on output it is garbage.
    /// The solution is written to `out`, indexed by pivot order — which for
    /// a simplex basis equals the basis *position*.
    pub fn solve(&self, b: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        // Forward: L·w = P·b, w in pivot coordinates (stored into out).
        for k in 0..self.n {
            let wk = b[self.pivot_row[k]];
            out[k] = wk;
            if wk != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    b[self.l_rows[idx]] -= self.l_vals[idx] * wk;
                }
            }
        }
        // Backward: U·x = w, processed by columns.
        for k in (0..self.n).rev() {
            let xk = out[k] / self.diag[k];
            out[k] = xk;
            if xk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    out[self.u_rows[idx]] -= self.u_vals[idx] * xk;
                }
            }
        }
    }

    /// Solves `B·x = b` exploiting sparsity of the right-hand side.
    ///
    /// `b` must be zero everywhere except (possibly) at the rows listed in
    /// `b_pattern`, and `out` must be entirely zero on entry. The nonzero
    /// structure of the solution is discovered symbolically (DFS
    /// reachability through `L`, then through `U`, exactly as in
    /// Gilbert–Peierls factorisation), so the work is proportional to the
    /// entries actually touched instead of `n`. On return `b` has been
    /// restored to all-zero, `out` holds the solution in pivot order, and
    /// `out_pattern` lists every position of `out` that may be nonzero.
    pub fn solve_sparse(
        &self,
        b: &mut [f64],
        b_pattern: &[usize],
        out: &mut [f64],
        out_pattern: &mut Vec<usize>,
        scratch: &mut SolveScratch,
    ) {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        scratch.ensure(self.n);

        // Symbolic forward pass: pivot indices reachable from the pattern
        // through L (edges k → pivot-of(l_rows of column k)). DFS postorder
        // places every node after its descendants, so *reverse* postorder
        // is a valid elimination order — no sorting required.
        scratch.reach_l.clear();
        for &r in b_pattern {
            let k0 = self.pivot_of_row[r];
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.l_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.l_ptr[k + 1];
                let mut next_child = None;
                let mut c = cursor;
                while c < end {
                    let k2 = self.pivot_of_row[self.l_rows[c]];
                    c += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = c;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.l_ptr[k2]));
                    }
                    None => {
                        scratch.reach_l.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric forward: L·w = P·b on the reached positions only, in
        // reverse postorder (dependencies point from smaller to larger
        // pivot index; a node's updates land only on its descendants).
        for &k in scratch.reach_l.iter().rev() {
            scratch.visited[k] = false;
            let wk = b[self.pivot_row[k]];
            out[k] = wk;
            if wk != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    b[self.l_rows[idx]] -= self.l_vals[idx] * wk;
                }
            }
        }
        // Every row touched (inputs and fill) has its pivot in the reach
        // set, so this restores b to all-zero.
        for &k in &scratch.reach_l {
            b[self.pivot_row[k]] = 0.0;
        }

        // Symbolic backward pass: positions reachable from the forward
        // pattern through U (edges k → u_rows of column k, pointing from
        // larger to smaller pivot index); reverse postorder again gives a
        // valid substitution order.
        out_pattern.clear();
        for &k0 in &scratch.reach_l {
            if scratch.visited[k0] {
                continue;
            }
            scratch.visited[k0] = true;
            scratch.stack.push((k0, self.u_ptr[k0]));
            while let Some(&(k, cursor)) = scratch.stack.last() {
                let end = self.u_ptr[k + 1];
                let mut next_child = None;
                let mut c = cursor;
                while c < end {
                    let k2 = self.u_rows[c];
                    c += 1;
                    if !scratch.visited[k2] {
                        next_child = Some(k2);
                        break;
                    }
                }
                scratch.stack.last_mut().unwrap().1 = c;
                match next_child {
                    Some(k2) => {
                        scratch.visited[k2] = true;
                        scratch.stack.push((k2, self.u_ptr[k2]));
                    }
                    None => {
                        out_pattern.push(k);
                        scratch.stack.pop();
                    }
                }
            }
        }
        // Numeric backward: U·x = w over the reached positions.
        for &k in out_pattern.iter().rev() {
            scratch.visited[k] = false;
            let xk = out[k] / self.diag[k];
            out[k] = xk;
            if xk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    out[self.u_rows[idx]] -= self.u_vals[idx] * xk;
                }
            }
        }
    }

    /// Solves `Bᵀ·y = c`.
    ///
    /// `c` is indexed by basis position (pivot order) on input and is
    /// consumed as scratch. The solution is written to `out`, indexed by
    /// original row.
    pub fn solve_transpose(&self, c: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(c.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        // Forward: Uᵀ·z = c (U column k gives U[m, k], m < k).
        for k in 0..self.n {
            let mut s = c[k];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_vals[idx] * c[self.u_rows[idx]];
            }
            c[k] = s / self.diag[k];
            // c[m] for m < k already hold final z values; entries m > k are
            // untouched, so in-place forward substitution is safe.
        }
        // Backward: Lᵀ·w = z; L column k holds rows pivoted later (κ(r) > k).
        for k in (0..self.n).rev() {
            let mut s = c[k];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_vals[idx] * c[self.pivot_of_row[self.l_rows[idx]]];
            }
            c[k] = s;
        }
        // y = Pᵀ·w.
        for k in 0..self.n {
            out[self.pivot_row[k]] = c[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<Vec<(usize, f64)>> {
        let n = a.len();
        (0..n)
            .map(|j| {
                (0..n)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn factor(a: &[&[f64]]) -> SparseLu {
        let cols = dense_cols(a);
        SparseLu::factorize(a.len(), |j, buf| buf.extend_from_slice(&cols[j])).unwrap()
    }

    fn check_solve(a: &[&[f64]], b: &[f64]) {
        let n = a.len();
        let lu = factor(a);
        let mut rhs = b.to_vec();
        let mut x = vec![0.0; n];
        lu.solve(&mut rhs, &mut x);
        // x is in pivot order; column k of the basis is column k of A here,
        // so the solution for variable j is x[j] directly (columns were
        // processed in natural order and pivot order == column order).
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9, "row {i}: {ax} vs {}", b[i]);
        }
    }

    fn check_solve_transpose(a: &[&[f64]], c: &[f64]) {
        let n = a.len();
        let lu = factor(a);
        let mut rhs = c.to_vec();
        let mut y = vec![0.0; n];
        lu.solve_transpose(&mut rhs, &mut y);
        // Verify Aᵀ y = c, i.e. for each column j: Σ_i A[i][j]·y[i] = c[j].
        for j in 0..n {
            let aty: f64 = (0..n).map(|i| a[i][j] * y[i]).sum();
            assert!((aty - c[j]).abs() < 1e-9, "col {j}: {aty} vs {}", c[j]);
        }
    }

    #[test]
    fn identity() {
        let a: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        check_solve(a, &[3.0, -4.0]);
        check_solve_transpose(a, &[1.5, 2.5]);
    }

    #[test]
    fn requires_row_pivoting() {
        // Zero on the natural diagonal forces a permutation.
        let a: &[&[f64]] = &[&[0.0, 2.0, 0.0], &[1.0, 0.0, 0.5], &[0.0, 1.0, 1.0]];
        check_solve(a, &[1.0, 2.0, 3.0]);
        check_solve_transpose(a, &[-1.0, 0.5, 2.0]);
    }

    #[test]
    fn dense_3x3() {
        let a: &[&[f64]] = &[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]];
        check_solve(a, &[12.0, -25.0, 32.0]);
        check_solve_transpose(a, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn singular_detected() {
        let cols = dense_cols(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let r = SparseLu::factorize(2, |j, buf| buf.extend_from_slice(&cols[j]));
        assert!(r.is_err());
    }

    #[test]
    fn larger_random_matrix() {
        // Deterministic pseudo-random sparse diagonally-dominant matrix.
        let n = 60;
        let mut a = vec![vec![0.0f64; n]; n];
        let mut state = 0x12345678u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) - 1.0
        };
        for i in 0..n {
            for _ in 0..5 {
                let j = ((rnd().abs() * n as f64) as usize).min(n - 1);
                a[i][j] += rnd();
            }
            a[i][i] += 8.0; // dominance => nonsingular
        }
        let refs: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1 - 2.0).collect();
        check_solve(&refs, &b);
        check_solve_transpose(&refs, &b);
    }

    #[test]
    fn sparse_solve_matches_dense_solve() {
        // Sparse matrix, sparse right-hand sides: solve_sparse must agree
        // with the dense path, restore b to zero, and report a pattern
        // covering every nonzero of the solution.
        let a: &[&[f64]] = &[
            &[2.0, 0.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 4.0, 0.0, 0.0],
            &[0.0, 0.5, 0.0, 5.0, 2.0],
            &[0.0, 0.0, 1.0, 0.0, 6.0],
        ];
        let n = a.len();
        let lu = factor(a);
        let mut scratch = SolveScratch::default();
        for &nz in &[0usize, 1, 2, 3, 4] {
            // One-hot and two-hot right-hand sides.
            for &nz2 in &[nz, (nz + 2) % n] {
                let mut b_dense = vec![0.0; n];
                b_dense[nz] = 1.5;
                b_dense[nz2] += -2.0;
                let mut expect = b_dense.clone();
                let mut x_dense = vec![0.0; n];
                lu.solve(&mut expect, &mut x_dense);

                let mut b = b_dense.clone();
                let pattern: Vec<usize> = if nz == nz2 { vec![nz] } else { vec![nz, nz2] };
                let mut x = vec![0.0; n];
                let mut out_pattern = Vec::new();
                lu.solve_sparse(&mut b, &pattern, &mut x, &mut out_pattern, &mut scratch);
                assert!(b.iter().all(|&v| v == 0.0), "b not restored to zero");
                for k in 0..n {
                    assert!(
                        (x[k] - x_dense[k]).abs() < 1e-12,
                        "x[{k}] = {} vs dense {}",
                        x[k],
                        x_dense[k]
                    );
                    if x[k] != 0.0 {
                        assert!(out_pattern.contains(&k), "pattern misses nonzero {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn pivot_order_differs_from_column_order_is_consistent() {
        // Solve with a matrix whose pivoting shuffles rows, verify A·x = b
        // through the public interface only.
        let a: &[&[f64]] = &[
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 3.0, 1.0],
            &[5.0, 0.0, 0.0, 2.0],
            &[0.0, 0.5, 0.0, 1.0],
        ];
        check_solve(a, &[1.0, -1.0, 2.0, 0.0]);
        check_solve_transpose(a, &[0.0, 1.0, 0.0, -2.0]);
    }
}
