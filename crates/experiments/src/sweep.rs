//! Deterministic, parallel sweeps over scenario grids.

use crate::roster::{AlgoId, Roster};
use vmplace_sim::{Scenario, ScenarioConfig};

/// One (scenario, seed, algorithm) outcome.
#[derive(Clone, Debug)]
pub struct InstanceResult {
    /// Number of services in the scenario.
    pub services: usize,
    /// Platform coefficient of variation.
    pub cov: f64,
    /// Memory slack.
    pub slack: f64,
    /// Instance seed within the scenario.
    pub seed: u64,
    /// Algorithm that produced this row.
    pub algo: AlgoId,
    /// Whether a complete placement satisfying all requirements was found.
    pub success: bool,
    /// Achieved minimum yield (0 when unsuccessful).
    pub min_yield: f64,
    /// Wall-clock seconds for the solve.
    pub runtime_s: f64,
    /// Winning portfolio member (engine telemetry; empty for non-portfolio
    /// algorithms or failures).
    pub winner: String,
    /// Total packing probes across portfolio members (engine telemetry).
    pub probes: u64,
}

/// A sweep: a grid of scenarios × seeds × algorithms.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of hosts (paper: 64).
    pub hosts: usize,
    /// Service counts to sweep.
    pub services: Vec<usize>,
    /// Coefficient-of-variation grid.
    pub covs: Vec<f64>,
    /// Memory-slack grid.
    pub slacks: Vec<f64>,
    /// Instances (seeds) per scenario.
    pub instances: u64,
    /// Algorithms to run on every instance.
    pub algos: Vec<AlgoId>,
    /// Cap on the number of *instances per service count* on which LP-based
    /// algorithms (RRND/RRNZ) run; `usize::MAX` = no cap. The LP solve
    /// dominates the sweep wall-clock exactly as in the paper's Table 2.
    pub lp_instance_cap: usize,
    /// LP-based algorithms are skipped on scenarios with more services than
    /// this (their relaxation cost grows steeply: ~3.5 s at 100 services,
    /// ~23 s at 250 on this machine; the paper reports 4.9 s / 45.8 s /
    /// 270 s with GLPK). `usize::MAX` = no limit.
    pub lp_max_services: usize,
}

impl SweepConfig {
    /// Evenly spaced grid helper (inclusive endpoints).
    pub fn grid(from: f64, to: f64, step: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut x = from;
        while x <= to + 1e-9 {
            out.push((x * 1e6).round() / 1e6);
            x += step;
        }
        out
    }
}

/// Runs the sweep in parallel over instances; algorithms run sequentially
/// per instance so that per-algorithm runtimes stay comparable.
pub fn run_sweep(config: &SweepConfig, roster: &Roster) -> Vec<InstanceResult> {
    // Enumerate instance tasks.
    struct Task {
        services: usize,
        cov: f64,
        slack: f64,
        seed: u64,
        lp_allowed: bool,
    }
    let mut tasks = Vec::new();
    for &services in &config.services {
        let group_start = tasks.len();
        for &cov in &config.covs {
            for &slack in &config.slacks {
                for seed in 0..config.instances {
                    tasks.push(Task {
                        services,
                        cov,
                        slack,
                        seed,
                        lp_allowed: false,
                    });
                }
            }
        }
        // The LP budget applies per service count and is spread evenly
        // across the (cov, slack, seed) grid — burning it on the first
        // scenario would sample only one (typically hard) corner.
        if services <= config.lp_max_services && config.lp_instance_cap > 0 {
            let group = &mut tasks[group_start..];
            let n = group.len();
            let cap = config.lp_instance_cap.min(n);
            for k in 0..cap {
                group[k * n / cap].lp_allowed = true;
            }
        }
    }

    let results: Vec<Vec<InstanceResult>> = vmplace_par::par_map(&tasks, |t| {
        let scenario = Scenario::new(ScenarioConfig {
            hosts: config.hosts,
            services: t.services,
            cov: t.cov,
            memory_slack: t.slack,
            ..ScenarioConfig::default()
        });
        let instance = scenario.instance(t.seed);
        let mut rows = Vec::with_capacity(config.algos.len());
        for &algo in &config.algos {
            if algo.is_lp_based() && !t.lp_allowed {
                continue;
            }
            let run = roster.solve(algo, &instance, t.seed.wrapping_add(0xA11CE));
            rows.push(InstanceResult {
                services: t.services,
                cov: t.cov,
                slack: t.slack,
                seed: t.seed,
                algo,
                success: run.solution.is_some(),
                min_yield: run.solution.map(|s| s.min_yield).unwrap_or(0.0),
                runtime_s: run.runtime_s,
                winner: run.winner.unwrap_or_default(),
                probes: run.probes,
            });
        }
        rows
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_inclusive() {
        let g = SweepConfig::grid(0.0, 1.0, 0.25);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn tiny_sweep_runs_all_algorithms() {
        let config = SweepConfig {
            hosts: 8,
            services: vec![12],
            covs: vec![0.0, 0.5],
            slacks: vec![0.5],
            instances: 2,
            algos: vec![AlgoId::MetaGreedy, AlgoId::MetaVp, AlgoId::MetaHvpLight],
            lp_instance_cap: 0,
            lp_max_services: usize::MAX,
        };
        let roster = Roster::new();
        let results = run_sweep(&config, &roster);
        assert_eq!(results.len(), 2 * 2 * 3);
        for r in &results {
            if r.success {
                assert!(r.min_yield >= 0.0 && r.min_yield <= 1.0);
            }
        }
    }

    #[test]
    fn lp_cap_limits_rrnz_rows() {
        let config = SweepConfig {
            hosts: 4,
            services: vec![6],
            covs: vec![0.0],
            slacks: vec![0.5],
            instances: 3,
            algos: vec![AlgoId::Rrnz, AlgoId::MetaGreedy],
            lp_instance_cap: 1,
            lp_max_services: usize::MAX,
        };
        let roster = Roster::new();
        let results = run_sweep(&config, &roster);
        let rrnz_rows = results.iter().filter(|r| r.algo == AlgoId::Rrnz).count();
        assert_eq!(rrnz_rows, 1);
        let greedy_rows = results
            .iter()
            .filter(|r| r.algo == AlgoId::MetaGreedy)
            .count();
        assert_eq!(greedy_rows, 3);
    }
}
