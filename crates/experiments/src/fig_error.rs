//! Figures 5–7 and 35–66: achieved minimum yield versus the maximum CPU
//! need estimation error.
//!
//! Eight curves per figure, averaged over successful instances:
//! `ideal` (perfect estimates), `zero-knowledge` (even spread +
//! EQUALWEIGHTS), and `weight`/`equal` (ALLOCWEIGHTS / EQUALWEIGHTS on the
//! placement computed from perturbed estimates) for minimum-threshold
//! values τ ∈ {0, 0.10, 0.30}. An `caps` curve (ALLOCCAPS, τ = 0) backs the
//! §6.2 claim that hard caps collapse under error.

use crate::csv::{fnum, write_csv};
use crate::roster::Roster;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmplace_core::vp::{binary_search_placement, DEFAULT_RESOLUTION};
use vmplace_model::evaluate_placement;
use vmplace_sim::{
    apply_min_threshold, perturb_cpu_needs, zero_knowledge_placement, AllocationPolicy, ErrorRun,
    Scenario, ScenarioConfig,
};

/// Configuration of one error figure.
#[derive(Clone, Debug)]
pub struct FigErrorConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Number of services.
    pub services: usize,
    /// Memory slack.
    pub slack: f64,
    /// Platform coefficient of variation.
    pub cov: f64,
    /// Maximum-error grid (paper: 0 → 0.4).
    pub errors: Vec<f64>,
    /// Instances per error value.
    pub instances: u64,
    /// Mitigation thresholds (paper: 0, 0.10, 0.30).
    pub thresholds: Vec<f64>,
    /// Use the full METAHVP roster for placement (default: METAHVPLIGHT,
    /// which §5.1 shows is quality-equivalent at a tenth of the cost).
    pub use_full_hvp: bool,
    /// Output directory.
    pub out_dir: String,
    /// Output file tag (e.g. `"fig5"`).
    pub tag: String,
}

/// Curve identifier → averaged minimum achieved yield per error value.
#[derive(Clone, Debug)]
pub struct ErrorCurves {
    /// Error grid.
    pub errors: Vec<f64>,
    /// `(curve label, values parallel to errors)`.
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Runs the experiment and emits CSV + stdout summary.
pub fn run_fig_error(config: &FigErrorConfig, roster: &Roster) -> ErrorCurves {
    let solver: &dyn vmplace_core::vp::PackingHeuristic = if config.use_full_hvp {
        roster.metahvp()
    } else {
        roster.metahvp_light()
    };

    // Curve labels in plot order.
    let mut labels: Vec<String> =
        vec!["ideal".into(), "zero-knowledge".into(), "caps_t0.00".into()];
    for &t in &config.thresholds {
        labels.push(format!("weight_t{t:.2}"));
        labels.push(format!("equal_t{t:.2}"));
    }

    // Instance generation can produce trivially infeasible instances (a
    // service larger than every node); the paper averages over *successful*
    // instances, so scan seeds until enough feasible ones are found.
    let feasible_seeds: Vec<u64> = {
        let mut seeds = Vec::new();
        for seed in 0..config.instances * 20 {
            let scenario = Scenario::new(ScenarioConfig {
                hosts: config.hosts,
                services: config.services,
                cov: config.cov,
                memory_slack: config.slack,
                ..ScenarioConfig::default()
            });
            let instance = scenario.instance(seed);
            let feasible = solver
                .pack(&vmplace_core::vp::VpProblem::new(&instance, 0.0))
                .is_some();
            if feasible {
                seeds.push(seed);
                if seeds.len() as u64 >= config.instances {
                    break;
                }
            }
        }
        seeds
    };
    if feasible_seeds.is_empty() {
        eprintln!(
            "fig_error[{}]: no feasible instance in {} seeds — emitting empty curves",
            config.tag,
            config.instances * 20
        );
    }

    struct Task {
        error: f64,
        error_idx: usize,
        seed: u64,
    }
    let mut tasks = Vec::new();
    for (error_idx, &error) in config.errors.iter().enumerate() {
        for &seed in &feasible_seeds {
            tasks.push(Task {
                error,
                error_idx,
                seed,
            });
        }
    }

    // Each task returns (error_idx, per-curve Option<yield>).
    let rows: Vec<Option<(usize, Vec<Option<f64>>)>> = vmplace_par::par_map(&tasks, |t| {
        let scenario = Scenario::new(ScenarioConfig {
            hosts: config.hosts,
            services: config.services,
            cov: config.cov,
            memory_slack: config.slack,
            ..ScenarioConfig::default()
        });
        let instance = scenario.instance(t.seed);
        let run = ErrorRun::new(&instance);
        let mut values: Vec<Option<f64>> = vec![None; labels.len()];

        // Ideal: perfect knowledge.
        let ideal = binary_search_placement(&instance, solver, DEFAULT_RESOLUTION)
            .and_then(|(_, p)| evaluate_placement(&instance, &p));
        let Some(ideal) = ideal else {
            return None; // infeasible instance: excluded from averages
        };
        values[0] = Some(ideal.min_yield);

        // Zero knowledge: even spread + equal shares.
        if let Some(p) = zero_knowledge_placement(&instance) {
            let planned = vec![0.0; instance.num_services()];
            values[1] = run.actual_min_yield(&p, &planned, AllocationPolicy::EqualWeights);
        }

        // Perturbed estimates (deterministic per (seed, error index)).
        let mut rng = StdRng::seed_from_u64(
            t.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(t.error_idx as u64),
        );
        let estimates = perturb_cpu_needs(instance.services(), t.error, &mut rng);

        let mut slot = 3;
        for (ti, &tau) in config.thresholds.iter().enumerate() {
            let est = apply_min_threshold(&estimates, tau);
            let est_instance = instance.with_services(est.clone()).ok()?;
            let placed = binary_search_placement(&est_instance, solver, DEFAULT_RESOLUTION);
            if let Some((_, placement)) = placed {
                if let Some(planned) = run.planned_extras(&est, &placement) {
                    if ti == 0 {
                        // ALLOCCAPS at τ = 0 (diagnostic curve).
                        values[2] =
                            run.actual_min_yield(&placement, &planned, AllocationPolicy::AllocCaps);
                    }
                    values[slot] =
                        run.actual_min_yield(&placement, &planned, AllocationPolicy::AllocWeights);
                    values[slot + 1] =
                        run.actual_min_yield(&placement, &planned, AllocationPolicy::EqualWeights);
                }
            }
            slot += 2;
        }
        Some((t.error_idx, values))
    });

    // Average per (error, curve) over successful instances.
    let mut sums = vec![vec![0.0f64; config.errors.len()]; labels.len()];
    let mut counts = vec![vec![0usize; config.errors.len()]; labels.len()];
    for row in rows.into_iter().flatten() {
        let (ei, values) = row;
        for (ci, v) in values.iter().enumerate() {
            if let Some(v) = v {
                sums[ci][ei] += v;
                counts[ci][ei] += 1;
            }
        }
    }
    let curves: Vec<(String, Vec<f64>)> = labels
        .iter()
        .enumerate()
        .map(|(ci, label)| {
            let vals: Vec<f64> = (0..config.errors.len())
                .map(|ei| {
                    if counts[ci][ei] == 0 {
                        f64::NAN
                    } else {
                        sums[ci][ei] / counts[ci][ei] as f64
                    }
                })
                .collect();
            (label.clone(), vals)
        })
        .collect();

    // Emit.
    println!(
        "\n=== Fig[{}]: min achieved yield vs max error ({} services, slack {}, cov {}) ===",
        config.tag, config.services, config.slack, config.cov
    );
    print!("{:<8}", "error");
    for (label, _) in &curves {
        print!("{:>16}", label);
    }
    println!();
    let mut csv_rows = Vec::new();
    for (ei, &e) in config.errors.iter().enumerate() {
        print!("{:<8}", format!("{e:.2}"));
        for (label, vals) in &curves {
            print!("{:>16}", format!("{:.4}", vals[ei]));
            csv_rows.push(vec![fnum(e), label.clone(), fnum(vals[ei])]);
        }
        println!();
    }
    write_csv(
        format!("{}/{}_curves.csv", config.out_dir, config.tag),
        &["max_error", "curve", "avg_min_yield"],
        &csv_rows,
    )
    .unwrap();

    ErrorCurves {
        errors: config.errors.clone(),
        curves,
    }
}
