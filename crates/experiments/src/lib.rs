//! Experiment harness for the IPDPS 2012 reproduction.
//!
//! Each binary in `src/bin/` regenerates one of the paper's tables or
//! figure families (see `DESIGN.md` §6 for the full index):
//!
//! * `table1` — pairwise (Y_{A,B}, S_{A,B}) matrices (Table 1);
//! * `table2` — algorithm wall-clock table (Table 2, incl. the 512-host /
//!   2000-service METAHVP vs METAHVPLIGHT comparison of §5.1);
//! * `fig_cov` — minimum-yield difference from METAHVP vs coefficient of
//!   variation (Figures 2–4 and 8–34);
//! * `fig_error` — achieved minimum yield vs maximum estimation error
//!   (Figures 5–7 and 35–66);
//! * `all` — the whole battery at a chosen scale.
//!
//! The library half hosts the shared machinery: the algorithm roster,
//! deterministic sweep execution (parallelised with `vmplace-par`),
//! pairwise metrics and CSV emission.

#![warn(missing_docs)]

pub mod args;
pub mod csv;
pub mod fig_cov;
pub mod fig_error;
pub mod metrics;
pub mod roster;
pub mod sweep;
pub mod table1;

pub use args::Args;
pub use fig_cov::{run_fig_cov, FigCovConfig};
pub use fig_error::{run_fig_error, FigErrorConfig};
pub use metrics::{pairwise, PairwiseCell};
pub use roster::{AlgoId, Roster, SolveRun};
pub use sweep::{run_sweep, InstanceResult, SweepConfig};
pub use table1::{run_table1, Table1Config};
