//! The paper's pairwise comparison metrics (§5).
//!
//! * `Y_{A,B}` — average percent minimum-yield difference of A relative to
//!   B, over instances solved by both;
//! * `S_{A,B}` — percentage of instances where A succeeds and B fails,
//!   minus the percentage where B succeeds and A fails.
//!
//! Positive values favour A.

use crate::roster::AlgoId;
use crate::sweep::InstanceResult;
use std::collections::HashMap;

/// One cell of the Table 1 matrices.
#[derive(Clone, Copy, Debug)]
pub struct PairwiseCell {
    /// `Y_{A,B}` in percent.
    pub yield_diff_pct: f64,
    /// `S_{A,B}` in percentage points.
    pub success_diff_pct: f64,
    /// Instances solved by both (the `Y` average's support).
    pub both_solved: usize,
    /// Total instances on which both algorithms ran.
    pub total: usize,
}

/// Computes `(Y_{A,B}, S_{A,B})` over a result set. Instances are keyed by
/// `(services, cov, slack, seed)`; only instances attempted by *both*
/// algorithms enter the statistics (the LP cap may exclude some from
/// RRND/RRNZ).
pub fn pairwise(results: &[InstanceResult], a: AlgoId, b: AlgoId) -> PairwiseCell {
    type Key = (usize, u64, u64, u64);
    let key =
        |r: &InstanceResult| -> Key { (r.services, r.cov.to_bits(), r.slack.to_bits(), r.seed) };
    let mut map: HashMap<Key, [Option<(bool, f64)>; 2]> = HashMap::new();
    for r in results {
        let slot = if r.algo == a {
            0
        } else if r.algo == b {
            1
        } else {
            continue;
        };
        map.entry(key(r)).or_default()[slot] = Some((r.success, r.min_yield));
    }

    let mut total = 0usize;
    let mut both_solved = 0usize;
    let mut yield_sum = 0.0f64;
    let mut a_only = 0usize;
    let mut b_only = 0usize;
    for entry in map.values() {
        let (Some((sa, ya)), Some((sb, yb))) = (entry[0], entry[1]) else {
            continue;
        };
        total += 1;
        match (sa, sb) {
            (true, true) => {
                if yb > 1e-9 {
                    both_solved += 1;
                    yield_sum += (ya - yb) / yb * 100.0;
                }
            }
            (true, false) => a_only += 1,
            (false, true) => b_only += 1,
            (false, false) => {}
        }
    }
    PairwiseCell {
        yield_diff_pct: if both_solved > 0 {
            yield_sum / both_solved as f64
        } else {
            0.0
        },
        success_diff_pct: if total > 0 {
            (a_only as f64 - b_only as f64) / total as f64 * 100.0
        } else {
            0.0
        },
        both_solved,
        total,
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(algo: AlgoId, seed: u64, success: bool, min_yield: f64) -> InstanceResult {
        InstanceResult {
            services: 100,
            cov: 0.5,
            slack: 0.3,
            seed,
            algo,
            success,
            min_yield,
            runtime_s: 0.0,
            winner: String::new(),
            probes: 0,
        }
    }

    #[test]
    fn yield_and_success_metrics() {
        let results = vec![
            // instance 0: both succeed, A 10% better.
            row(AlgoId::MetaHvp, 0, true, 0.55),
            row(AlgoId::MetaVp, 0, true, 0.50),
            // instance 1: A succeeds, B fails.
            row(AlgoId::MetaHvp, 1, true, 0.8),
            row(AlgoId::MetaVp, 1, false, 0.0),
            // instance 2: both fail.
            row(AlgoId::MetaHvp, 2, false, 0.0),
            row(AlgoId::MetaVp, 2, false, 0.0),
            // instance 3: attempted only by A — excluded entirely.
            row(AlgoId::MetaHvp, 3, true, 1.0),
        ];
        let cell = pairwise(&results, AlgoId::MetaHvp, AlgoId::MetaVp);
        assert_eq!(cell.total, 3);
        assert_eq!(cell.both_solved, 1);
        assert!((cell.yield_diff_pct - 10.0).abs() < 1e-9);
        assert!((cell.success_diff_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn antisymmetry_of_success_metric() {
        let results = vec![
            row(AlgoId::MetaHvp, 0, true, 0.5),
            row(AlgoId::MetaVp, 0, false, 0.0),
            row(AlgoId::MetaHvp, 1, false, 0.0),
            row(AlgoId::MetaVp, 1, true, 0.4),
            row(AlgoId::MetaHvp, 2, true, 0.6),
            row(AlgoId::MetaVp, 2, true, 0.6),
        ];
        let ab = pairwise(&results, AlgoId::MetaHvp, AlgoId::MetaVp);
        let ba = pairwise(&results, AlgoId::MetaVp, AlgoId::MetaHvp);
        assert!((ab.success_diff_pct + ba.success_diff_pct).abs() < 1e-9);
    }
}
