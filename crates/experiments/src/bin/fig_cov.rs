//! Figures 2–4 and 8–34: yield difference from METAHVP vs coefficient of
//! variation.
//!
//! ```text
//! cargo run --release -p vmplace-experiments --bin fig_cov -- \
//!     [--services 500] [--slack 0.3] [--homog cpu|mem] \
//!     [--cov-step 0.1] [--instances 4] [--algos rrnz,metagreedy,metavp] [--out results]
//! ```
//!
//! Figure 2 = defaults; Figure 3 = `--homog cpu`; Figure 4 = `--homog mem`;
//! Figures 8–34 vary `--services` and `--slack`.

use vmplace_experiments::{run_fig_cov, AlgoId, Args, FigCovConfig, Roster, SweepConfig};
use vmplace_sim::HomogeneousDim;

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let services: usize = args.get("services", 500);
    let slack: f64 = args.get("slack", 0.3);
    let homog = match args.get_str("homog") {
        Some("cpu") => Some(HomogeneousDim::Cpu),
        Some("mem") | Some("memory") => Some(HomogeneousDim::Memory),
        _ => None,
    };
    let algos = args
        .get_str("algos")
        .map(AlgoId::parse_list)
        .unwrap_or_else(|| vec![AlgoId::MetaGreedy, AlgoId::MetaVp]);
    let tag = args.get_str("tag").map(str::to_string).unwrap_or_else(|| {
        let h = match homog {
            Some(HomogeneousDim::Cpu) => "_cpuhomog",
            Some(HomogeneousDim::Memory) => "_memhomog",
            None => "",
        };
        format!("figcov_j{services}_s{slack}{h}")
    });
    let config = FigCovConfig {
        hosts: args.get("hosts", 64),
        services,
        slack,
        homogeneous: homog,
        covs: SweepConfig::grid(0.0, 1.0, args.get("cov-step", 0.1)),
        instances: args.get("instances", 4),
        algos,
        out_dir: args.get_str("out").unwrap_or("results").to_string(),
        tag,
    };
    let roster = Roster::new();
    let points = run_fig_cov(&config, &roster);
    eprintln!(
        "fig_cov: {} scatter points → {}/{}_*.csv",
        points.len(),
        config.out_dir,
        config.tag
    );
}
