//! Diagnostic probe: per-seed algorithm outcomes and LP statistics on a
//! single scenario. Not part of the paper reproduction; useful when
//! calibrating sweep scales on new hardware.

use vmplace_experiments::{AlgoId, Args, Roster};
use vmplace_lp::{MilpOptions, SimplexOptions, YieldLp};
use vmplace_sim::{Scenario, ScenarioConfig};

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let services: usize = args.get("services", 100);
    let hosts: usize = args.get("hosts", 64);
    let cov: f64 = args.get("cov", 0.5);
    let slack: f64 = args.get("slack", 0.5);
    let seeds: u64 = args.get("instances", 3);
    let algos = args
        .get_str("algos")
        .map(AlgoId::parse_list)
        .unwrap_or_else(|| vec![AlgoId::MetaGreedy, AlgoId::MetaHvpLight]);

    let roster = Roster::new();
    let scenario = Scenario::new(ScenarioConfig {
        hosts,
        services,
        cov,
        memory_slack: slack,
        ..ScenarioConfig::default()
    });

    for seed in 0..seeds {
        let inst = scenario.instance(seed);
        // LP relaxation statistics.
        let t0 = std::time::Instant::now();
        match YieldLp::build(&inst) {
            None => println!("seed {seed}: LP build → infeasible (a service fits nowhere)"),
            Some(ylp) => {
                let built = t0.elapsed().as_secs_f64();
                println!(
                    "seed {seed}: LP {} rows × {} vars (built in {built:.3}s)",
                    ylp.lp().num_rows(),
                    ylp.lp().num_vars()
                );
                if args.has_flag("lp") {
                    let t1 = std::time::Instant::now();
                    match ylp.solve_relaxed(&SimplexOptions::default()) {
                        Some(rel) => println!(
                            "         relaxation Y* = {:.4} in {:.2}s ({} iterations)",
                            rel.objective,
                            t1.elapsed().as_secs_f64(),
                            rel.iterations
                        ),
                        None => println!(
                            "         relaxation infeasible/failed in {:.2}s",
                            t1.elapsed().as_secs_f64()
                        ),
                    }
                }
                // Warm-started branch & bound telemetry — only sane on
                // small instances (exact MILP is exponential).
                if args.has_flag("milp") {
                    let t1 = std::time::Instant::now();
                    let r = ylp.solve_exact_result(&MilpOptions::default());
                    println!(
                        "         exact MILP {:?} Y* = {} in {:.2}s ({} nodes, {} simplex iterations, {:.1}/node)",
                        r.status,
                        r.objective
                            .map(|o| format!("{o:.4}"))
                            .unwrap_or_else(|| "-".into()),
                        t1.elapsed().as_secs_f64(),
                        r.nodes,
                        r.simplex_iterations,
                        r.simplex_iterations as f64 / r.nodes.max(1) as f64
                    );
                    let f = &r.factor;
                    println!(
                        "         factorisation: {} refactorisations (warm reuse {:.2}, fill {} nnz), {} eta folds, {} snapshots ({} eta clones)",
                        f.refactorisations,
                        f.warm_reuse_ratio(),
                        f.fill_nnz,
                        f.eta_folds,
                        f.snapshots,
                        f.snapshot_eta_clones
                    );
                    println!(
                        "         solves: {} FTRAN (sparsity {:.3}), {} BTRAN ({} sparse, sparsity {:.3}), {} batched pricing cols",
                        f.ftran_solves,
                        f.ftran_sparsity(),
                        f.btran_solves,
                        f.btran_sparse,
                        f.btran_sparsity(),
                        f.pricing_batched_cols
                    );
                }
            }
        }
        for &algo in &algos {
            let run = roster.solve(algo, &inst, seed);
            let secs = run.runtime_s;
            match run.solution {
                Some(s) => println!(
                    "         {:<14} min-yield {:.4} in {secs:.3}s ({} probes, winner {})",
                    algo.label(),
                    s.min_yield,
                    run.probes,
                    run.winner.as_deref().unwrap_or("-")
                ),
                None => println!("         {:<14} FAILED in {secs:.3}s", algo.label()),
            }
        }
    }
}
