//! Figures 5–7 and 35–66: achieved minimum yield vs maximum estimation
//! error.
//!
//! ```text
//! cargo run --release -p vmplace-experiments --bin fig_error -- \
//!     [--services 100] [--slack 0.4] [--cov 0.5] [--error-step 0.04] \
//!     [--instances 3] [--full-hvp] [--out results]
//! ```
//!
//! Figure 5/6/7 = `--services 100/250/500 --slack 0.4 --cov 0.5`;
//! Figures 35–66 vary slack and cov. `--full-hvp` places with the complete
//! 253-strategy METAHVP (default uses METAHVPLIGHT; §5.1 shows the quality
//! difference is negligible at a tenth of the run time).

use vmplace_experiments::{run_fig_error, Args, FigErrorConfig, Roster, SweepConfig};

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let services: usize = args.get("services", 100);
    let slack: f64 = args.get("slack", 0.4);
    let cov: f64 = args.get("cov", 0.5);
    let tag = args
        .get_str("tag")
        .map(str::to_string)
        .unwrap_or_else(|| format!("figerr_j{services}_s{slack}_c{cov}"));
    let config = FigErrorConfig {
        hosts: args.get("hosts", 64),
        services,
        slack,
        cov,
        errors: SweepConfig::grid(0.0, 0.4, args.get("error-step", 0.04)),
        instances: args.get("instances", 3),
        thresholds: vec![0.0, 0.10, 0.30],
        use_full_hvp: args.has_flag("full-hvp"),
        out_dir: args.get_str("out").unwrap_or("results").to_string(),
        tag,
    };
    let roster = Roster::new();
    run_fig_error(&config, &roster);
}
