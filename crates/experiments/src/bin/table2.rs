//! Table 2: algorithm run times (seconds) per service count, plus the §5.1
//! 512-host / 2000-service METAHVP vs METAHVPLIGHT comparison.
//!
//! ```text
//! cargo run --release -p vmplace-experiments --bin table2 -- \
//!     [--services 100,250,500] [--instances 3] [--lp-instances 1] [--big] [--out results]
//! ```

use vmplace_experiments::{csv, Args, Roster};
use vmplace_experiments::{run_sweep, AlgoId, SweepConfig};
use vmplace_sim::{Scenario, ScenarioConfig};

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let services: Vec<usize> = args
        .get_str("services")
        .unwrap_or("100,250,500")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let instances: u64 = args.get("instances", 3);
    let lp_instances: usize = args.get("lp-instances", 1);
    let out_dir = args.get_str("out").unwrap_or("results").to_string();
    let algos = args
        .get_str("algos")
        .map(AlgoId::parse_list)
        .unwrap_or_else(|| {
            vec![
                AlgoId::Rrnz,
                AlgoId::MetaGreedy,
                AlgoId::MetaVp,
                AlgoId::MetaHvp,
                AlgoId::MetaHvpLight,
            ]
        });

    let roster = Roster::new();
    let config = SweepConfig {
        hosts: 64,
        services,
        covs: vec![0.5],
        slacks: vec![0.5],
        instances,
        algos: algos.clone(),
        lp_instance_cap: lp_instances,
        lp_max_services: args.get("lp-max-services", 250),
    };
    eprintln!("table2: timing sweep over {:?} services…", config.services);
    let results = run_sweep(&config, &roster);

    // Aggregate mean runtime per (algo, services).
    println!("\nTable 2: mean run times in seconds (this machine)");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "Algorithm", "100", "250", "500"
    );
    let mut rows = Vec::new();
    for &algo in &algos {
        let mut cells = Vec::new();
        for &j in &config.services {
            let times: Vec<f64> = results
                .iter()
                .filter(|r| r.algo == algo && r.services == j)
                .map(|r| r.runtime_s)
                .collect();
            let mean = if times.is_empty() {
                f64::NAN
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            };
            cells.push(mean);
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            algo.label(),
            cells.first().map(|c| format!("{c:.3}")).unwrap_or_default(),
            cells.get(1).map(|c| format!("{c:.3}")).unwrap_or_default(),
            cells.get(2).map(|c| format!("{c:.3}")).unwrap_or_default(),
        );
        let mut row = vec![algo.label().to_string()];
        row.extend(cells.iter().map(|&c| csv::fnum(c)));
        rows.push(row);
    }
    let mut header = vec!["algorithm"];
    let hdr_services: Vec<String> = config.services.iter().map(|j| j.to_string()).collect();
    header.extend(hdr_services.iter().map(|s| s.as_str()));
    csv::write_csv(format!("{out_dir}/table2_runtimes.csv"), &header, &rows).unwrap();

    if args.has_flag("big") {
        // §5.1: "512 hosts and 2000 services: METAHVP 134.52 s vs
        // METAHVPLIGHT 15.25 s" — the shape claim is the ~10× ratio.
        eprintln!("table2: big-instance METAHVP vs METAHVPLIGHT (512 hosts, 2000 services)…");
        let scenario = Scenario::new(ScenarioConfig {
            hosts: 512,
            services: 2000,
            cov: 0.5,
            memory_slack: 0.5,
            ..ScenarioConfig::default()
        });
        let instance = scenario.instance(0);
        let t_full = roster.solve(AlgoId::MetaHvp, &instance, 0).runtime_s;
        let t_light = roster.solve(AlgoId::MetaHvpLight, &instance, 0).runtime_s;
        println!("\n512 hosts / 2000 services:");
        println!("  METAHVP      {t_full:.2} s");
        println!(
            "  METAHVPLIGHT {t_light:.2} s   (ratio {:.1}×)",
            t_full / t_light
        );
        csv::write_csv(
            format!("{out_dir}/table2_big.csv"),
            &["algorithm", "seconds"],
            &[
                vec!["METAHVP".into(), csv::fnum(t_full)],
                vec!["METAHVPLIGHT".into(), csv::fnum(t_light)],
            ],
        )
        .unwrap();
    }
}
