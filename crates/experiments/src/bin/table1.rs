//! Table 1: pairwise comparison matrices of the major heuristics.
//!
//! ```text
//! cargo run --release -p vmplace-experiments --bin table1 -- \
//!     [--scale smoke|default|paper] [--services 100,250,500] \
//!     [--instances 5] [--lp-instances 30] [--out results]
//! ```

use vmplace_experiments::{run_table1, Args, Roster, Table1Config};

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let out = args.get_str("out").unwrap_or("results").to_string();
    let mut config = match args.get_str("scale").unwrap_or("default") {
        "paper" => Table1Config::paper_scale(&out),
        "smoke" => Table1Config::smoke_scale(&out),
        _ => Table1Config::default_scale(&out),
    };
    if let Some(s) = args.get_str("services") {
        config.sweep.services = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    config.sweep.instances = args.get("instances", config.sweep.instances);
    config.sweep.lp_instance_cap = args.get("lp-instances", config.sweep.lp_instance_cap);
    if let Some(a) = args.get_str("algos") {
        config.sweep.algos = vmplace_experiments::AlgoId::parse_list(a);
    }

    eprintln!(
        "table1: {} services × {} covs × {} slacks × {} instances, algorithms {:?}",
        config.sweep.services.len(),
        config.sweep.covs.len(),
        config.sweep.slacks.len(),
        config.sweep.instances,
        config
            .sweep
            .algos
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
    );
    let roster = Roster::new();
    let results = run_table1(&config, &roster);
    eprintln!(
        "table1: {} result rows → {}/table1_*.csv",
        results.len(),
        config.out_dir
    );
}
