//! Regenerates every table and figure at the chosen scale.
//!
//! ```text
//! cargo run --release -p vmplace-experiments --bin all -- \
//!     [--scale smoke|default|paper] [--out results]
//! ```
//!
//! * Table 1 & 2 over the full service grid;
//! * Figures 2–4 (500 services, slack 0.3, plus the homogeneous variants);
//! * representative members of the Figures 8–34 family (each slack/service
//!   combination is reachable via `--bin fig_cov`);
//! * Figures 5–7 (slack 0.4, cov 0.5, 100/250/500 services).

use vmplace_experiments::{
    run_fig_cov, run_fig_error, run_table1, AlgoId, Args, FigCovConfig, FigErrorConfig, Roster,
    SweepConfig, Table1Config,
};
use vmplace_sim::HomogeneousDim;

fn main() {
    let args = Args::parse();
    args.apply_threads();
    let out = args.get_str("out").unwrap_or("results").to_string();
    let scale = args.get_str("scale").unwrap_or("default").to_string();
    let roster = Roster::new();

    // ---- Table 1 (also produces raw timing data used as Table 2 input) --
    let t1 = match scale.as_str() {
        "paper" => Table1Config::paper_scale(&out),
        "smoke" => Table1Config::smoke_scale(&out),
        _ => Table1Config::default_scale(&out),
    };
    eprintln!("[all] Table 1…");
    let results = run_table1(&t1, &roster);

    // Table 2 digest from the same runs.
    let mut t2_rows = Vec::new();
    println!("\n=== Table 2: mean run times (s) from the Table 1 sweep ===");
    for &algo in &t1.sweep.algos {
        let mut line = format!("{:<14}", algo.label());
        let mut row = vec![algo.label().to_string()];
        for &j in &t1.sweep.services {
            let times: Vec<f64> = results
                .iter()
                .filter(|r| r.algo == algo && r.services == j)
                .map(|r| r.runtime_s)
                .collect();
            let mean = if times.is_empty() {
                f64::NAN
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            };
            line.push_str(&format!("{mean:>12.3}"));
            row.push(vmplace_experiments::csv::fnum(mean));
        }
        println!("{line}");
        t2_rows.push(row);
    }
    let mut hdr = vec!["algorithm".to_string()];
    hdr.extend(t1.sweep.services.iter().map(|j| j.to_string()));
    let hdr_refs: Vec<&str> = hdr.iter().map(|s| s.as_str()).collect();
    vmplace_experiments::csv::write_csv(
        format!("{out}/table2_from_table1.csv"),
        &hdr_refs,
        &t2_rows,
    )
    .unwrap();

    // ---- Figures 2–4 ----------------------------------------------------
    let (fig_instances, cov_step) = match scale.as_str() {
        "paper" => (100, 0.025),
        "smoke" => (2, 0.5),
        _ => (4, 0.1),
    };
    let fig_services = if scale == "smoke" { 30 } else { 500 };
    let fig_hosts = if scale == "smoke" { 16 } else { 64 };
    for (tag, homog) in [
        ("fig2", None),
        ("fig3", Some(HomogeneousDim::Cpu)),
        ("fig4", Some(HomogeneousDim::Memory)),
    ] {
        eprintln!("[all] {tag}…");
        run_fig_cov(
            &FigCovConfig {
                hosts: fig_hosts,
                services: fig_services,
                slack: 0.3,
                homogeneous: homog,
                covs: SweepConfig::grid(0.0, 1.0, cov_step),
                instances: fig_instances,
                algos: vec![AlgoId::MetaGreedy, AlgoId::MetaVp],
                out_dir: out.clone(),
                tag: tag.to_string(),
            },
            &roster,
        );
    }

    // Representative members of the Figures 8–34 family.
    if scale != "smoke" {
        for (tag, services, slack) in [("fig11_j100_s04", 100, 0.4), ("fig20_j250_s04", 250, 0.4)] {
            eprintln!("[all] {tag}…");
            run_fig_cov(
                &FigCovConfig {
                    hosts: 64,
                    services,
                    slack,
                    homogeneous: None,
                    covs: SweepConfig::grid(0.0, 1.0, cov_step),
                    instances: fig_instances,
                    algos: vec![AlgoId::MetaGreedy, AlgoId::MetaVp],
                    out_dir: out.clone(),
                    tag: tag.to_string(),
                },
                &roster,
            );
        }
    }

    // ---- Figures 5–7 -----------------------------------------------------
    let (err_instances, err_step) = match scale.as_str() {
        "paper" => (50, 0.02),
        "smoke" => (2, 0.2),
        _ => (3, 0.04),
    };
    let err_services: Vec<(usize, &str)> = if scale == "smoke" {
        vec![(30, "fig5")]
    } else {
        vec![(100, "fig5"), (250, "fig6"), (500, "fig7")]
    };
    for (services, tag) in err_services {
        eprintln!("[all] {tag}…");
        run_fig_error(
            &FigErrorConfig {
                hosts: fig_hosts,
                services,
                slack: 0.4,
                cov: 0.5,
                errors: SweepConfig::grid(0.0, 0.4, err_step),
                instances: err_instances,
                thresholds: vec![0.0, 0.10, 0.30],
                use_full_hvp: scale == "paper",
                out_dir: out.clone(),
                tag: tag.to_string(),
            },
            &roster,
        );
    }
    eprintln!("[all] done → {out}/");
}
