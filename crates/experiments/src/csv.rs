//! Hand-rolled CSV emission (values are numeric or simple identifiers; no
//! quoting needed).

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes a CSV file, creating parent directories as needed.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a float compactly for CSV cells.
pub fn fnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "nan".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("vmplace_csv_test");
        let path = dir.join("x/t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), fnum(0.5)]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,0.500000\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
