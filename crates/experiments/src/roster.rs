//! The algorithm roster evaluated in the paper's Table 1 and figures.

use std::cell::RefCell;
use std::time::Instant;
use vmplace_core::{Algorithm, MetaGreedy, MetaVp, RandomizedRounding, SolveCtx};
use vmplace_model::{ProblemInstance, Solution};

/// The major heuristics of §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoId {
    /// Randomized rounding (zero probabilities kept).
    Rrnd,
    /// Randomized rounding with ε-floored probabilities.
    Rrnz,
    /// Best of the 49 greedy algorithms.
    MetaGreedy,
    /// Best of the 33 homogeneous vector-packing strategies.
    MetaVp,
    /// Best of the 253 heterogeneous vector-packing strategies.
    MetaHvp,
    /// The engineered 60-strategy subset of METAHVP (§5.1).
    MetaHvpLight,
}

impl AlgoId {
    /// Paper name.
    pub fn label(&self) -> &'static str {
        match self {
            AlgoId::Rrnd => "RRND",
            AlgoId::Rrnz => "RRNZ",
            AlgoId::MetaGreedy => "METAGREEDY",
            AlgoId::MetaVp => "METAVP",
            AlgoId::MetaHvp => "METAHVP",
            AlgoId::MetaHvpLight => "METAHVPLIGHT",
        }
    }

    /// Whether the algorithm requires an LP relaxation solve (orders of
    /// magnitude slower than the others; sweeps cap its instance count).
    pub fn is_lp_based(&self) -> bool {
        matches!(self, AlgoId::Rrnd | AlgoId::Rrnz)
    }

    /// Parses a comma-separated list like `"metagreedy,metavp,metahvp"`.
    pub fn parse_list(s: &str) -> Vec<AlgoId> {
        s.split(',')
            .filter_map(|t| match t.trim().to_ascii_lowercase().as_str() {
                "rrnd" => Some(AlgoId::Rrnd),
                "rrnz" => Some(AlgoId::Rrnz),
                "metagreedy" | "greedy" => Some(AlgoId::MetaGreedy),
                "metavp" | "vp" => Some(AlgoId::MetaVp),
                "metahvp" | "hvp" => Some(AlgoId::MetaHvp),
                "metahvplight" | "light" => Some(AlgoId::MetaHvpLight),
                _ => None,
            })
            .collect()
    }
}

/// One engine-aware solve: the solution (if any), wall-clock seconds, and
/// the portfolio telemetry when the algorithm ran on the engine.
#[derive(Clone, Debug)]
pub struct SolveRun {
    /// The solution, `None` on failure.
    pub solution: Option<Solution>,
    /// Wall-clock seconds for the solve.
    pub runtime_s: f64,
    /// Label of the winning portfolio member, when the engine reported one.
    pub winner: Option<String>,
    /// Total packing probes (or trials) across all portfolio members.
    pub probes: u64,
}

/// Pre-built shareable algorithm instances (the meta rosters are immutable
/// and `Sync`, so one copy serves all worker threads).
pub struct Roster {
    meta_greedy: MetaGreedy,
    meta_vp: MetaVp,
    meta_hvp: MetaVp,
    meta_hvp_light: MetaVp,
}

impl Default for Roster {
    fn default() -> Self {
        Self::new()
    }
}

impl Roster {
    /// Builds the roster.
    pub fn new() -> Roster {
        Roster {
            meta_greedy: MetaGreedy,
            meta_vp: MetaVp::metavp(),
            meta_hvp: MetaVp::metahvp(),
            meta_hvp_light: MetaVp::metahvp_light(),
        }
    }

    /// Runs `algo` on `instance`; `seed` feeds the randomized-rounding RNG.
    ///
    /// Each sweep worker thread keeps one long-lived [`SolveCtx`] to carry
    /// the engine telemetry (winning member, probe count) surfaced in the
    /// returned [`SolveRun`]; the engine's per-worker packing scratches
    /// are built per solve inside `portfolio_run`. Inside a `par_map`
    /// sweep the engine runs its members inline (the nested-parallelism
    /// guard in `vmplace-par` prevents oversubscription); instance-level
    /// parallelism already saturates the machine there.
    pub fn solve(&self, algo: AlgoId, instance: &ProblemInstance, seed: u64) -> SolveRun {
        thread_local! {
            static CTX: RefCell<SolveCtx> = RefCell::new(SolveCtx::new());
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let start = Instant::now();
            let solution = match algo {
                AlgoId::Rrnd => RandomizedRounding::rrnd(seed).solve_with(instance, &mut ctx),
                AlgoId::Rrnz => RandomizedRounding::rrnz(seed).solve_with(instance, &mut ctx),
                AlgoId::MetaGreedy => self.meta_greedy.solve_with(instance, &mut ctx),
                AlgoId::MetaVp => self.meta_vp.solve_with(instance, &mut ctx),
                AlgoId::MetaHvp => self.meta_hvp.solve_with(instance, &mut ctx),
                AlgoId::MetaHvpLight => self.meta_hvp_light.solve_with(instance, &mut ctx),
            };
            let runtime_s = start.elapsed().as_secs_f64();
            let (winner, probes) = ctx
                .take_report()
                .map(|r| (r.winner_label().map(str::to_string), r.total_probes()))
                .unwrap_or((None, 0));
            SolveRun {
                solution,
                runtime_s,
                winner,
                probes,
            }
        })
    }

    /// The METAHVP roster (error experiments place with it by default when
    /// `--algo hvp` is chosen).
    pub fn metahvp(&self) -> &MetaVp {
        &self.meta_hvp
    }

    /// The METAHVPLIGHT roster.
    pub fn metahvp_light(&self) -> &MetaVp {
        &self.meta_hvp_light
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list_accepts_aliases() {
        let v = AlgoId::parse_list("light, metavp ,HVP");
        assert_eq!(
            v,
            vec![AlgoId::MetaHvpLight, AlgoId::MetaVp, AlgoId::MetaHvp]
        );
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(AlgoId::MetaHvp.label(), "METAHVP");
        assert_eq!(AlgoId::Rrnz.label(), "RRNZ");
    }
}
