//! Figures 2–4 and 8–34: minimum-yield difference from METAHVP versus the
//! platform's coefficient of variation.
//!
//! Each point is one instance and one algorithm; `y` is that algorithm's
//! achieved minimum yield minus METAHVP's on the same instance (points
//! exist only where both succeed). Per-cov averages reproduce the figures'
//! solid lines.

use crate::csv::{fnum, write_csv};
use crate::roster::{AlgoId, Roster};
use vmplace_sim::{HomogeneousDim, Scenario, ScenarioConfig};

/// Configuration for one figure of the family.
#[derive(Clone, Debug)]
pub struct FigCovConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Number of services.
    pub services: usize,
    /// Memory slack.
    pub slack: f64,
    /// Homogeneity variant (`None` = Figure 2 style, `Cpu` = Figure 3,
    /// `Memory` = Figure 4).
    pub homogeneous: Option<HomogeneousDim>,
    /// Coefficient-of-variation grid.
    pub covs: Vec<f64>,
    /// Instances per cov value.
    pub instances: u64,
    /// Algorithms compared against METAHVP.
    pub algos: Vec<AlgoId>,
    /// Output directory.
    pub out_dir: String,
    /// Tag used in output file names (e.g. `"fig2"`).
    pub tag: String,
}

/// One scatter point of the figure.
#[derive(Clone, Debug)]
pub struct CovPoint {
    /// Coefficient of variation.
    pub cov: f64,
    /// Instance seed.
    pub seed: u64,
    /// Compared algorithm.
    pub algo: AlgoId,
    /// `min_yield(algo) − min_yield(METAHVP)`.
    pub diff: f64,
}

/// Runs the experiment; emits scatter + average CSVs and a stdout summary.
pub fn run_fig_cov(config: &FigCovConfig, roster: &Roster) -> Vec<CovPoint> {
    struct Task {
        cov: f64,
        seed: u64,
    }
    let mut tasks = Vec::new();
    for &cov in &config.covs {
        for seed in 0..config.instances {
            tasks.push(Task { cov, seed });
        }
    }

    let points: Vec<Vec<CovPoint>> = vmplace_par::par_map(&tasks, |t| {
        let scenario = Scenario::new(ScenarioConfig {
            hosts: config.hosts,
            services: config.services,
            cov: t.cov,
            memory_slack: config.slack,
            homogeneous: config.homogeneous,
            ..ScenarioConfig::default()
        });
        let instance = scenario.instance(t.seed);
        let Some(reference) = roster.solve(AlgoId::MetaHvp, &instance, t.seed).solution else {
            return Vec::new(); // METAHVP failed: no reference point
        };
        let mut out = Vec::new();
        for &algo in &config.algos {
            if let Some(sol) = roster.solve(algo, &instance, t.seed).solution {
                out.push(CovPoint {
                    cov: t.cov,
                    seed: t.seed,
                    algo,
                    diff: sol.min_yield - reference.min_yield,
                });
            }
        }
        out
    });
    let points: Vec<CovPoint> = points.into_iter().flatten().collect();

    // Scatter CSV.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fnum(p.cov),
                p.seed.to_string(),
                p.algo.label().to_string(),
                fnum(p.diff),
            ]
        })
        .collect();
    write_csv(
        format!("{}/{}_scatter.csv", config.out_dir, config.tag),
        &["cov", "seed", "algo", "diff_from_metahvp"],
        &rows,
    )
    .unwrap();

    // Per-cov averages (the figures' solid lines). Sign convention of the
    // paper: plotted is METAHVP-relative difference, ≤ 0 when METAHVP wins.
    let mut avg_rows = Vec::new();
    println!(
        "\n=== Fig[{}]: avg min-yield difference from METAHVP ({} services, slack {}, {:?}) ===",
        config.tag, config.services, config.slack, config.homogeneous
    );
    print!("{:<8}", "cov");
    for a in &config.algos {
        print!("{:>14}", a.label());
    }
    println!();
    for &cov in &config.covs {
        print!("{:<8}", format!("{cov:.3}"));
        for &algo in &config.algos {
            let vals: Vec<f64> = points
                .iter()
                .filter(|p| p.algo == algo && (p.cov - cov).abs() < 1e-9)
                .map(|p| p.diff)
                .collect();
            let avg = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            print!("{:>14}", format!("{avg:+.4}"));
            avg_rows.push(vec![
                fnum(cov),
                algo.label().to_string(),
                fnum(avg),
                vals.len().to_string(),
            ]);
        }
        println!();
    }
    write_csv(
        format!("{}/{}_avg.csv", config.out_dir, config.tag),
        &["cov", "algo", "avg_diff", "points"],
        &avg_rows,
    )
    .unwrap();
    points
}
