//! Table 1: pairwise (Y_{A,B}, S_{A,B}) matrices per service count.

use crate::csv::{fnum, write_csv};
use crate::metrics::pairwise;
use crate::roster::{AlgoId, Roster};
use crate::sweep::{run_sweep, InstanceResult, SweepConfig};

/// Table 1 configuration.
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// The sweep grid.
    pub sweep: SweepConfig,
    /// Output directory for CSVs.
    pub out_dir: String,
}

impl Table1Config {
    /// Default-scale grid (trimmed from the paper's 41-point cov grid and
    /// 100 seeds; shapes are stable at this size — see EXPERIMENTS.md).
    pub fn default_scale(out_dir: &str) -> Table1Config {
        Table1Config {
            sweep: SweepConfig {
                hosts: 64,
                services: vec![100, 250, 500],
                covs: vec![0.0, 0.25, 0.5, 0.75, 1.0],
                slacks: vec![0.2, 0.4, 0.6, 0.8],
                instances: 5,
                algos: vec![
                    AlgoId::Rrnd,
                    AlgoId::Rrnz,
                    AlgoId::MetaGreedy,
                    AlgoId::MetaVp,
                    AlgoId::MetaHvp,
                    AlgoId::MetaHvpLight,
                ],
                lp_instance_cap: 8,
                lp_max_services: 250,
            },
            out_dir: out_dir.to_string(),
        }
    }

    /// The paper's full grid (Grid'5000-sized; expect a long run).
    pub fn paper_scale(out_dir: &str) -> Table1Config {
        let mut cfg = Self::default_scale(out_dir);
        cfg.sweep.covs = SweepConfig::grid(0.0, 1.0, 0.025);
        cfg.sweep.slacks = SweepConfig::grid(0.1, 0.9, 0.1);
        cfg.sweep.instances = 100;
        cfg.sweep.lp_instance_cap = usize::MAX;
        cfg.sweep.lp_max_services = usize::MAX;
        cfg
    }

    /// A seconds-scale smoke grid (CI / tests).
    pub fn smoke_scale(out_dir: &str) -> Table1Config {
        Table1Config {
            sweep: SweepConfig {
                hosts: 16,
                services: vec![30],
                covs: vec![0.0, 0.5],
                slacks: vec![0.5],
                instances: 2,
                algos: vec![AlgoId::MetaGreedy, AlgoId::MetaVp, AlgoId::MetaHvpLight],
                lp_instance_cap: 0,
                lp_max_services: 250,
            },
            out_dir: out_dir.to_string(),
        }
    }
}

/// Runs the sweep and emits the matrices (stdout + CSV). Returns the raw
/// per-instance results for reuse.
pub fn run_table1(config: &Table1Config, roster: &Roster) -> Vec<InstanceResult> {
    let results = run_sweep(&config.sweep, roster);

    // Raw dump for downstream analysis.
    let raw_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.services.to_string(),
                fnum(r.cov),
                fnum(r.slack),
                r.seed.to_string(),
                r.algo.label().to_string(),
                (r.success as u8).to_string(),
                fnum(r.min_yield),
                fnum(r.runtime_s),
                r.winner.clone(),
                r.probes.to_string(),
            ]
        })
        .collect();
    write_csv(
        format!("{}/table1_raw.csv", config.out_dir),
        &[
            "services",
            "cov",
            "slack",
            "seed",
            "algo",
            "success",
            "min_yield",
            "runtime_s",
            "winner",
            "probes",
        ],
        &raw_rows,
    )
    .unwrap();

    let algos = &config.sweep.algos;
    let mut matrix_rows: Vec<Vec<String>> = Vec::new();
    for &j in &config.sweep.services {
        let subset: Vec<InstanceResult> = results
            .iter()
            .filter(|r| r.services == j)
            .cloned()
            .collect();
        println!("\n=== Table 1, {j} services: (Y_A,B %, S_A,B pp), positive favours row A ===");
        print!("{:<14}", "A\\B");
        for b in algos {
            print!("{:>24}", b.label());
        }
        println!();
        for &a in algos {
            print!("{:<14}", a.label());
            for &b in algos {
                if a == b {
                    print!("{:>24}", "—");
                    continue;
                }
                let cell = pairwise(&subset, a, b);
                print!(
                    "{:>24}",
                    format!(
                        "({:+.1}%, {:+.1}%)",
                        cell.yield_diff_pct, cell.success_diff_pct
                    )
                );
                matrix_rows.push(vec![
                    j.to_string(),
                    a.label().to_string(),
                    b.label().to_string(),
                    fnum(cell.yield_diff_pct),
                    fnum(cell.success_diff_pct),
                    cell.both_solved.to_string(),
                    cell.total.to_string(),
                ]);
            }
            println!();
        }
    }
    write_csv(
        format!("{}/table1_pairwise.csv", config.out_dir),
        &[
            "services",
            "A",
            "B",
            "Y_AB_pct",
            "S_AB_pp",
            "both_solved",
            "total",
        ],
        &matrix_rows,
    )
    .unwrap();
    results
}
