//! A minimal `--key value` command-line parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (after the binary name).
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Bare-flag presence (`--full`).
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Applies the harness-wide `--threads N` flag, plumbing it into
    /// [`vmplace_par::set_threads_override`] so both the instance-level
    /// sweeps and the portfolio engine honour it. Call once at the top of
    /// every experiment binary.
    pub fn apply_threads(&self) {
        if let Some(n) = self.values.get("threads").and_then(|v| v.parse().ok()) {
            vmplace_par::set_threads_override(n);
        }
    }
}

impl FromIterator<String> for Args {
    /// Parses an explicit argument list (used by [`Args::parse`] and tests).
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let takes_value = iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false);
                if takes_value {
                    values.insert(key.to_string(), iter.next().unwrap());
                } else {
                    flags.push(key.to_string());
                }
            }
        }
        Args { values, flags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--services 250 --slack 0.3 --full");
        assert_eq!(a.get("services", 0usize), 250);
        assert_eq!(a.get("slack", 0.0f64), 0.3);
        assert!(a.has_flag("full"));
        assert!(!a.has_flag("fast"));
    }

    #[test]
    fn defaults_apply() {
        let a = args("--x 1");
        assert_eq!(a.get("services", 100usize), 100);
        assert_eq!(a.get_str("out"), None);
    }

    #[test]
    fn negative_numbers_are_values() {
        // A value starting with '-' but not '--' is consumed as a value.
        let a = args("--delta -0.5");
        assert_eq!(a.get("delta", 0.0f64), -0.5);
    }
}
