//! The observability surface, end to end: the `stats` wire verb on both
//! I/O backends and both wire versions, the invariance of response bytes
//! under instrumentation, and the writer-teardown drop accounting.

use std::time::{Duration, Instant};
use vmplace_model::{
    AllocRequest, Node, ProblemInstance, RequestKind, RequestOutcome, ResponsePolicy, Service,
};
use vmplace_net::{Client, IoBackend, Server, ServerConfig};
use vmplace_obs::{json::Json, Registry};
use vmplace_service::{FaultPlan, ServiceConfig, SolverPool};

fn instance() -> ProblemInstance {
    let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.4, 0.6)];
    let mk = |rc: f64, nc: f64, mem: f64| {
        Service::new(
            vec![rc / 2.0, mem],
            vec![rc, mem],
            vec![nc / 2.0, 0.0],
            vec![nc, 0.0],
        )
    };
    let services = vec![mk(0.2, 0.6, 0.3), mk(0.1, 0.5, 0.4), mk(0.15, 0.7, 0.2)];
    ProblemInstance::new(nodes, services).unwrap()
}

fn trace() -> Vec<AllocRequest> {
    let mut out = vec![AllocRequest {
        id: 0,
        stream: 0,
        kind: RequestKind::New(instance()),
        budget: None,
        policy: ResponsePolicy::Exact,
    }];
    for id in 1..4 {
        out.push(AllocRequest {
            id,
            stream: 0,
            kind: RequestKind::Resolve,
            budget: None,
            policy: ResponsePolicy::Exact,
        });
    }
    out
}

fn config(io: IoBackend) -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        io,
        ..ServerConfig::default()
    }
}

fn counter(stats: &Json, name: &str) -> Option<u64> {
    stats.get("counters")?.get(name)?.as_u64()
}

/// The acceptance snapshot: every cell the issue names must be present
/// and the traffic-dependent ones non-zero after a replay.
#[test]
fn stats_verb_round_trips_on_both_backends_and_wire_versions() {
    for io in [IoBackend::Threads, IoBackend::Events] {
        for wire in [1u32, 2] {
            let what = format!("io {io:?} wire {wire}");
            let mut server = Server::bind("127.0.0.1:0", &config(io)).expect("bind");
            let mut client = Client::connect_with(server.local_addr(), wire).expect("connect");
            assert_eq!(client.wire_version(), wire, "{what}");

            let responses = client.replay(&trace()).expect("replay");
            assert_eq!(responses.len(), 4, "{what}");
            client.ping("probe").expect("pong");

            let json = client.stats().expect("stats");
            let stats = Json::parse(&json).unwrap_or_else(|e| panic!("{what}: bad JSON {e}"));

            // Request counters reflect the replay on both layers.
            assert_eq!(counter(&stats, "net.requests"), Some(4), "{what}: {json}");
            assert_eq!(counter(&stats, "service.requests"), Some(4), "{what}");
            assert_eq!(counter(&stats, "net.responses"), Some(4), "{what}");
            assert_eq!(counter(&stats, "net.pings"), Some(1), "{what}");
            assert!(counter(&stats, "net.stats_requests") >= Some(1), "{what}");
            assert_eq!(
                counter(
                    &stats,
                    &format!(
                        "net.conns.{}",
                        match io {
                            IoBackend::Threads => "threads",
                            IoBackend::Events => "events",
                        }
                    )
                ),
                Some(1),
                "{what}"
            );

            // Health counters exist (zero on a healthy run).
            assert_eq!(counter(&stats, "service.shed"), Some(0), "{what}");
            assert_eq!(counter(&stats, "service.worker_panics"), Some(0), "{what}");
            assert_eq!(counter(&stats, "net.responses_dropped"), Some(0), "{what}");

            // Queue-depth gauges: aggregate plus one per worker.
            let gauges = stats.get("gauges").expect("gauges object");
            assert!(gauges.get("service.queue_depth").is_some(), "{what}");
            assert!(
                gauges.get("service.worker0.queue_depth").is_some(),
                "{what}"
            );
            assert_eq!(
                gauges.get("service.workers").and_then(Json::as_u64),
                Some(2),
                "{what}"
            );

            // The cache served the identical re-solves; the derived ratio
            // reflects it.
            let ratio = stats
                .get("derived")
                .and_then(|d| d.get("service.cache.hit_ratio"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{what}: no hit ratio in {json}"));
            assert!((0.0..=1.0).contains(&ratio), "{what}: ratio {ratio}");
            assert!(ratio > 0.0, "{what}: re-solve burst produced no cache hits");

            // Latency histograms carry quantiles for the solved requests.
            let solve = stats
                .get("histograms")
                .and_then(|h| h.get("service.solve_us"))
                .unwrap_or_else(|| panic!("{what}: no solve histogram in {json}"));
            assert!(
                solve.get("count").and_then(Json::as_u64) >= Some(1),
                "{what}"
            );
            assert!(
                solve.get("p50_us").and_then(Json::as_f64).is_some(),
                "{what}"
            );
            assert!(
                solve.get("p99_us").and_then(Json::as_f64).is_some(),
                "{what}"
            );
            assert!(
                stats
                    .get("histograms")
                    .and_then(|h| h.get("net.ping_us"))
                    .and_then(|h| h.get("count"))
                    .and_then(Json::as_u64)
                    >= Some(1),
                "{what}"
            );

            server.shutdown();
        }
    }
}

/// Recording is strictly off the result path: the same trace through an
/// uninstrumented pool, an explicitly instrumented pool and the (always
/// instrumented) loopback server yields bit-for-bit identical responses.
#[test]
fn instrumentation_never_changes_a_response_byte() {
    let base = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };

    let mut plain_pool = SolverPool::new(&base);
    let plain = plain_pool.replay(trace());
    plain_pool.shutdown();

    let instrumented_config = ServiceConfig {
        metrics: Some(Registry::shared()),
        ..base.clone()
    };
    let mut metered_pool = SolverPool::new(&instrumented_config);
    let metered = metered_pool.replay(trace());
    metered_pool.shutdown();

    let mut server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            service: base,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let remote = client.replay(&trace()).expect("remote replay");
    server.shutdown();

    for (what, got) in [("metered pool", &metered), ("loopback", &remote)] {
        assert_eq!(plain.len(), got.len(), "{what}");
        for (a, b) in plain.iter().zip(got) {
            assert_eq!(a.id, b.id, "{what}");
            assert_eq!(a.outcome, b.outcome, "{what}");
            assert_eq!(a.cached, b.cached, "{what}: request {}", a.id);
            assert_eq!(a.probes, b.probes, "{what}: request {}", a.id);
            assert_eq!(
                a.min_yield().map(f64::to_bits),
                b.min_yield().map(f64::to_bits),
                "{what}: request {} drifted",
                a.id
            );
        }
    }
}

/// The writer-teardown contract, now accounted: responses completed after
/// the injected connection cut land in `net.responses_dropped` instead of
/// vanishing silently — on both I/O backends.
#[test]
fn writer_teardown_counts_dropped_in_flight_responses() {
    for io in [IoBackend::Threads, IoBackend::Events] {
        let what = format!("io {io:?}");
        let mut config = config(io);
        // Cut the connection after the first response frame; the replay
        // keeps three more completions in flight behind it.
        config.service.faults = FaultPlan::parse("drop=1");
        assert!(config.service.faults.is_some(), "fault spec parsed");

        let mut server = Server::bind("127.0.0.1:0", &config).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for request in trace() {
            client.submit(&request).expect("submit");
        }
        let mut delivered = 0usize;
        let mut failed = false;
        for response in client.responses() {
            match response {
                Ok(r) => {
                    assert_eq!(r.outcome, RequestOutcome::Solved, "{what}");
                    delivered += 1;
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "{what}: injected drop never surfaced");
        assert!(delivered < 4, "{what}: all responses arrived despite drop");

        // The remaining completions drain asynchronously; poll the live
        // registry until every completion is accounted — written or
        // dropped, nothing vanishes. (The teardown's RST can discard
        // frames the server already wrote, so `delivered` here is a
        // lower bound on the server-side `net.responses` count.)
        let registry = server.metrics();
        let deadline = Instant::now() + Duration::from_secs(10);
        let (written, dropped) = loop {
            let snapshot = registry.snapshot();
            let get = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
            let (written, dropped) = (get("net.responses"), get("net.responses_dropped"));
            if written + dropped >= 4 || Instant::now() > deadline {
                break (written, dropped);
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(
            written + dropped,
            4,
            "{what}: {written} written + {dropped} dropped ≠ 4 submitted"
        );
        assert!(dropped >= 3, "{what}: cut after 1 frame dropped {dropped}");
        assert!(delivered as u64 <= written, "{what}");
        server.shutdown();
    }
}
