//! Doc-driven protocol test: every example frame in `crates/net/README.md`
//! must parse verbatim with the production parsers. The README marks its
//! wire-exact examples with ```frames fences; this test extracts each
//! block and feeds request blocks to the `trace_io` assembler (the same
//! parser the server's reader uses) and response/control frames to the
//! client's frame reader. Documentation that drifts from the protocol
//! fails the build.

use std::io::BufReader;
use vmplace_net::codec::{self, ClientFrame};
use vmplace_net::wire::{read_server_frame, NetError, ServerFrame};
use vmplace_service::trace_io::BlockAssembler;

const README: &str = include_str!("../README.md");

/// The contents of every fenced block with the given info string, in
/// document order.
fn fenced_blocks(tag: &str) -> Vec<String> {
    let fence = format!("```{tag}");
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in README.lines() {
        match &mut current {
            None if line.trim() == fence => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unclosed ```{tag} block in README");
    assert!(!blocks.is_empty(), "README has no ```{tag} examples");
    blocks
}

/// The contents of every ```frames fenced block, in document order.
fn frames_blocks() -> Vec<String> {
    fenced_blocks("frames")
}

#[test]
fn every_readme_request_block_parses_verbatim() {
    let mut requests = 0usize;
    for block in frames_blocks() {
        if !block.starts_with("request") {
            continue;
        }
        let mut assembler = BlockAssembler::new();
        for (idx, line) in block.lines().enumerate() {
            match assembler.feed(idx + 1, line) {
                Ok(Some(_)) => requests += 1,
                Ok(None) => {}
                Err(e) => panic!("README request example failed to parse: {e}\n{block}"),
            }
        }
        assert!(
            !assembler.in_block(),
            "README example left an unclosed request block:\n{block}"
        );
    }
    assert!(
        requests >= 4,
        "expected several request examples, got {requests}"
    );
}

#[test]
fn every_readme_response_frame_parses_verbatim() {
    let mut responses = 0usize;
    for block in frames_blocks() {
        if !block.starts_with("response") {
            continue;
        }
        let mut reader = BufReader::new(block.as_bytes());
        loop {
            match read_server_frame(&mut reader) {
                Ok(ServerFrame::Response(_)) => responses += 1,
                Ok(other) => panic!("unexpected frame in README example: {other:?}"),
                Err(NetError::Closed) => break, // end of block
                Err(e) => panic!("README response example failed to parse: {e}\n{block}"),
            }
        }
    }
    assert!(
        responses >= 3,
        "expected several response examples, got {responses}"
    );
}

#[test]
fn readme_examples_carry_the_policy_machinery() {
    // The examples must actually exercise the v1 policy extension: at
    // least one policy= request attribute and one repaired= response
    // attribute, plus a cached response.
    let all = frames_blocks().join("");
    assert!(
        all.contains("policy=repaired:0.05:4"),
        "no explicit policy example"
    );
    assert!(
        all.contains("policy=repaired\n"),
        "no default-repaired example"
    );
    assert!(
        all.contains(" repaired=1"),
        "no repair-path response example"
    );
    assert!(all.contains(" cached"), "no cached response example");
}

#[test]
fn readme_examples_carry_the_failure_model() {
    // The failure-model examples must round-trip the production parser
    // with their semantics intact: each failure outcome appears, carries
    // a diagnostic, never carries a solution, and the overloaded one
    // carries the documented retry hint.
    use std::time::Duration;
    use vmplace_model::RequestOutcome;

    let mut seen = Vec::new();
    for block in frames_blocks() {
        if !block.starts_with("response") {
            continue;
        }
        let mut reader = BufReader::new(block.as_bytes());
        while let Ok(ServerFrame::Response(r)) = read_server_frame(&mut reader) {
            if r.outcome.is_retryable() {
                assert!(r.error.is_some(), "failure example without detail");
                assert!(r.solution.is_none(), "failure example with a solution");
                if r.outcome == RequestOutcome::Overloaded {
                    assert_eq!(
                        r.retry_after,
                        Some(Duration::from_millis(24)),
                        "overloaded example must parse its retry-after-ms attribute"
                    );
                }
                seen.push(r.outcome);
            }
        }
    }
    for outcome in [
        RequestOutcome::Failed,
        RequestOutcome::Overloaded,
        RequestOutcome::StaleStream,
    ] {
        assert!(seen.contains(&outcome), "no `{outcome:?}` example");
    }
}

#[test]
fn readme_stats_exchange_parses_verbatim() {
    // The v1 stats request is the bare verb…
    for block in fenced_blocks("frames-stats") {
        assert_eq!(block.trim(), "stats", "v1 stats request is the bare verb");
    }
    // …and the reply parses with the production frame reader, carrying a
    // JSON body the obs parser accepts, with the documented shape.
    let mut replies = 0usize;
    for block in fenced_blocks("frames-stats-reply") {
        let mut reader = BufReader::new(block.as_bytes());
        loop {
            match read_server_frame(&mut reader) {
                Ok(ServerFrame::Stats(json)) => {
                    let stats = vmplace_obs::json::Json::parse(&json)
                        .unwrap_or_else(|e| panic!("README stats JSON failed to parse: {e}"));
                    for section in ["counters", "gauges", "histograms", "derived"] {
                        assert!(
                            stats.get(section).is_some(),
                            "README stats example lacks `{section}`"
                        );
                    }
                    let solve = stats
                        .get("histograms")
                        .and_then(|h| h.get("service.solve_us"))
                        .expect("README stats example carries a solve histogram");
                    for key in ["count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us"] {
                        assert!(solve.get(key).is_some(), "histogram example lacks `{key}`");
                    }
                    replies += 1;
                }
                Ok(other) => panic!("unexpected frame in README stats example: {other:?}"),
                Err(NetError::Closed) => break,
                Err(e) => panic!("README stats example failed to parse: {e}\n{block}"),
            }
        }
    }
    assert!(replies >= 1, "README has no stats reply example");
}

#[test]
fn readme_v2_stats_hex_decodes_verbatim() {
    let mut bytes = Vec::new();
    for block in fenced_blocks("v2-stats-hex") {
        for line in block.lines() {
            let wire = line.split('#').next().unwrap_or("");
            for word in wire.split_whitespace() {
                let byte = u8::from_str_radix(word, 16)
                    .unwrap_or_else(|e| panic!("bad hex `{word}` in README v2 stats example: {e}"));
                bytes.push(byte);
            }
        }
    }

    // Client STATS frame, then the server's STATS_REPLY.
    let (kind, len) = codec::parse_header(&bytes[..codec::HEADER_LEN].try_into().unwrap());
    assert_eq!(kind, codec::kind::STATS, "first frame is the stats request");
    assert_eq!(len, 0, "stats request body is empty");
    let frame = codec::decode_client_frame(kind, &[]).expect("stats request decodes");
    assert!(matches!(frame, ClientFrame::Stats), "{frame:?}");

    let rest = &bytes[codec::HEADER_LEN..];
    let (kind, len) = codec::parse_header(&rest[..codec::HEADER_LEN].try_into().unwrap());
    assert_eq!(kind, codec::kind::STATS_REPLY, "second frame is the reply");
    let body = &rest[codec::HEADER_LEN..];
    assert_eq!(body.len(), len as usize, "README hex body length");
    match codec::decode_server_frame(kind, body).expect("stats reply decodes") {
        ServerFrame::Stats(json) => {
            vmplace_obs::json::Json::parse(&json)
                .unwrap_or_else(|e| panic!("README v2 stats body is not JSON: {e}"));
        }
        other => panic!("STATS_REPLY decoded to {other:?}"),
    }
}

#[test]
fn readme_v2_hex_example_decodes_verbatim() {
    use std::time::Duration;

    // Everything left of a `#` in the ```v2-frames-hex block is wire
    // bytes; concatenate and walk it with the production decoders.
    let mut bytes = Vec::new();
    for block in fenced_blocks("v2-frames-hex") {
        for line in block.lines() {
            let wire = line.split('#').next().unwrap_or("");
            for word in wire.split_whitespace() {
                let byte = u8::from_str_radix(word, 16)
                    .unwrap_or_else(|e| panic!("bad hex `{word}` in README v2 example: {e}"));
                bytes.push(byte);
            }
        }
    }

    let mut frames = Vec::new();
    let mut rest = &bytes[..];
    while !rest.is_empty() {
        assert!(rest.len() >= codec::HEADER_LEN, "torn header in README hex");
        let mut head = [0u8; codec::HEADER_LEN];
        head.copy_from_slice(&rest[..codec::HEADER_LEN]);
        let (kind, len) = codec::parse_header(&head);
        let end = codec::HEADER_LEN + len as usize;
        assert!(rest.len() >= end, "README hex truncates a body");
        let body = &rest[codec::HEADER_LEN..end];
        // The high bit of the kind says which direction's decoder owns it.
        if kind & 0x80 == 0 {
            frames.push(format!(
                "{:?}",
                codec::decode_client_frame(kind, body)
                    .unwrap_or_else(|e| panic!("README client frame failed to decode: {e}"))
            ));
            if kind == codec::kind::REQUEST {
                let ClientFrame::Request(req) =
                    codec::decode_client_frame(kind, body).expect("request")
                else {
                    panic!("REQUEST kind decoded to a non-request frame");
                };
                assert_eq!(req.id, 3, "README example id");
                assert_eq!(req.stream, 0, "README example stream");
                assert_eq!(
                    req.budget,
                    Some(Duration::from_micros(500)),
                    "README example budget"
                );
                assert!(
                    matches!(req.kind, vmplace_model::RequestKind::Resolve),
                    "README example is a resolve"
                );
            }
        } else {
            frames.push(format!(
                "{:?}",
                codec::decode_server_frame(kind, body)
                    .unwrap_or_else(|e| panic!("README server frame failed to decode: {e}"))
            ));
        }
        rest = &rest[end..];
    }

    // The documented conversation: request, ping, pong, bye — in order.
    assert_eq!(frames.len(), 4, "README example frame count: {frames:?}");
    assert!(frames[0].starts_with("Request"), "{frames:?}");
    assert_eq!(frames[1], format!("{:?}", ClientFrame::Ping("ok".into())));
    assert_eq!(frames[2], format!("{:?}", ServerFrame::Pong("ok".into())));
    assert_eq!(frames[3], format!("{:?}", ServerFrame::Bye));
}
