//! In-crate smoke tests for the server/client pair. The full
//! differential and hardening suites live at the workspace root
//! (`tests/integration_net.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vmplace_model::{
    AllocRequest, Node, ProblemInstance, RequestKind, RequestOutcome, ResponsePolicy, Service,
};
use vmplace_net::{Client, NetError, Server, ServerConfig};
use vmplace_service::ServiceConfig;

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn instance() -> ProblemInstance {
    let nodes = vec![Node::multicore(2, 0.5, 1.0), Node::multicore(2, 0.4, 0.6)];
    let mk = |rc: f64, nc: f64, mem: f64| {
        Service::new(
            vec![rc / 2.0, mem],
            vec![rc, mem],
            vec![nc / 2.0, 0.0],
            vec![nc, 0.0],
        )
    };
    let services = vec![mk(0.2, 0.6, 0.3), mk(0.1, 0.5, 0.4), mk(0.15, 0.7, 0.2)];
    ProblemInstance::new(nodes, services).unwrap()
}

fn trace() -> Vec<AllocRequest> {
    vec![
        AllocRequest {
            id: 0,
            stream: 0,
            kind: RequestKind::New(instance()),
            budget: None,
            policy: ResponsePolicy::Exact,
        },
        AllocRequest {
            id: 1,
            stream: 0,
            kind: RequestKind::Resolve,
            budget: None,
            policy: ResponsePolicy::Exact,
        },
        AllocRequest {
            id: 2,
            stream: 0,
            kind: RequestKind::Resolve,
            budget: None,
            policy: ResponsePolicy::Exact,
        },
    ]
}

#[test]
fn ephemeral_port_serves_a_pipelined_replay() {
    let mut server = Server::bind("127.0.0.1:0", &config(2)).expect("bind");
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral port must be resolved");

    let mut client = Client::connect(addr).expect("connect");
    let responses = client.replay(&trace()).expect("replay");
    assert_eq!(responses.len(), 3);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.id, i as u64);
        assert_eq!(r.stream, 0, "client stream restored");
        assert_eq!(r.outcome, RequestOutcome::Solved);
        assert!(r.min_yield().unwrap() > 0.0);
    }
    // Identical re-solves: the third request hits the response cache and
    // is bit-for-bit equal to the second.
    assert!(responses[2].cached, "identical re-solve not cached");
    assert_eq!(responses[1].probes, responses[2].probes);
    assert_eq!(
        responses[1].min_yield().unwrap().to_bits(),
        responses[2].min_yield().unwrap().to_bits()
    );
    server.shutdown();
    server.shutdown(); // idempotent
}

#[test]
fn ping_and_wire_shutdown() {
    let server = Server::bind("127.0.0.1:0", &config(1)).expect("bind");
    let addr = server.local_addr();
    let waiter = std::thread::spawn(move || server.wait());

    let mut client = Client::connect(addr).expect("connect");
    client.ping("abc").expect("pong");
    client.submit(&trace()[0]).expect("submit");
    let leftovers = client.shutdown_server().expect("clean bye");
    // The in-flight request was drained, not dropped.
    assert_eq!(leftovers.len(), 1);
    assert_eq!(leftovers[0].outcome, RequestOutcome::Solved);
    waiter.join().expect("server wait returns");
}

#[test]
fn draining_greeting_rejects_new_connections() {
    let mut server = Server::bind("127.0.0.1:0", &config(1)).expect("bind");
    let addr = server.local_addr();
    server.begin_shutdown();
    match Client::connect(addr) {
        Err(NetError::Draining) => {}
        other => panic!("expected draining, got {other:?}", other = other.err()),
    }
    server.shutdown();
}

#[test]
fn unknown_verb_gets_structured_error_and_server_survives() {
    let mut server = Server::bind("127.0.0.1:0", &config(1)).expect("bind");
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"vmplace-net 1\nfrobnicate now\n").unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).expect("server closes cleanly");
    assert!(buf.contains("ready"), "{buf}");
    assert!(buf.contains("error unknown-verb"), "{buf}");
    assert!(buf.trim_end().ends_with("bye"), "{buf}");

    // The failure was connection-local.
    let mut client = Client::connect(addr).expect("fresh connection");
    client.ping("still-alive").expect("pong");
    server.shutdown();
}
