//! The `vmplace-net` wire protocol: framing, limits, encode/decode.
//!
//! Line-oriented text over TCP, extending the request framing of
//! [`vmplace_service::trace_io`] (every solver request travels as exactly
//! the `request … end` block a trace file would hold) with connection
//! control frames and response frames. See `crates/net/README.md` for
//! the full grammar, versioning and error-code reference.
//!
//! ## Client → server
//!
//! ```text
//! vmplace-net 1                 # hello: protocol version, first line
//! request <id> <stream> <new|delta|resolve> [budget_ms=N|budget_us=N] [policy=P]
//! …body…                        # exactly trace_io's block body
//! end
//! ping [token]
//! stats                         # ask for a live metrics snapshot
//! shutdown                      # ask the server to drain and exit
//! ```
//!
//! ## Server → client
//!
//! ```text
//! vmplace-net 1 ready           # greeting (or `draining` when shutting down)
//! response <id> <stream> <outcome> <probes> <wall_us> [cached] [repaired=M] [retry-after-ms=N]
//! winner <label>                # optional
//! detail <message>              # optional (rejections)
//! minyield <f64>                # optional ┐
//! yields <f64…>                 #          ├ present iff a solution exists
//! nodes <h…>                    # optional ┘ ('-' = unplaced)
//! end
//! pong [token]
//! stats <json>                  # one-line metrics snapshot (reply to `stats`)
//! error <code> <message>        # structured protocol error, then close
//! bye                           # clean end of the response stream
//! ```
//!
//! Floating-point values are serialised with Rust's shortest round-trip
//! `Display`, so responses decode **bit-for-bit** — the loopback
//! differential suite pins server-mediated replays to in-process ones
//! exactly.

use std::io::{BufRead, Read};
use std::time::Duration;
use vmplace_model::{AllocResponse, Placement, RequestOutcome, Solution};

/// The line-oriented text protocol version (the v1 this module
/// implements). The hello/greeting carries the version; servers answer
/// `min(client version, server maximum)` for known versions and
/// `error bad-version …` for unknown ones.
pub const PROTOCOL_VERSION: u32 = 1;

/// The length-prefixed binary protocol version (see [`crate::codec`]).
/// After a `vmplace-net 2 ready` greeting both directions switch to
/// binary frames; the handshake itself stays text in every version.
pub const PROTOCOL_V2: u32 = 2;

/// Highest protocol version this build can speak.
pub const MAX_PROTOCOL_VERSION: u32 = PROTOCOL_V2;

/// Magic word opening the hello and greeting lines.
pub const MAGIC: &str = "vmplace-net";

/// Longest accepted wire line, in bytes (64 KiB). A line that exceeds it
/// is answered with `error frame-too-large` and the connection closes —
/// the parser never buffers unbounded input.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Most body lines accepted in one `request … end` block. Bounds the
/// total frame at roughly `MAX_BODY_LINES × MAX_LINE_BYTES`.
pub const MAX_BODY_LINES: usize = 65_536;

/// Client stream ids must fit below this bound (2^40): the server packs
/// `(connection, stream)` into one 64-bit stream id to keep different
/// connections' streams separate inside the shared pool.
pub const MAX_STREAM_ID: u64 = 1 << 40;

/// Machine-readable error codes carried by `error` frames.
pub mod codes {
    /// The hello line was missing or spoke an unsupported version.
    pub const BAD_VERSION: &str = "bad-version";
    /// A frame failed to parse (bad header, bad body, bad number…).
    pub const BAD_FRAME: &str = "bad-frame";
    /// A line was not valid UTF-8.
    pub const BAD_UTF8: &str = "bad-utf8";
    /// A line or request block exceeded the protocol limits.
    pub const FRAME_TOO_LARGE: &str = "frame-too-large";
    /// The top-level verb is not part of the protocol.
    pub const UNKNOWN_VERB: &str = "unknown-verb";
    /// The server is shutting down and no longer accepts work.
    pub const DRAINING: &str = "draining";
    /// The server is out of capacity to even accept the connection
    /// (file-descriptor exhaustion). The message carries a
    /// `retry-after-ms=N` hint, mirroring the `overloaded` response
    /// outcome's retry contract.
    pub const OVERLOADED: &str = "overloaded";
}

/// Errors surfaced by the client (and by the server's internal reader).
#[derive(Debug)]
pub enum NetError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// The peer sent a structured `error <code> <message>` frame.
    Remote {
        /// One of [`codes`].
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered the connection attempt with `draining`.
    Draining,
    /// The peer violated the protocol (unparseable frame).
    Protocol(String),
    /// The connection closed before the expected frame arrived.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote { code, message } => write!(f, "remote error [{code}]: {message}"),
            NetError::Draining => write!(f, "server is draining (shutting down)"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Outcome of one bounded line read.
pub enum LineRead {
    /// A complete line (without its trailing newline), valid UTF-8.
    Line(String),
    /// End of stream before any byte of a new line.
    Eof,
    /// The line exceeded `max` bytes; the connection is desynchronised.
    TooLong,
    /// The line held invalid UTF-8.
    BadUtf8,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max + 1` bytes — oversized input is reported, not accumulated.
/// Trailing `\r` is stripped so `telnet`-style peers work.
pub fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    let n = reader.take(max as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    } else if n > max {
        return Ok(LineRead::TooLong);
    }
    // An unterminated final line (EOF without newline) is accepted as-is.
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(LineRead::Line(s)),
        Err(_) => Ok(LineRead::BadUtf8),
    }
}

fn fmt_f64s(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serialises one response frame (`response … end`).
pub fn write_response(out: &mut String, resp: &AllocResponse) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "response {} {} {} {} {}",
        resp.id,
        resp.stream,
        resp.outcome.wire_name(),
        resp.probes,
        resp.wall.as_micros()
    );
    if resp.cached {
        out.push_str(" cached");
    }
    // Only repair-path responses carry the attribute, so clients that
    // never send a repaired policy never see it (version tolerance).
    if let Some(m) = resp.migrations {
        let _ = write!(out, " repaired={m}");
    }
    // Likewise only shed responses carry a retry hint. A sub-millisecond
    // hint rounds up: `retry-after-ms=0` would read as "retry now".
    if let Some(after) = resp.retry_after {
        let _ = write!(out, " retry-after-ms={}", after.as_millis().max(1));
    }
    out.push('\n');
    if let Some(winner) = &resp.winner {
        let _ = writeln!(out, "winner {winner}");
    }
    if let Some(error) = &resp.error {
        // Rejection details are single-line by construction (model error
        // Displays); defensively flatten any newline.
        let _ = writeln!(out, "detail {}", error.replace('\n', " "));
    }
    if let Some(sol) = &resp.solution {
        let _ = writeln!(out, "minyield {}", sol.min_yield);
        let _ = writeln!(out, "yields {}", fmt_f64s(&sol.yields));
        out.push_str("nodes");
        for j in 0..sol.placement.len() {
            match sol.placement.node_of(j) {
                Some(h) => {
                    let _ = write!(out, " {h}");
                }
                None => out.push_str(" -"),
            }
        }
        out.push('\n');
    }
    out.push_str("end\n");
}

/// A parsed server → client frame.
#[derive(Debug)]
pub enum ServerFrame {
    /// A solver response.
    Response(Box<AllocResponse>),
    /// Reply to `ping`.
    Pong(String),
    /// Reply to `stats`: the server's live metrics snapshot as one line
    /// of JSON (see `vmplace_obs::Snapshot::to_json` for the shape).
    Stats(String),
    /// Structured protocol error.
    Error {
        /// One of [`codes`].
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Clean end of the response stream.
    Bye,
}

/// Reads and parses the next server frame from `reader`.
pub fn read_server_frame<R: BufRead>(reader: &mut R) -> Result<ServerFrame, NetError> {
    let header = loop {
        match read_line_bounded(reader, MAX_LINE_BYTES)? {
            LineRead::Eof => return Err(NetError::Closed),
            LineRead::TooLong => return Err(NetError::Protocol("oversized frame line".into())),
            LineRead::BadUtf8 => return Err(NetError::Protocol("invalid UTF-8".into())),
            LineRead::Line(l) if l.trim().is_empty() => continue,
            LineRead::Line(l) => break l,
        }
    };
    let (verb, rest) = header
        .trim()
        .split_once(char::is_whitespace)
        .unwrap_or((header.trim(), ""));
    match verb {
        "pong" => Ok(ServerFrame::Pong(rest.trim().to_string())),
        "stats" => Ok(ServerFrame::Stats(rest.trim().to_string())),
        "bye" => Ok(ServerFrame::Bye),
        "error" => {
            let (code, message) = rest
                .trim()
                .split_once(char::is_whitespace)
                .unwrap_or((rest, ""));
            Ok(ServerFrame::Error {
                code: code.to_string(),
                message: message.trim().to_string(),
            })
        }
        "response" => parse_response(rest, reader).map(|r| ServerFrame::Response(Box::new(r))),
        other => Err(NetError::Protocol(format!("unknown server verb `{other}`"))),
    }
}

fn parse_response<R: BufRead>(
    header_rest: &str,
    reader: &mut R,
) -> Result<AllocResponse, NetError> {
    let bad = |what: &str| NetError::Protocol(format!("response frame: {what}"));
    let mut words = header_rest.split_whitespace();
    let (Some(id), Some(stream), Some(outcome), Some(probes), Some(wall_us)) = (
        words.next(),
        words.next(),
        words.next(),
        words.next(),
        words.next(),
    ) else {
        return Err(bad("short header"));
    };
    let id: u64 = id.parse().map_err(|_| bad("bad id"))?;
    let stream: u64 = stream.parse().map_err(|_| bad("bad stream"))?;
    let outcome = RequestOutcome::from_wire(outcome).ok_or_else(|| bad("bad outcome"))?;
    let probes: u64 = probes.parse().map_err(|_| bad("bad probes"))?;
    let wall_us: u64 = wall_us.parse().map_err(|_| bad("bad wall"))?;
    let mut cached = false;
    let mut migrations = None;
    let mut retry_after = None;
    for extra in words {
        if let Some(m) = extra.strip_prefix("repaired=") {
            migrations = Some(m.parse().map_err(|_| bad("bad migration count"))?);
            continue;
        }
        if let Some(ms) = extra.strip_prefix("retry-after-ms=") {
            let ms: u64 = ms.parse().map_err(|_| bad("bad retry-after"))?;
            retry_after = Some(Duration::from_millis(ms));
            continue;
        }
        match extra {
            "cached" => cached = true,
            other => return Err(bad(&format!("unknown response attribute `{other}`"))),
        }
    }

    let mut winner = None;
    let mut error = None;
    let mut min_yield: Option<f64> = None;
    let mut yields: Option<Vec<f64>> = None;
    let mut nodes: Option<Vec<Option<usize>>> = None;
    loop {
        let line = match read_line_bounded(reader, MAX_LINE_BYTES)? {
            LineRead::Eof => return Err(NetError::Closed),
            LineRead::TooLong => return Err(bad("oversized body line")),
            LineRead::BadUtf8 => return Err(bad("invalid UTF-8 in body")),
            LineRead::Line(l) => l,
        };
        let trimmed = line.trim();
        if trimmed == "end" {
            break;
        }
        let (word, rest) = trimmed
            .split_once(char::is_whitespace)
            .unwrap_or((trimmed, ""));
        match word {
            "winner" => winner = Some(rest.to_string()),
            "detail" => error = Some(rest.to_string()),
            "minyield" => min_yield = Some(rest.trim().parse().map_err(|_| bad("bad minyield"))?),
            "yields" => {
                let parsed: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
                yields = Some(parsed.map_err(|_| bad("bad yields"))?);
            }
            "nodes" => {
                let parsed: Result<Vec<Option<usize>>, NetError> = rest
                    .split_whitespace()
                    .map(|w| {
                        if w == "-" {
                            Ok(None)
                        } else {
                            w.parse().map(Some).map_err(|_| bad("bad node index"))
                        }
                    })
                    .collect();
                nodes = Some(parsed?);
            }
            other => return Err(bad(&format!("unknown body line `{other}`"))),
        }
    }

    let solution = match (min_yield, yields, nodes) {
        (Some(min_yield), Some(yields), Some(nodes)) => {
            if yields.len() != nodes.len() {
                return Err(bad("yields/nodes length mismatch"));
            }
            Some(Solution {
                placement: Placement::from_assignment(nodes),
                yields,
                min_yield,
            })
        }
        (None, None, None) => None,
        _ => {
            return Err(bad(
                "partial solution (minyield/yields/nodes must travel together)",
            ))
        }
    };
    Ok(AllocResponse {
        id,
        stream,
        outcome,
        solution,
        winner,
        probes,
        wall: Duration::from_micros(wall_us),
        error,
        cached,
        migrations,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(resp: &AllocResponse) -> AllocResponse {
        let mut text = String::new();
        write_response(&mut text, resp);
        let mut reader = BufReader::new(text.as_bytes());
        match read_server_frame(&mut reader).expect("parse") {
            ServerFrame::Response(r) => *r,
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip_is_bit_exact() {
        let resp = AllocResponse {
            id: 42,
            stream: 7,
            outcome: RequestOutcome::Solved,
            solution: Some(Solution {
                placement: Placement::from_assignment(vec![Some(1), Some(0), None]),
                yields: vec![0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE],
                min_yield: 1.0 / 3.0,
            }),
            winner: Some("FF/MAX_DESC/NAT".into()),
            probes: 99,
            wall: Duration::from_micros(12345),
            error: None,
            cached: true,
            migrations: None,
            retry_after: None,
        };
        let back = roundtrip(&resp);
        assert_eq!(back.id, 42);
        assert_eq!(back.stream, 7);
        assert_eq!(back.outcome, RequestOutcome::Solved);
        assert!(back.cached);
        assert_eq!(back.migrations, None);
        assert_eq!(back.probes, 99);
        assert_eq!(back.wall, Duration::from_micros(12345));
        assert_eq!(back.winner.as_deref(), Some("FF/MAX_DESC/NAT"));
        let (a, b) = (resp.solution.unwrap(), back.solution.unwrap());
        assert_eq!(a.min_yield.to_bits(), b.min_yield.to_bits());
        for (x, y) in a.yields.iter().zip(&b.yields) {
            assert_eq!(x.to_bits(), y.to_bits(), "yield bits");
        }
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn rejection_roundtrip_keeps_detail() {
        let resp = AllocResponse::rejected(3, 1, "delta before New".into());
        let back = roundtrip(&resp);
        assert_eq!(back.outcome, RequestOutcome::Rejected);
        assert_eq!(back.error.as_deref(), Some("delta before New"));
        assert!(back.solution.is_none());
        assert!(!back.cached);
    }

    #[test]
    fn control_frames_parse() {
        let mut r = BufReader::new(&b"pong hello\nbye\nerror bad-frame line 3: nope\n"[..]);
        assert!(matches!(
            read_server_frame(&mut r).unwrap(),
            ServerFrame::Pong(t) if t == "hello"
        ));
        assert!(matches!(
            read_server_frame(&mut r).unwrap(),
            ServerFrame::Bye
        ));
        match read_server_frame(&mut r).unwrap() {
            ServerFrame::Error { code, message } => {
                assert_eq!(code, "bad-frame");
                assert_eq!(message, "line 3: nope");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_server_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn stats_frame_parses_with_its_json_payload() {
        let mut r = BufReader::new(&b"stats {\"counters\":{\"net.requests\":3}}\nbye\n"[..]);
        match read_server_frame(&mut r).unwrap() {
            ServerFrame::Stats(json) => {
                assert_eq!(json, "{\"counters\":{\"net.requests\":3}}");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_server_frame(&mut r).unwrap(),
            ServerFrame::Bye
        ));
    }

    #[test]
    fn bounded_reader_flags_oversize_and_bad_utf8() {
        let long = [b'x'; 100];
        let mut r = BufReader::new(&long[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::TooLong
        ));
        let mut r = BufReader::new(&b"\xff\xfe\n"[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::BadUtf8
        ));
        let mut r = BufReader::new(&b"ok\r\n"[..]);
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "ok"),
            _ => panic!(),
        }
    }

    #[test]
    fn repaired_attribute_roundtrips() {
        let mut resp = AllocResponse::rejected(3, 1, "x".into());
        resp.outcome = RequestOutcome::Solved;
        resp.error = None;
        resp.migrations = Some(2);
        let mut text = String::new();
        write_response(&mut text, &resp);
        assert!(text.contains(" repaired=2"), "{text}");
        let back = roundtrip(&resp);
        assert_eq!(back.migrations, Some(2));
    }

    #[test]
    fn failure_outcomes_and_retry_hint_roundtrip() {
        let resp = AllocResponse::overloaded(8, 2, Duration::from_millis(250));
        let mut text = String::new();
        write_response(&mut text, &resp);
        assert!(text.contains(" retry-after-ms=250"), "{text}");
        let back = roundtrip(&resp);
        assert_eq!(back.outcome, RequestOutcome::Overloaded);
        assert_eq!(back.retry_after, Some(Duration::from_millis(250)));
        assert!(back.error.is_some());

        // Sub-millisecond hints round up instead of advertising zero.
        let tiny = AllocResponse::overloaded(9, 2, Duration::from_micros(3));
        let mut text = String::new();
        write_response(&mut text, &tiny);
        assert!(text.contains(" retry-after-ms=1"), "{text}");

        let back = roundtrip(&AllocResponse::failed(10, 2, "worker panicked".into()));
        assert_eq!(back.outcome, RequestOutcome::Failed);
        assert_eq!(back.error.as_deref(), Some("worker panicked"));
        assert_eq!(back.retry_after, None);

        let back = roundtrip(&AllocResponse::stale_stream(11, 2));
        assert_eq!(back.outcome, RequestOutcome::StaleStream);
        assert!(back.error.is_some());
    }

    #[test]
    fn partial_solutions_are_rejected() {
        let text = "response 0 0 solved 1 1\nyields 0.5\nend\n";
        let mut r = BufReader::new(text.as_bytes());
        assert!(matches!(
            read_server_frame(&mut r),
            Err(NetError::Protocol(_))
        ));
    }
}
