//! The TCP front-end: acceptor, per-connection reader/writer threads,
//! graceful drain.
//!
//! ```text
//!            acceptor thread
//!                  │ accept()
//!        ┌─────────┴─────────┐  per connection
//!        ▼                   ▼
//!   reader thread       writer thread
//!   parse frames        reorder completions by submission
//!   remap ids/streams   sequence, restore client ids,
//!   submit to pool      write response frames
//!        │                   ▲
//!        ▼                   │ completion sink (routes by the
//!   SolverPool ──────────────┘ connection bits of the response id)
//! ```
//!
//! Requests are submitted to the shared [`SolverPool`] in sink
//! (completion-callback) mode. Because different streams of one
//! connection land on different workers, completions arrive out of
//! order; the writer holds them in a heap and emits frames strictly in
//! the connection's submission order — pongs and error frames take their
//! in-band position in that same sequence.
//!
//! **Namespacing.** Client ids and stream ids are connection-local. The
//! server rewrites both on the way in — `(connection index << 40) |
//! value` — so streams of different connections can never alias inside
//! the pool, and restores the client's own values on the way out (the
//! writer knows them per sequence number, so client *ids* are arbitrary
//! u64s; client *streams* must stay below 2^40).

use crate::wire::{
    self, codes, write_response, MAX_BODY_LINES, MAX_LINE_BYTES, MAX_STREAM_ID, PROTOCOL_VERSION,
};
use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use vmplace_model::{AllocRequest, AllocResponse};
use vmplace_service::{
    trace_io::BlockAssembler, FaultPlan, ServiceConfig, SolverPool, INJECTED_FAULT_MARKER,
};

/// Bits of a server-side id/stream holding the connection-local value.
const CONN_SHIFT: u32 = 40;
const SEQ_MASK: u64 = (1 << CONN_SHIFT) - 1;

/// Connection indices must fit in the bits above the shift; a server
/// that has accepted this many connections over its lifetime refuses
/// further ones rather than alias ids across tenants.
const CONN_LIMIT: u64 = 1 << (64 - CONN_SHIFT);

/// Socket read timeout: how often an idle reader wakes to check the
/// draining flag. During a drain, readers first consume every frame
/// already received (reads return data, not timeouts, while the buffer
/// is non-empty), so requests flushed before the drain began are still
/// answered; the first quiet interval ends the connection.
const READ_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// How long a draining reader keeps accepting frames from a client that
/// never goes quiet. Frames already buffered at drain time are consumed
/// within microseconds; this bound only stops a continuously streaming
/// client from holding the drain open forever.
const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_millis(500);

/// Socket write timeout: a client that pipelines requests but never
/// reads responses would otherwise block its writer thread in
/// `write_all` forever once the kernel send buffer fills — and the drain
/// joins every writer. On expiry the connection is treated as dead (the
/// writer keeps consuming completions without writing).
const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Configuration of the network front-end.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// The allocation-service configuration backing the pool (workers,
    /// algorithm, warm start, response cache, default budget).
    pub service: ServiceConfig,
}

/// What the reader tells the writer about each submission-order slot.
enum Meta {
    /// Emit the protocol greeting (successful handshake).
    Greeting,
    /// A solver request occupies this slot; the writer must wait for its
    /// completion and restore the client's id and stream.
    Request {
        seq: u64,
        client_id: u64,
        client_stream: u64,
    },
    /// Emit a pong immediately.
    Pong(String),
    /// Emit a structured error frame immediately.
    Error { code: &'static str, message: String },
    /// Emit `bye`, flush, and end the connection's response stream.
    Bye,
}

/// One live connection's drain handle: a socket clone plus the reader
/// and writer threads to join.
type ConnHandle = (TcpStream, JoinHandle<()>, JoinHandle<()>);

/// Completions keyed (and min-ordered) by submission sequence.
struct Pending(u64, AllocResponse);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest seq.
        other.0.cmp(&self.0)
    }
}

struct Shared {
    addr: SocketAddr,
    draining: AtomicBool,
    /// Set at the very end of the drain: the acceptor exits instead of
    /// answering `draining`.
    accept_stop: AtomicBool,
    /// Signalled when a `shutdown` wire frame (or [`Server::shutdown`])
    /// requests the drain.
    shutdown_requested: (Mutex<bool>, Condvar),
    /// Completion routing: connection index → writer's completion sender.
    routes: Mutex<HashMap<u64, Sender<Pending>>>,
    /// The shared pool, in sink mode. Taken (and dropped, joining the
    /// workers) at the end of the drain.
    pool: Mutex<Option<SolverPool>>,
    /// Live connection bookkeeping for the drain: a socket clone (keeps
    /// the fd addressable for future needs, e.g. forced aborts) and the
    /// reader/writer thread handles to join.
    conns: Mutex<Vec<ConnHandle>>,
    next_conn: AtomicU64,
    /// Socket-level fault injection (`None` in production). The same
    /// plan travels into the pool workers via [`ServiceConfig::faults`]
    /// for the solver-panic faults.
    faults: Option<FaultPlan>,
}

impl Shared {
    fn request_shutdown(&self) {
        let (lock, cvar) = &self.shutdown_requested;
        *lock.lock().expect("shutdown flag") = true;
        cvar.notify_all();
    }

    /// Locks the completion-route table tolerating poison: the map is
    /// only ever mutated by infallible insert/remove, so a panic caught
    /// by the acceptor's guard (which may unwind through a held guard)
    /// cannot leave it structurally broken — refusing to lock it again
    /// would turn one connection's panic into a server-wide outage.
    fn lock_routes(&self) -> MutexGuard<'_, HashMap<u64, Sender<Pending>>> {
        self.routes.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running allocation server. The module docs at the top of
/// `server.rs` describe the thread layout; `crates/net/README.md` has
/// the protocol.
///
/// Binding to port 0 picks an ephemeral port; [`Server::local_addr`]
/// reports the actual address (tests and CI never collide on a fixed
/// port).
///
/// [`Server::shutdown`] is graceful and idempotent: new connections are
/// rejected with a `draining` greeting, every request already submitted
/// is solved and its response delivered, and all threads (acceptor,
/// per-connection pairs, pool workers) are joined before it returns.
/// Dropping the server calls it implicitly.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    /// Drain-once guard: `true` once a shutdown completed.
    done: Mutex<bool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr,
            draining: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            routes: Mutex::new(HashMap::new()),
            pool: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            faults: config
                .service
                .faults
                .clone()
                .filter(|plan| !plan.is_empty()),
        });

        // The pool delivers completions straight to the owning
        // connection's writer, routed by the connection bits of the id.
        let sink_shared = shared.clone();
        let pool = SolverPool::with_sink(
            &config.service,
            Arc::new(move |response: AllocResponse| {
                let conn = response.id >> CONN_SHIFT;
                let seq = response.id & SEQ_MASK;
                let routes = sink_shared.lock_routes();
                if let Some(tx) = routes.get(&conn) {
                    // A closed writer (client vanished) just discards.
                    let _ = tx.send(Pending(seq, response));
                }
            }),
        );
        *shared.pool.lock().expect("pool slot") = Some(pool);

        let acceptor_shared = shared.clone();
        let acceptor = std::thread::spawn(move || accept_loop(listener, acceptor_shared));
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            done: Mutex::new(false),
        })
    }

    /// The bound address (the real port, also when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested — by [`Server::shutdown`]
    /// from another thread, or by a client's `shutdown` wire frame — then
    /// performs the drain and returns. `vmplace serve` is a bind
    /// followed by this call.
    pub fn wait(mut self) {
        {
            let (lock, cvar) = &self.shared.shutdown_requested;
            let mut requested = lock.lock().expect("shutdown flag");
            while !*requested {
                requested = cvar.wait(requested).expect("shutdown flag");
            }
        }
        self.drain();
    }

    /// Marks the server draining **without** completing the shutdown:
    /// new connections are rejected with the `draining` greeting from
    /// this call on, and any [`Server::wait`] caller is released into
    /// the drain. Idempotent; [`Server::shutdown`] implies it.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
    }

    /// Graceful, idempotent shutdown: reject new connections with a
    /// `draining` greeting, stop reading from live connections, deliver
    /// every in-flight response, join every thread. Safe to call from
    /// any thread, any number of times; concurrent callers block until
    /// the first drain finishes.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        self.drain();
    }

    fn drain(&mut self) {
        let mut done = self.done.lock().expect("drain guard");
        if *done {
            return;
        }
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        shared.request_shutdown();

        // Wind down live connections: each reader first consumes every
        // frame already received (reads keep returning data while the
        // socket buffer is non-empty), then exits on its first quiet
        // [`READ_POLL`] interval; its writer then drains every completion
        // of the requests read (the pool workers are still running) and
        // says `bye`. New connections keep being answered with the
        // `draining` greeting throughout.
        let conns = std::mem::take(&mut *shared.conns.lock().expect("conns"));
        for (_stream, reader, writer) in conns {
            let _ = reader.join();
            let _ = writer.join();
        }

        // Now retire the acceptor: flag it down and wake it out of
        // accept() with a throwaway connection.
        shared.accept_stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }

        // A connection accepted just before the draining flag landed may
        // have been registered after the sweep above; with the acceptor
        // gone the registry is final, so one more sweep closes the race.
        let conns = std::mem::take(&mut *shared.conns.lock().expect("conns"));
        for (_stream, reader, writer) in conns {
            let _ = reader.join();
            let _ = writer.join();
        }

        // Finally the pool itself: dropping it drains worker queues
        // (already empty — every completion was awaited) and joins the
        // worker threads.
        drop(shared.pool.lock().expect("pool slot").take());
        *done = true;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Listener failure: trigger a drain so `wait` callers return.
            shared.request_shutdown();
            return;
        };
        if shared.accept_stop.load(Ordering::SeqCst) {
            return; // the drain's wake-up connection
        }
        if shared.draining.load(Ordering::SeqCst) {
            // Reject with the draining greeting and keep accepting (so
            // every rejected client gets the frame until the drain ends).
            reject(
                stream,
                &format!("{} {} draining\n", wire::MAGIC, PROTOCOL_VERSION),
            );
            continue;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if conn_id >= CONN_LIMIT {
            // Out of connection-id space for this server lifetime:
            // refuse honestly instead of aliasing ids across tenants.
            reject(
                stream,
                "error internal connection-id space exhausted; restart the server\n",
            );
            continue;
        }
        // Panic guard: connection setup touches fallible per-connection
        // plumbing; a panic there must cost only this connection, never
        // new-connection intake (regression test in
        // `tests/integration_chaos.rs` via `FaultPlan::panic_accept`).
        match catch_unwind(AssertUnwindSafe(|| {
            spawn_connection(&shared, stream, conn_id)
        })) {
            Ok(Ok(entry)) => shared.conns.lock().expect("conns").push(entry),
            Ok(Err(_)) => continue, // socket clone failure: drop the connection
            Err(_) => {
                // The panicked setup may have registered its completion
                // route already; unregister (tolerant of the poison the
                // panic may have left behind).
                shared.lock_routes().remove(&conn_id);
                continue;
            }
        }
    }
}

/// Refuses a connection with a one-line answer, making sure the line
/// actually reaches the peer: closing a socket with unread input (the
/// client's hello) can send RST and purge the already-written reply, so
/// the write side is half-closed first and the peer's bytes are drained
/// until EOF or a short timeout.
fn reject(mut stream: TcpStream, line: &str) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(DRAIN_GRACE));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Sets up one connection: registers the completion route, spawns the
/// reader (which performs the handshake) and the writer.
fn spawn_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    conn_id: u64,
) -> std::io::Result<ConnHandle> {
    if let Some(plan) = &shared.faults {
        if plan.panic_accept == Some(conn_id) {
            panic!("{INJECTED_FAULT_MARKER} (accept, connection {conn_id})");
        }
    }
    let registry_stream = stream.try_clone()?;
    let write_stream = stream.try_clone()?;

    let (meta_tx, meta_rx) = channel::<Meta>();
    let (comp_tx, comp_rx) = channel::<Pending>();
    shared.lock_routes().insert(conn_id, comp_tx);

    let reader_shared = shared.clone();
    let reader = std::thread::spawn(move || {
        read_loop(reader_shared, stream, conn_id, meta_tx);
    });
    let writer_shared = shared.clone();
    let writer_faults = shared.faults.clone();
    let writer = std::thread::spawn(move || {
        write_loop(write_stream, meta_rx, comp_rx, conn_id, writer_faults);
        // Past this point no completion for this connection can be in
        // flight (every submitted request was awaited before `bye`).
        writer_shared.lock_routes().remove(&conn_id);
        // Retire the connection's stream namespace so long-lived worker
        // memory (instances, warm yields, caches) tracks live clients.
        // FIFO per worker orders this after every submitted request.
        if let Some(pool) = writer_shared.pool.lock().expect("pool slot").as_mut() {
            pool.retire_streams(conn_id << CONN_SHIFT, !SEQ_MASK);
        }
    });
    Ok((registry_stream, reader, writer))
}

/// One bounded, timeout-polling line read (see [`READ_POLL`]).
enum FrameLine {
    Line(String),
    Eof,
    TooLong,
    BadUtf8,
    /// A quiet interval elapsed while the server is draining.
    DrainTimeout,
}

/// Reads one line, keeping partial input in `partial` across timeout
/// wake-ups so mid-line timeouts lose nothing. Never buffers more than
/// `MAX_LINE_BYTES + 1` bytes.
fn read_frame_line(
    reader: &mut BufReader<TcpStream>,
    partial: &mut Vec<u8>,
    draining: &AtomicBool,
) -> FrameLine {
    loop {
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(partial.len());
        match reader.take(budget as u64).read_until(b'\n', partial) {
            Ok(0) => {
                // EOF (a truncated final line is dropped — the client is
                // gone mid-frame). `budget == 0` cannot reach here: the
                // over-budget case returned `TooLong` below.
                return FrameLine::Eof;
            }
            Ok(_) => {
                if partial.last() == Some(&b'\n') {
                    partial.pop();
                    if partial.last() == Some(&b'\r') {
                        partial.pop();
                    }
                    let bytes = std::mem::take(partial);
                    return match String::from_utf8(bytes) {
                        Ok(s) => FrameLine::Line(s),
                        Err(_) => FrameLine::BadUtf8,
                    };
                }
                if partial.len() > MAX_LINE_BYTES {
                    return FrameLine::TooLong;
                }
                // Short read without newline (buffer boundary): read on.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if draining.load(Ordering::SeqCst) {
                    return FrameLine::DrainTimeout;
                }
            }
            Err(_) => return FrameLine::Eof,
        }
    }
}

/// Parses frames off the socket, submits solver requests, narrates the
/// submission order to the writer. Every exit path queues `Meta::Bye` so
/// the writer terminates.
fn read_loop(shared: Arc<Shared>, stream: TcpStream, conn_id: u64, meta: Sender<Meta>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(stream);
    let mut partial = Vec::new();
    let fail = |meta: &Sender<Meta>, code, message: String| {
        let _ = meta.send(Meta::Error { code, message });
        let _ = meta.send(Meta::Bye);
    };

    // Handshake: the hello line must come first.
    match read_frame_line(&mut reader, &mut partial, &shared.draining) {
        FrameLine::Line(hello) => {
            let mut words = hello.split_whitespace();
            let ok = words.next() == Some(wire::MAGIC)
                && words.next().and_then(|v| v.parse::<u32>().ok()) == Some(PROTOCOL_VERSION)
                && words.next().is_none();
            if !ok {
                fail(
                    &meta,
                    codes::BAD_VERSION,
                    format!(
                        "expected `{} {}`, got `{hello}`",
                        wire::MAGIC,
                        PROTOCOL_VERSION
                    ),
                );
                return;
            }
            let _ = meta.send(Meta::Greeting);
        }
        FrameLine::TooLong => return fail(&meta, codes::FRAME_TOO_LARGE, "oversized hello".into()),
        FrameLine::BadUtf8 => return fail(&meta, codes::BAD_UTF8, "hello not UTF-8".into()),
        FrameLine::Eof | FrameLine::DrainTimeout => {
            let _ = meta.send(Meta::Bye);
            return;
        }
    }

    let mut assembler = BlockAssembler::new();
    let mut seq: u64 = 0;
    let mut line_no: usize = 1;
    // When a drain begins, frames already in the socket buffer are still
    // consumed; the grace deadline stops a client that keeps streaming
    // from holding the drain open forever.
    let mut drain_seen: Option<std::time::Instant> = None;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            let seen = *drain_seen.get_or_insert_with(std::time::Instant::now);
            if seen.elapsed() > DRAIN_GRACE {
                return fail(&meta, codes::DRAINING, "server is draining".into());
            }
        }
        line_no += 1;
        let line = match read_frame_line(&mut reader, &mut partial, &shared.draining) {
            FrameLine::Line(l) => l,
            FrameLine::Eof | FrameLine::DrainTimeout => break,
            FrameLine::TooLong => {
                return fail(
                    &meta,
                    codes::FRAME_TOO_LARGE,
                    format!("line {line_no} exceeds {MAX_LINE_BYTES} bytes"),
                )
            }
            FrameLine::BadUtf8 => {
                return fail(
                    &meta,
                    codes::BAD_UTF8,
                    format!("line {line_no} is not valid UTF-8"),
                )
            }
        };

        if !assembler.in_block() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (verb, rest) = trimmed
                .split_once(char::is_whitespace)
                .unwrap_or((trimmed, ""));
            match verb {
                "ping" => {
                    let _ = meta.send(Meta::Pong(rest.trim().to_string()));
                    continue;
                }
                "shutdown" => {
                    // Begin the server-wide drain; this connection's
                    // in-flight responses still go out before `bye`.
                    shared.draining.store(true, Ordering::SeqCst);
                    shared.request_shutdown();
                    break;
                }
                "request" => {} // falls through to the assembler
                other => {
                    return fail(
                        &meta,
                        codes::UNKNOWN_VERB,
                        format!("line {line_no}: unknown verb `{other}`"),
                    )
                }
            }
        } else if line.trim() != "end" && assembler.body_lines() >= MAX_BODY_LINES {
            // Only lines that would *join* the body count against the
            // limit — a block of exactly MAX_BODY_LINES still closes.
            return fail(
                &meta,
                codes::FRAME_TOO_LARGE,
                format!("request block exceeds {MAX_BODY_LINES} body lines"),
            );
        }

        match assembler.feed(line_no, &line) {
            Ok(None) => {}
            Ok(Some(request)) => {
                if request.stream >= MAX_STREAM_ID {
                    return fail(
                        &meta,
                        codes::BAD_FRAME,
                        format!("stream id {} exceeds {}", request.stream, MAX_STREAM_ID - 1),
                    );
                }
                let client_id = request.id;
                let client_stream = request.stream;
                let remapped = AllocRequest {
                    id: (conn_id << CONN_SHIFT) | seq,
                    stream: (conn_id << CONN_SHIFT) | client_stream,
                    kind: request.kind,
                    budget: request.budget,
                    policy: request.policy,
                };
                let _ = meta.send(Meta::Request {
                    seq,
                    client_id,
                    client_stream,
                });
                seq += 1;
                let mut pool = shared.pool.lock().expect("pool slot");
                match pool.as_mut() {
                    Some(pool) => pool.submit(vec![remapped]),
                    None => {
                        // Drained under us: the writer answers instead.
                        drop(pool);
                        return fail(&meta, codes::DRAINING, "server is draining".into());
                    }
                }
            }
            Err(e) => {
                return fail(&meta, codes::BAD_FRAME, e.to_string());
            }
        }
    }
    let _ = meta.send(Meta::Bye);
}

/// The writer's socket half: owns the buffered stream, the liveness
/// flag, and the per-connection fault injection (response-frame counting
/// for drop points, short/delayed writes).
///
/// The invariant it enforces — for genuine write failures (including the
/// [`WRITE_TIMEOUT`] expiring mid-frame) exactly as for injected drops —
/// is that a failed or cut-off write **tears the connection down**
/// ([`Shutdown::Both`]): the peer can never observe a half-written frame
/// followed by a fresh frame on the same socket, and the connection's
/// reader sees EOF, exits, and triggers stream retirement through the
/// normal `bye` path.
struct FrameWriter {
    out: BufWriter<TcpStream>,
    alive: bool,
    conn_id: u64,
    faults: Option<FaultPlan>,
    /// Response frames fully written (the drop-point counter).
    frames: u64,
}

impl FrameWriter {
    fn new(stream: TcpStream, conn_id: u64, faults: Option<FaultPlan>) -> FrameWriter {
        FrameWriter {
            out: BufWriter::new(stream),
            alive: true,
            conn_id,
            faults,
            frames: 0,
        }
    }

    /// Tears the connection down after a failed (or injected-faulty)
    /// write. The writer stays in its loop consuming metas and
    /// completions — the reader and the completion sink must never block
    /// on a dead peer — but nothing further is written.
    fn teardown(&mut self) {
        self.alive = false;
        let _ = self.out.get_ref().shutdown(Shutdown::Both);
    }

    /// Writes raw bytes, honoring injected short writes and delays; any
    /// genuine error (the peer vanished, the write timeout fired) tears
    /// the connection down.
    fn emit(&mut self, bytes: &[u8]) {
        if !self.alive {
            return;
        }
        let chunked = self.faults.as_ref().and_then(|f| f.short_write);
        let result = match chunked {
            Some(chunk) => {
                let delay = self.faults.as_ref().and_then(|f| f.write_delay);
                let mut result = Ok(());
                for piece in bytes.chunks(chunk.max(1)) {
                    result = self.out.write_all(piece).and_then(|_| self.out.flush());
                    if result.is_err() {
                        break;
                    }
                    if let Some(delay) = delay {
                        std::thread::sleep(delay);
                    }
                }
                result
            }
            None => self.out.write_all(bytes),
        };
        if result.is_err() {
            self.teardown();
        }
    }

    /// Writes one response frame, counting it against the plan's drop
    /// point: at the drop point the connection is cut instead — on the
    /// frame boundary, or (`midframe`) after leaking roughly half the
    /// frame's bytes, which is exactly the torn write a real mid-frame
    /// failure leaves behind.
    fn emit_response_frame(&mut self, text: &str) {
        if !self.alive {
            return;
        }
        let cut = self
            .faults
            .as_ref()
            .and_then(|f| f.drop_point(self.conn_id))
            .is_some_and(|point| self.frames >= point);
        if cut {
            if self.faults.as_ref().is_some_and(|f| f.midframe) {
                let half = text.len() / 2;
                let _ = self.out.write_all(&text.as_bytes()[..half]);
                let _ = self.out.flush();
            }
            self.teardown();
            return;
        }
        self.emit(text.as_bytes());
        if self.alive {
            self.frames += 1;
        }
    }

    fn flush(&mut self) {
        if self.alive && self.out.flush().is_err() {
            self.teardown();
        }
    }
}

/// Emits frames in submission order, restoring client ids/streams on
/// responses. Exits on `Bye` (or a dead socket).
fn write_loop(
    stream: TcpStream,
    meta: Receiver<Meta>,
    completions: Receiver<Pending>,
    conn_id: u64,
    faults: Option<FaultPlan>,
) {
    // A non-reading client must not park this thread in write_all
    // forever — the drain joins every writer. On expiry the connection
    // is torn down (see [`FrameWriter`]), never silently resumed.
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = FrameWriter::new(stream, conn_id, faults);
    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    let mut text = String::new();

    // Blocking recv, but flush whenever the queue momentarily empties so
    // pipelined bursts coalesce and lone frames still go out promptly.
    let mut next: Option<Meta> = None;
    loop {
        let item = match next.take() {
            Some(m) => m,
            None => match meta.try_recv() {
                Ok(m) => m,
                Err(_) => {
                    writer.flush();
                    match meta.recv() {
                        Ok(m) => m,
                        Err(_) => break, // reader gone without Bye (panic)
                    }
                }
            },
        };
        text.clear();
        let mut response_frame = false;
        match item {
            Meta::Greeting => {
                text.push_str(&format!("{} {} ready\n", wire::MAGIC, PROTOCOL_VERSION));
            }
            Meta::Pong(token) => {
                if token.is_empty() {
                    text.push_str("pong\n");
                } else {
                    text.push_str(&format!("pong {token}\n"));
                }
            }
            Meta::Error { code, message } => {
                text.push_str(&format!("error {code} {message}\n"));
            }
            Meta::Bye => {
                writer.emit(b"bye\n");
                writer.flush();
                // Close the TCP connection for real: the drain registry
                // holds another clone of this socket, so dropping our fd
                // alone would leave the client's read blocked.
                let _ = writer.out.get_ref().shutdown(Shutdown::Both);
                break;
            }
            Meta::Request {
                seq,
                client_id,
                client_stream,
            } => {
                // Pull completions until this slot's arrives.
                let mut response = loop {
                    if let Some(Pending(s, _)) = heap.peek() {
                        if *s == seq {
                            break heap.pop().expect("peeked").1;
                        }
                    }
                    match completions.recv() {
                        Ok(p) => heap.push(p),
                        Err(_) => return, // pool gone mid-request: abort
                    }
                };
                response.id = client_id;
                response.stream = client_stream;
                write_response(&mut text, &response);
                response_frame = true;
            }
        }
        if !text.is_empty() {
            if response_frame {
                writer.emit_response_frame(&text);
            } else {
                writer.emit(text.as_bytes());
            }
        }
        if next.is_none() {
            if let Ok(m) = meta.try_recv() {
                next = Some(m);
            }
        }
    }
}
