//! The TCP front-end: acceptor, connection I/O backends, graceful drain.
//!
//! ```text
//!            acceptor thread
//!                  │ accept()
//!     ┌────────────┴──────────────┐ ServerConfig::io
//!     ▼ Threads                   ▼ Events
//!   per connection:            a few event-loop threads
//!   reader thread +            (crate::event) multiplexing
//!   writer thread              every socket via poll(2)
//!        │      ▲                  │      ▲
//!        ▼      │                  ▼      │
//!   SolverPool ─┘ completion sink ─┴──────┘
//!               (routes by the connection bits of the response id)
//! ```
//!
//! Both backends drive the same protocol engine, [`ConnProto`]: a
//! byte-fed state machine that performs the version handshake, parses
//! v1 text lines or v2 binary frames, remaps ids, submits to the shared
//! [`SolverPool`] and narrates the submission order as [`Meta`] events.
//! The threaded backend feeds it from a blocking reader thread and
//! replays the metas on a writer thread; the event backend feeds it
//! from non-blocking reads and drains the metas into per-connection
//! outbound byte rings. Because the engine is shared, the two backends
//! are wire-identical — the differential suite pins them to each other
//! and to the in-process pool bit for bit.
//!
//! Requests are submitted to the shared [`SolverPool`] in sink
//! (completion-callback) mode. Because different streams of one
//! connection land on different workers, completions arrive out of
//! order; each connection holds them in a heap and emits frames
//! strictly in the connection's submission order — pongs and error
//! frames take their in-band position in that same sequence.
//!
//! **Namespacing.** Client ids and stream ids are connection-local. The
//! server rewrites both on the way in — `(connection index << 40) |
//! value` — so streams of different connections can never alias inside
//! the pool, and restores the client's own values on the way out (the
//! connection knows them per sequence number, so client *ids* are
//! arbitrary u64s; client *streams* must stay below 2^40).
//!
//! **Version negotiation.** The hello line carries the client's wire
//! version; the server answers `min(client, ServerConfig::max_wire)`
//! for known versions (1 and 2) and `error bad-version` for anything
//! else. A v1 client is answered byte-for-byte as by a v1-only build.

use crate::codec;
use crate::event::EventCore;
use crate::wire::{
    self, codes, write_response, MAX_BODY_LINES, MAX_LINE_BYTES, MAX_PROTOCOL_VERSION,
    MAX_STREAM_ID, PROTOCOL_V2, PROTOCOL_VERSION,
};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;
use vmplace_model::{AllocRequest, AllocResponse};
use vmplace_obs::{Counter, Gauge, Histogram, Registry, TraceId};
use vmplace_service::{
    trace_io::BlockAssembler, FaultPlan, ServiceConfig, SolverPool, INJECTED_FAULT_MARKER,
};

/// Bits of a server-side id/stream holding the connection-local value.
pub(crate) const CONN_SHIFT: u32 = 40;
pub(crate) const SEQ_MASK: u64 = (1 << CONN_SHIFT) - 1;

/// Connection indices must fit in the bits above the shift; a server
/// that has accepted this many connections over its lifetime refuses
/// further ones rather than alias ids across tenants.
const CONN_LIMIT: u64 = 1 << (64 - CONN_SHIFT);

/// Threaded-backend socket read timeout: how often an idle reader wakes
/// to check the draining flag — and the reason the threaded backend
/// burns N wake-ups per 100 ms with N idle connections (measured by
/// [`Server::io_wakeups`]; the event backend blocks until readiness
/// instead). The same interval serves as the drain's quiet window in
/// both backends: requests flushed before the drain began are still
/// read and answered, and the first quiet interval ends the connection.
pub(crate) const READ_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// How long a draining connection keeps accepting frames from a client
/// that never goes quiet. Frames already buffered at drain time are
/// consumed within microseconds; this bound only stops a continuously
/// streaming client from holding the drain open forever.
pub(crate) const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_millis(500);

/// Socket write timeout: a client that pipelines requests but never
/// reads responses must not wedge its connection's writer forever once
/// the kernel send buffer fills — the drain waits on every writer. On
/// expiry the connection is torn down.
pub(crate) const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Acceptor back-off after a file-descriptor-exhaustion accept failure
/// (also advertised as the rejection's `retry-after-ms` hint).
const ACCEPT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(20);

/// Which I/O engine drives connection sockets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoBackend {
    /// One blocking reader thread + one writer thread per connection
    /// (the fallback backend; two OS threads and ~10 idle wake-ups per
    /// second per connection).
    #[default]
    Threads,
    /// A few event-loop threads multiplexing every connection socket
    /// via `poll(2)` readiness (see `crates/net/src/event.rs`): idle
    /// connections cost zero wake-ups, and thousands of sockets share a
    /// handful of threads.
    Events,
}

impl IoBackend {
    /// Parses the CLI spelling (`threads` | `events`).
    pub fn parse(s: &str) -> Option<IoBackend> {
        match s.trim() {
            "threads" => Some(IoBackend::Threads),
            "events" => Some(IoBackend::Events),
            _ => None,
        }
    }
}

/// Configuration of the network front-end.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The allocation-service configuration backing the pool (workers,
    /// algorithm, warm start, response cache, default budget).
    pub service: ServiceConfig,
    /// The connection I/O engine (default: [`IoBackend::Threads`]).
    pub io: IoBackend,
    /// Event-loop threads under [`IoBackend::Events`] (0 = default 2).
    pub event_threads: usize,
    /// Highest wire protocol version offered in negotiation (clamped
    /// to `1..=`[`MAX_PROTOCOL_VERSION`]; default the maximum). Set to
    /// 1 to pin a v1-only server.
    pub max_wire: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            service: ServiceConfig::default(),
            io: IoBackend::Threads,
            event_threads: 0,
            max_wire: MAX_PROTOCOL_VERSION,
        }
    }
}

/// The network layer's metric handles — cheap clones of registry-owned
/// atomics (see [`vmplace_obs`]), shared by both I/O backends. Recording
/// is strictly off the result path: every handle is a relaxed atomic and
/// nothing here can change a response byte.
#[derive(Clone)]
pub(crate) struct NetMetrics {
    /// `net.conns.threads` / `net.conns.events`: connections accepted
    /// into each backend over the server's lifetime.
    pub(crate) conns_threads: Counter,
    pub(crate) conns_events: Counter,
    /// `net.conns.open`: currently live connections.
    pub(crate) conns_open: Gauge,
    /// `net.wire.v1` / `net.wire.v2`: handshakes by negotiated version.
    pub(crate) wire_v1: Counter,
    pub(crate) wire_v2: Counter,
    /// `net.requests`: solver requests admitted past parsing.
    pub(crate) requests: Counter,
    /// `net.pings`: ping frames received.
    pub(crate) pings: Counter,
    /// `net.stats_requests`: stats frames received.
    pub(crate) stats_requests: Counter,
    /// `net.errors`: structured error frames emitted.
    pub(crate) errors: Counter,
    /// `net.responses`: response frames fully written (threads) or fully
    /// queued to the outbound ring (events).
    pub(crate) responses: Counter,
    /// `net.responses_dropped`: completed responses that never reached
    /// the wire — the owning connection was torn down (write failure,
    /// injected drop) or already gone when the completion arrived.
    pub(crate) responses_dropped: Counter,
    /// `net.ping_us`: ping receipt → pong emission.
    pub(crate) ping_us: Histogram,
    /// `net.request_us`: request admission → completion arrival (queue
    /// wait + solve, the request's sojourn in the pool).
    pub(crate) request_us: Histogram,
    /// `net.encode_us`: response frame encode time.
    pub(crate) encode_us: Histogram,
}

impl NetMetrics {
    fn new(r: &Registry) -> NetMetrics {
        NetMetrics {
            conns_threads: r.counter("net.conns.threads"),
            conns_events: r.counter("net.conns.events"),
            conns_open: r.gauge("net.conns.open"),
            wire_v1: r.counter("net.wire.v1"),
            wire_v2: r.counter("net.wire.v2"),
            requests: r.counter("net.requests"),
            pings: r.counter("net.pings"),
            stats_requests: r.counter("net.stats_requests"),
            errors: r.counter("net.errors"),
            responses: r.counter("net.responses"),
            responses_dropped: r.counter("net.responses_dropped"),
            ping_us: r.histogram("net.ping_us"),
            request_us: r.histogram("net.request_us"),
            encode_us: r.histogram("net.encode_us"),
        }
    }
}

/// What the protocol engine tells the emit side about each
/// submission-order slot.
pub(crate) enum Meta {
    /// Emit the protocol greeting for the negotiated wire version.
    Greeting(u32),
    /// A solver request occupies this slot; the emitter must wait for
    /// its completion and restore the client's id and stream.
    Request {
        /// Connection-local submission sequence number.
        seq: u64,
        /// The id the client sent (restored on the response).
        client_id: u64,
        /// The stream the client sent (restored on the response).
        client_stream: u64,
    },
    /// Emit a pong immediately (the instant is the ping's receipt, for
    /// the `net.ping_us` histogram).
    Pong(String, Instant),
    /// Emit a metrics snapshot immediately. The JSON is rendered at
    /// emission time, so the snapshot reflects every request already
    /// answered ahead of it in this connection's stream.
    Stats,
    /// Emit a structured error frame immediately.
    Error {
        /// One of [`codes`].
        code: &'static str,
        /// Human-readable detail.
        message: String,
    },
    /// Emit `bye`, flush, and end the connection's response stream.
    Bye,
}

/// One live threaded-backend connection's drain handle: a socket clone
/// plus the reader and writer threads to join.
type ConnHandle = (TcpStream, JoinHandle<()>, JoinHandle<()>);

/// Completions keyed (and min-ordered) by submission sequence.
pub(crate) struct Pending(pub(crate) u64, pub(crate) AllocResponse);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest seq.
        other.0.cmp(&self.0)
    }
}

pub(crate) struct Shared {
    addr: SocketAddr,
    pub(crate) draining: AtomicBool,
    /// Set at the very end of the drain: the acceptor exits instead of
    /// answering `draining`, and the event loops may finish.
    pub(crate) accept_stop: AtomicBool,
    /// Signalled when a `shutdown` wire frame (or [`Server::shutdown`])
    /// requests the drain.
    shutdown_requested: (Mutex<bool>, Condvar),
    /// Threaded-backend completion routing: connection index → writer's
    /// completion sender. (The event backend routes completions through
    /// its loop injectors instead.)
    routes: Mutex<HashMap<u64, Sender<Pending>>>,
    /// The shared pool, in sink mode. Taken (and dropped, joining the
    /// workers) at the end of the drain.
    pub(crate) pool: Mutex<Option<SolverPool>>,
    /// Live threaded-backend connection bookkeeping for the drain.
    conns: Mutex<Vec<ConnHandle>>,
    next_conn: AtomicU64,
    /// Socket-level fault injection (`None` in production). The same
    /// plan travels into the pool workers via [`ServiceConfig::faults`]
    /// for the solver-panic faults.
    pub(crate) faults: Option<FaultPlan>,
    /// Highest wire version this server negotiates.
    pub(crate) max_wire: u32,
    /// I/O wake-ups: threaded reader timeout polls plus event-loop
    /// `poll(2)` returns. The idle-connection suite asserts the event
    /// backend's count stays ~zero while connections are quiet. A
    /// registry counter (`net.io_wakeups`), so `stats` reports it.
    pub(crate) wakeups: Counter,
    /// The server's metrics registry: the pool workers, the connection
    /// backends and the `stats` verb all read and write this one.
    pub(crate) registry: Arc<Registry>,
    pub(crate) metrics: NetMetrics,
    /// In-flight admissions: remapped request id → (trace id minted at
    /// admission, admission instant). The completion sink removes the
    /// entry and records the sojourn into `net.request_us`.
    inflight: Mutex<HashMap<u64, (TraceId, Instant)>>,
}

impl Shared {
    pub(crate) fn request_shutdown(&self) {
        let (lock, cvar) = &self.shutdown_requested;
        *lock.lock().expect("shutdown flag") = true;
        cvar.notify_all();
    }

    /// Locks the completion-route table tolerating poison: the map is
    /// only ever mutated by infallible insert/remove, so a panic caught
    /// by the acceptor's guard (which may unwind through a held guard)
    /// cannot leave it structurally broken — refusing to lock it again
    /// would turn one connection's panic into a server-wide outage.
    fn lock_routes(&self) -> MutexGuard<'_, HashMap<u64, Sender<Pending>>> {
        self.routes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Retires one connection's stream namespace in the pool. FIFO per
    /// worker orders the retirement after every request the connection
    /// submitted, so long-lived worker memory (instances, warm yields,
    /// caches) tracks live clients.
    pub(crate) fn retire_conn(&self, conn_id: u64) {
        self.metrics.conns_open.sub(1);
        if let Some(pool) = self.pool.lock().expect("pool slot").as_mut() {
            pool.retire_streams(conn_id << CONN_SHIFT, !SEQ_MASK);
        }
    }

    /// Records a request's admission (trace id + instant) under its
    /// remapped id; the completion sink takes it back.
    fn admit(&self, remapped_id: u64) {
        let trace = TraceId::mint();
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(remapped_id, (trace, Instant::now()));
    }

    /// Removes an admission record (on completion, or when a submission
    /// could not be handed to the pool after all).
    pub(crate) fn unadmit(&self, remapped_id: u64) -> Option<(TraceId, Instant)> {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&remapped_id)
    }
}

/// Renders a server registry's live metrics snapshot as one line of
/// JSON: the full registry (counters, gauges, histogram quantiles) plus
/// derived ratios. The body of every `stats` reply, `--metrics-interval`
/// line and `vmplace top` screen — hand it the handle from
/// [`Server::metrics`] to render snapshots without holding the server.
pub fn render_stats(registry: &Registry) -> String {
    let mut snap = registry.snapshot();
    let hits = snap
        .counters
        .get("service.cache.hits")
        .copied()
        .unwrap_or(0);
    let misses = snap
        .counters
        .get("service.cache.misses")
        .copied()
        .unwrap_or(0);
    let lookups = hits + misses;
    snap.derive(
        "service.cache.hit_ratio",
        if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
    );
    snap.to_json()
}

/// The internal spelling: both backends answer `stats` from the shared
/// state's registry.
pub(crate) fn stats_json(shared: &Shared) -> String {
    render_stats(&shared.registry)
}

// ---------------------------------------------------------- frame output

/// The greeting is a text line in every protocol version — a client can
/// always read the negotiated version before switching framing.
pub(crate) fn greeting_frame(wire: u32) -> Vec<u8> {
    format!("{} {} ready\n", wire::MAGIC, wire.max(1)).into_bytes()
}

pub(crate) fn pong_frame(wire: u32, token: &str) -> Vec<u8> {
    if wire >= PROTOCOL_V2 {
        let mut out = Vec::new();
        codec::encode_pong(&mut out, token);
        out
    } else if token.is_empty() {
        b"pong\n".to_vec()
    } else {
        format!("pong {token}\n").into_bytes()
    }
}

pub(crate) fn error_frame(wire: u32, code: &str, message: &str) -> Vec<u8> {
    if wire >= PROTOCOL_V2 {
        let mut out = Vec::new();
        codec::encode_error(&mut out, code, message);
        out
    } else {
        format!("error {code} {message}\n").into_bytes()
    }
}

pub(crate) fn stats_frame(wire: u32, json: &str) -> Vec<u8> {
    if wire >= PROTOCOL_V2 {
        let mut out = Vec::new();
        codec::encode_stats_reply(&mut out, json);
        out
    } else {
        format!("stats {json}\n").into_bytes()
    }
}

pub(crate) fn bye_frame(wire: u32) -> Vec<u8> {
    if wire >= PROTOCOL_V2 {
        let mut out = Vec::new();
        codec::encode_bye(&mut out);
        out
    } else {
        b"bye\n".to_vec()
    }
}

pub(crate) fn response_frame(wire: u32, response: &AllocResponse) -> Vec<u8> {
    if wire >= PROTOCOL_V2 {
        let mut out = Vec::new();
        codec::encode_response(&mut out, response);
        out
    } else {
        let mut text = String::new();
        write_response(&mut text, response);
        text.into_bytes()
    }
}

// ------------------------------------------------------- protocol engine

/// What the engine's driver should do after feeding it bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Keep reading.
    Continue,
    /// The engine queued its final meta (`bye`, possibly after an
    /// error); stop reading. The emit side still owes the queued frames
    /// and every submitted request's response.
    Closed,
}

enum ProtoState {
    /// Awaiting the text hello line.
    Handshake,
    /// Established, v1: text lines into the [`BlockAssembler`].
    V1,
    /// Established, v2: accumulating a 5-byte binary frame header.
    V2Head,
    /// Established, v2: accumulating a frame body.
    V2Body,
}

/// The wire-version-agnostic protocol engine one connection runs
/// (module docs sketch how both I/O backends drive it).
///
/// `feed` never blocks and never performs socket I/O: it consumes
/// whatever bytes the driver has, queues [`Meta`] events through the
/// driver's sink, and submits complete requests to the pool. All
/// protocol limits (line length, body lines, frame bytes, stream-id
/// range) are enforced here, so the backends cannot drift apart.
pub(crate) struct ConnProto {
    conn_id: u64,
    state: ProtoState,
    /// Negotiated wire version (0 until the handshake completes; the
    /// emit side treats 0 as v1 text so pre-handshake errors stay
    /// readable to every client).
    pub(crate) wire: u32,
    /// Partial text line (handshake and v1).
    line: Vec<u8>,
    /// v2 header accumulator.
    head: [u8; codec::HEADER_LEN],
    head_len: usize,
    /// v2 body accumulator and the header it belongs to.
    body: Vec<u8>,
    body_need: usize,
    body_kind: u8,
    assembler: BlockAssembler,
    seq: u64,
    line_no: usize,
    closed: bool,
}

impl ConnProto {
    pub(crate) fn new(conn_id: u64) -> ConnProto {
        ConnProto {
            conn_id,
            state: ProtoState::Handshake,
            wire: 0,
            line: Vec::new(),
            head: [0; codec::HEADER_LEN],
            head_len: 0,
            body: Vec::new(),
            body_need: 0,
            body_kind: 0,
            assembler: BlockAssembler::new(),
            seq: 0,
            line_no: 0,
            closed: false,
        }
    }

    /// Queues a structured error followed by `bye` and closes intake.
    pub(crate) fn fail(
        &mut self,
        code: &'static str,
        message: String,
        metas: &mut dyn FnMut(Meta),
    ) {
        if self.closed {
            return;
        }
        self.closed = true;
        metas(Meta::Error { code, message });
        metas(Meta::Bye);
    }

    /// The peer is gone (EOF / read error) or went quiet during a
    /// drain: queue the clean `bye` and close intake.
    pub(crate) fn on_eof(&mut self, metas: &mut dyn FnMut(Meta)) {
        if self.closed {
            return;
        }
        self.closed = true;
        metas(Meta::Bye);
    }

    /// Feeds freshly read bytes through the engine.
    pub(crate) fn feed(
        &mut self,
        shared: &Shared,
        mut bytes: &[u8],
        metas: &mut dyn FnMut(Meta),
    ) -> Flow {
        while !bytes.is_empty() && !self.closed {
            match self.state {
                ProtoState::Handshake | ProtoState::V1 => {
                    match bytes.iter().position(|&b| b == b'\n') {
                        Some(i) if self.line.len() + i <= MAX_LINE_BYTES => {
                            self.line.extend_from_slice(&bytes[..i]);
                            bytes = &bytes[i + 1..];
                            if self.line.last() == Some(&b'\r') {
                                self.line.pop();
                            }
                            let raw = std::mem::take(&mut self.line);
                            self.line_no += 1;
                            match String::from_utf8(raw) {
                                Ok(line) => self.on_line(shared, &line, metas),
                                Err(_) => {
                                    let what = if matches!(self.state, ProtoState::Handshake) {
                                        "hello not UTF-8".to_string()
                                    } else {
                                        format!("line {} is not valid UTF-8", self.line_no)
                                    };
                                    self.fail(codes::BAD_UTF8, what, metas);
                                }
                            }
                        }
                        _ if self.line.len() + bytes.len() > MAX_LINE_BYTES => {
                            let what = if matches!(self.state, ProtoState::Handshake) {
                                "oversized hello".to_string()
                            } else {
                                format!("line {} exceeds {MAX_LINE_BYTES} bytes", self.line_no + 1)
                            };
                            self.fail(codes::FRAME_TOO_LARGE, what, metas);
                        }
                        _ => {
                            self.line.extend_from_slice(bytes);
                            bytes = &[];
                        }
                    }
                }
                ProtoState::V2Head => {
                    let want = codec::HEADER_LEN - self.head_len;
                    let take = want.min(bytes.len());
                    self.head[self.head_len..self.head_len + take].copy_from_slice(&bytes[..take]);
                    self.head_len += take;
                    bytes = &bytes[take..];
                    if self.head_len == codec::HEADER_LEN {
                        self.head_len = 0;
                        let (kind, len) = codec::parse_header(&self.head);
                        if len > codec::MAX_FRAME_BYTES {
                            // A lying length field is refused before any
                            // allocation (the v1 analogue of an oversized
                            // line).
                            self.fail(
                                codes::FRAME_TOO_LARGE,
                                format!("frame of {len} bytes exceeds {}", codec::MAX_FRAME_BYTES),
                                metas,
                            );
                        } else if len == 0 {
                            self.on_v2_frame(shared, kind, &[], metas);
                        } else {
                            self.body_kind = kind;
                            self.body_need = len as usize;
                            self.body.clear();
                            // Capacity grows with arriving bytes; a lying
                            // header alone never allocates the advertised
                            // size.
                            self.state = ProtoState::V2Body;
                        }
                    }
                }
                ProtoState::V2Body => {
                    let want = self.body_need - self.body.len();
                    let take = want.min(bytes.len());
                    self.body.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if self.body.len() == self.body_need {
                        let body = std::mem::take(&mut self.body);
                        self.state = ProtoState::V2Head;
                        self.on_v2_frame(shared, self.body_kind, &body, metas);
                    }
                }
            }
        }
        if self.closed {
            Flow::Closed
        } else {
            Flow::Continue
        }
    }

    fn on_line(&mut self, shared: &Shared, line: &str, metas: &mut dyn FnMut(Meta)) {
        if matches!(self.state, ProtoState::Handshake) {
            let mut words = line.split_whitespace();
            let version = if words.next() == Some(wire::MAGIC) {
                words.next().and_then(|v| v.parse::<u32>().ok())
            } else {
                None
            };
            let version = version.filter(|_| words.next().is_none());
            match version {
                Some(v @ 1..=MAX_PROTOCOL_VERSION) => {
                    self.wire = v.min(shared.max_wire.clamp(1, MAX_PROTOCOL_VERSION));
                    self.state = if self.wire >= PROTOCOL_V2 {
                        shared.metrics.wire_v2.inc();
                        ProtoState::V2Head
                    } else {
                        shared.metrics.wire_v1.inc();
                        ProtoState::V1
                    };
                    metas(Meta::Greeting(self.wire));
                }
                _ => self.fail(
                    codes::BAD_VERSION,
                    format!(
                        "expected `{} <version ≤ {}>`, got `{line}`",
                        wire::MAGIC,
                        MAX_PROTOCOL_VERSION
                    ),
                    metas,
                ),
            }
            return;
        }

        if !self.assembler.in_block() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return;
            }
            let (verb, rest) = trimmed
                .split_once(char::is_whitespace)
                .unwrap_or((trimmed, ""));
            match verb {
                "ping" => {
                    shared.metrics.pings.inc();
                    metas(Meta::Pong(rest.trim().to_string(), Instant::now()));
                    return;
                }
                "stats" => {
                    shared.metrics.stats_requests.inc();
                    metas(Meta::Stats);
                    return;
                }
                "shutdown" => {
                    self.order_shutdown(shared, metas);
                    return;
                }
                "request" => {} // falls through to the assembler
                other => {
                    return self.fail(
                        codes::UNKNOWN_VERB,
                        format!("line {}: unknown verb `{other}`", self.line_no),
                        metas,
                    )
                }
            }
        } else if line.trim() != "end" && self.assembler.body_lines() >= MAX_BODY_LINES {
            // Only lines that would *join* the body count against the
            // limit — a block of exactly MAX_BODY_LINES still closes.
            return self.fail(
                codes::FRAME_TOO_LARGE,
                format!("request block exceeds {MAX_BODY_LINES} body lines"),
                metas,
            );
        }

        match self.assembler.feed(self.line_no, line) {
            Ok(None) => {}
            Ok(Some(request)) => self.submit(shared, request, metas),
            Err(e) => self.fail(codes::BAD_FRAME, e.to_string(), metas),
        }
    }

    fn on_v2_frame(&mut self, shared: &Shared, kind: u8, body: &[u8], metas: &mut dyn FnMut(Meta)) {
        match codec::decode_client_frame(kind, body) {
            Ok(codec::ClientFrame::Request(request)) => self.submit(shared, *request, metas),
            Ok(codec::ClientFrame::Ping(token)) => {
                shared.metrics.pings.inc();
                metas(Meta::Pong(token, Instant::now()));
            }
            Ok(codec::ClientFrame::Stats) => {
                shared.metrics.stats_requests.inc();
                metas(Meta::Stats);
            }
            Ok(codec::ClientFrame::Shutdown) => self.order_shutdown(shared, metas),
            Err(e) => self.fail(codes::BAD_FRAME, e.to_string(), metas),
        }
    }

    /// The `shutdown` verb: begin the server-wide drain; this
    /// connection's in-flight responses still go out before `bye`.
    fn order_shutdown(&mut self, shared: &Shared, metas: &mut dyn FnMut(Meta)) {
        shared.draining.store(true, Ordering::SeqCst);
        shared.request_shutdown();
        self.on_eof(metas);
    }

    /// Remaps one parsed request into the connection's namespace,
    /// narrates its slot and hands it to the pool.
    fn submit(&mut self, shared: &Shared, request: AllocRequest, metas: &mut dyn FnMut(Meta)) {
        if request.stream >= MAX_STREAM_ID {
            return self.fail(
                codes::BAD_FRAME,
                format!("stream id {} exceeds {}", request.stream, MAX_STREAM_ID - 1),
                metas,
            );
        }
        let client_id = request.id;
        let client_stream = request.stream;
        let remapped = AllocRequest {
            id: (self.conn_id << CONN_SHIFT) | self.seq,
            stream: (self.conn_id << CONN_SHIFT) | client_stream,
            kind: request.kind,
            budget: request.budget,
            policy: request.policy,
        };
        metas(Meta::Request {
            seq: self.seq,
            client_id,
            client_stream,
        });
        self.seq += 1;
        // Admission: mint the trace id and stamp the sojourn clock before
        // the pool can complete the request (the sink takes both back).
        shared.metrics.requests.inc();
        let remapped_id = remapped.id;
        shared.admit(remapped_id);
        let mut pool = shared.pool.lock().expect("pool slot");
        match pool.as_mut() {
            Some(pool) => pool.submit(vec![remapped]),
            None => {
                // Drained under us: the emit side answers instead.
                drop(pool);
                shared.unadmit(remapped_id);
                self.fail(codes::DRAINING, "server is draining".into(), metas);
            }
        }
    }
}

// ----------------------------------------------------------- the server

/// A running allocation server. The module docs at the top of
/// `server.rs` describe the two I/O backends; `crates/net/README.md`
/// has the protocol (both wire versions).
///
/// Binding to port 0 picks an ephemeral port; [`Server::local_addr`]
/// reports the actual address (tests and CI never collide on a fixed
/// port).
///
/// [`Server::shutdown`] is graceful and idempotent: new connections are
/// rejected with a `draining` greeting, every request already submitted
/// is solved and its response delivered, and all threads (acceptor,
/// connection I/O, pool workers) are joined before it returns.
/// Dropping the server calls it implicitly.
pub struct Server {
    shared: Arc<Shared>,
    core: Option<Arc<EventCore>>,
    acceptor: Option<JoinHandle<()>>,
    /// Drain-once guard: `true` once a shutdown completed.
    done: Mutex<bool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Every server is instrumented: adopt the caller's registry when
        // the config carries one, otherwise create a private one, and
        // inject it into the service config so the pool workers record
        // into the same registry the `stats` verb snapshots.
        let mut service = config.service.clone();
        let registry = service.metrics.get_or_insert_with(Registry::shared).clone();
        let metrics = NetMetrics::new(&registry);
        let shared = Arc::new(Shared {
            addr,
            draining: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            routes: Mutex::new(HashMap::new()),
            pool: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            faults: service.faults.clone().filter(|plan| !plan.is_empty()),
            max_wire: config.max_wire.clamp(1, MAX_PROTOCOL_VERSION),
            wakeups: registry.counter("net.io_wakeups"),
            registry,
            metrics,
            inflight: Mutex::new(HashMap::new()),
        });

        let core = match config.io {
            IoBackend::Threads => None,
            IoBackend::Events => {
                let threads = if config.event_threads == 0 {
                    2
                } else {
                    config.event_threads.min(64)
                };
                Some(EventCore::start(shared.clone(), threads)?)
            }
        };

        // The pool delivers completions straight to the owning
        // connection, routed by the connection bits of the id: to the
        // writer thread's channel (threads) or the owning event loop's
        // injector (events).
        let sink_shared = shared.clone();
        let sink_core = core.clone();
        let pool = SolverPool::with_sink(
            &service,
            Arc::new(move |response: AllocResponse| {
                let conn = response.id >> CONN_SHIFT;
                let seq = response.id & SEQ_MASK;
                // Close out the admission record: the elapsed time is the
                // request's sojourn through the pool (queue wait + solve).
                if let Some((_trace, admitted)) = sink_shared.unadmit(response.id) {
                    sink_shared.metrics.request_us.record(admitted.elapsed());
                }
                match &sink_core {
                    Some(core) => core.complete(conn, Pending(seq, response)),
                    None => {
                        let routes = sink_shared.lock_routes();
                        match routes.get(&conn) {
                            // A closed writer (client vanished) discards —
                            // a counted in-flight drop.
                            Some(tx) if tx.send(Pending(seq, response)).is_ok() => {}
                            _ => sink_shared.metrics.responses_dropped.inc(),
                        }
                    }
                }
            }),
        );
        *shared.pool.lock().expect("pool slot") = Some(pool);

        let acceptor_shared = shared.clone();
        let acceptor_core = core.clone();
        let acceptor =
            std::thread::spawn(move || accept_loop(listener, acceptor_shared, acceptor_core));
        Ok(Server {
            shared,
            core,
            acceptor: Some(acceptor),
            done: Mutex::new(false),
        })
    }

    /// The bound address (the real port, also when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Cumulative I/O wake-ups: timeout polls of threaded readers plus
    /// `poll(2)` returns of event loops. With N idle connections the
    /// threaded backend accrues ~N wake-ups per read-timeout tick; the
    /// event backend blocks until readiness and accrues ~zero (pinned
    /// by `idle_connections_cost_no_wakeups_on_the_event_backend` in
    /// `tests/integration_net.rs`).
    pub fn io_wakeups(&self) -> u64 {
        self.shared.wakeups.get()
    }

    /// The server's metrics registry — the one the pool workers and the
    /// connection backends record into and the `stats` wire verb
    /// snapshots. [`ServerConfig::service`] may supply a registry via
    /// [`ServiceConfig::metrics`]; otherwise [`Server::bind`] creates
    /// one, so this is never empty. `vmplace serve --metrics-interval`
    /// polls it for periodic stderr snapshot lines.
    pub fn metrics(&self) -> Arc<Registry> {
        self.shared.registry.clone()
    }

    /// The server's live stats snapshot as one line of JSON — exactly
    /// the body a `stats` wire request would be answered with.
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Blocks until a shutdown is requested — by [`Server::shutdown`]
    /// from another thread, or by a client's `shutdown` wire frame — then
    /// performs the drain and returns. `vmplace serve` is a bind
    /// followed by this call.
    pub fn wait(mut self) {
        {
            let (lock, cvar) = &self.shared.shutdown_requested;
            let mut requested = lock.lock().expect("shutdown flag");
            while !*requested {
                requested = cvar.wait(requested).expect("shutdown flag");
            }
        }
        self.drain();
    }

    /// Marks the server draining **without** completing the shutdown:
    /// new connections are rejected with the `draining` greeting from
    /// this call on, and any [`Server::wait`] caller is released into
    /// the drain. Idempotent; [`Server::shutdown`] implies it.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        if let Some(core) = &self.core {
            core.wake_all();
        }
    }

    /// Graceful, idempotent shutdown: reject new connections with a
    /// `draining` greeting, stop reading from live connections, deliver
    /// every in-flight response, join every thread. Safe to call from
    /// any thread, any number of times; concurrent callers block until
    /// the first drain finishes.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        self.drain();
    }

    fn drain(&mut self) {
        let mut done = self.done.lock().expect("drain guard");
        if *done {
            return;
        }
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        shared.request_shutdown();
        if let Some(core) = &self.core {
            // Wake the event loops so they notice the draining flag and
            // start their per-connection grace windows.
            core.wake_all();
        }

        // Wind down live threaded connections: each reader first
        // consumes every frame already received (reads keep returning
        // data while the socket buffer is non-empty), then exits on its
        // first quiet [`READ_POLL`] interval; its writer then drains
        // every completion of the requests read (the pool workers are
        // still running) and says `bye`. New connections keep being
        // answered with the `draining` greeting throughout. (Event-loop
        // connections run the same protocol inside their loops.)
        let conns = std::mem::take(&mut *shared.conns.lock().expect("conns"));
        for (_stream, reader, writer) in conns {
            let _ = reader.join();
            let _ = writer.join();
        }

        // Now retire the acceptor: flag it down and wake it out of
        // accept() with a throwaway connection.
        shared.accept_stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }

        // A connection accepted just before the draining flag landed may
        // have been registered after the sweep above; with the acceptor
        // gone the registry is final, so one more sweep closes the race.
        let conns = std::mem::take(&mut *shared.conns.lock().expect("conns"));
        for (_stream, reader, writer) in conns {
            let _ = reader.join();
            let _ = writer.join();
        }

        // Event loops exit once `accept_stop` is up and their last
        // connection has been answered and closed; the pool workers are
        // still alive underneath them until that point.
        if let Some(core) = &self.core {
            core.wake_all();
            core.join();
        }

        // Finally the pool itself: dropping it drains worker queues
        // (already empty — every completion was awaited) and joins the
        // worker threads.
        drop(shared.pool.lock().expect("pool slot").take());
        *done = true;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------- acceptor

/// `EMFILE` (per-process fd limit) / `ENFILE` (system-wide table full):
/// the two accept failures that mean "out of descriptors, try later",
/// never "the listener broke".
fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    // ENFILE = 23, EMFILE = 24 on Linux and the BSDs.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// The one-line refusal for an accept the server had no descriptors
/// for: the `overloaded` code plus the same `retry-after-ms` contract
/// shed responses carry. [`crate::Client::connect`] surfaces it as
/// [`crate::NetError::Remote`]; `replay_resilient` retries through it.
fn overload_reject_line() -> String {
    format!(
        "error {} retry-after-ms={} file descriptors exhausted; retry\n",
        codes::OVERLOADED,
        ACCEPT_BACKOFF.as_millis()
    )
}

/// One spare descriptor the acceptor can release to answer a pending
/// connection when `accept` fails with fd exhaustion — without it the
/// rejection itself would need a descriptor the process doesn't have.
struct FdReserve(Option<std::fs::File>);

impl FdReserve {
    fn new() -> FdReserve {
        FdReserve(std::fs::File::open("/dev/null").ok())
    }

    fn release(&mut self) {
        self.0 = None;
    }

    fn rearm(&mut self) {
        if self.0.is_none() {
            self.0 = std::fs::File::open("/dev/null").ok();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, core: Option<Arc<EventCore>>) {
    let mut reserve = FdReserve::new();
    let mut accepted: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if is_fd_exhaustion(&e) => {
                // Out of descriptors is load, not failure: release the
                // reserve fd, answer the pending connection with the
                // overloaded + retry-after contract, back off, re-arm.
                // The acceptor itself must survive.
                reserve.release();
                if let Ok((stream, _)) = listener.accept() {
                    if shared.accept_stop.load(Ordering::SeqCst) {
                        return; // the drain's wake-up connection
                    }
                    reject(stream, &overload_reject_line());
                }
                std::thread::sleep(ACCEPT_BACKOFF);
                reserve.rearm();
                continue;
            }
            Err(_) => {
                // Listener failure: trigger a drain so `wait` callers
                // return.
                shared.request_shutdown();
                return;
            }
        };
        if shared.accept_stop.load(Ordering::SeqCst) {
            return; // the drain's wake-up connection
        }
        if shared.draining.load(Ordering::SeqCst) {
            // Reject with the draining greeting and keep accepting (so
            // every rejected client gets the frame until the drain ends).
            reject(
                stream,
                &format!("{} {} draining\n", wire::MAGIC, PROTOCOL_VERSION),
            );
            continue;
        }
        accepted += 1;
        if let Some(plan) = &shared.faults {
            // Deterministic fd-exhaustion injection: treat the first N
            // accepts as if `accept` had failed with EMFILE, exercising
            // the same rejection path the reserve-fd branch uses.
            if plan.fd_exhaust.is_some_and(|n| accepted <= n) {
                reject(stream, &overload_reject_line());
                std::thread::sleep(ACCEPT_BACKOFF);
                continue;
            }
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if conn_id >= CONN_LIMIT {
            // Out of connection-id space for this server lifetime:
            // refuse honestly instead of aliasing ids across tenants.
            reject(
                stream,
                "error internal connection-id space exhausted; restart the server\n",
            );
            continue;
        }
        // Panic guard: connection setup touches fallible per-connection
        // plumbing; a panic there must cost only this connection, never
        // new-connection intake (regression test in
        // `tests/integration_chaos.rs` via `FaultPlan::panic_accept`).
        match catch_unwind(AssertUnwindSafe(|| {
            connection_intake(&shared, &core, stream, conn_id)
        })) {
            Ok(Ok(Some(entry))) => shared.conns.lock().expect("conns").push(entry),
            Ok(Ok(None)) => {}      // event backend: the loop owns it now
            Ok(Err(_)) => continue, // socket setup failure: drop the connection
            Err(_) => {
                // The panicked setup may have registered its completion
                // route already; unregister (tolerant of the poison the
                // panic may have left behind).
                shared.lock_routes().remove(&conn_id);
                continue;
            }
        }
    }
}

/// Refuses a connection with a one-line answer, making sure the line
/// actually reaches the peer: closing a socket with unread input (the
/// client's hello) can send RST and purge the already-written reply, so
/// the write side is half-closed first and the peer's bytes are drained
/// until EOF or a short timeout.
fn reject(mut stream: TcpStream, line: &str) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(DRAIN_GRACE));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Hands one accepted connection to the configured I/O backend.
fn connection_intake(
    shared: &Arc<Shared>,
    core: &Option<Arc<EventCore>>,
    stream: TcpStream,
    conn_id: u64,
) -> std::io::Result<Option<ConnHandle>> {
    if let Some(plan) = &shared.faults {
        if plan.panic_accept == Some(conn_id) {
            panic!("{INJECTED_FAULT_MARKER} (accept, connection {conn_id})");
        }
    }
    match core {
        Some(core) => {
            core.add_conn(stream, conn_id)?;
            shared.metrics.conns_events.inc();
            shared.metrics.conns_open.add(1);
            Ok(None)
        }
        None => {
            let handle = spawn_connection(shared, stream, conn_id)?;
            shared.metrics.conns_threads.inc();
            shared.metrics.conns_open.add(1);
            Ok(Some(handle))
        }
    }
}

/// Threaded backend: registers the completion route, spawns the reader
/// (which performs the handshake) and the writer.
fn spawn_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    conn_id: u64,
) -> std::io::Result<ConnHandle> {
    let registry_stream = stream.try_clone()?;
    let write_stream = stream.try_clone()?;

    let (meta_tx, meta_rx) = channel::<Meta>();
    let (comp_tx, comp_rx) = channel::<Pending>();
    shared.lock_routes().insert(conn_id, comp_tx);

    let reader_shared = shared.clone();
    let reader = std::thread::spawn(move || {
        read_loop(reader_shared, stream, conn_id, meta_tx);
    });
    let writer_shared = shared.clone();
    let loop_shared = shared.clone();
    let writer = std::thread::spawn(move || {
        write_loop(loop_shared, write_stream, meta_rx, comp_rx, conn_id);
        // Past this point no completion for this connection can be in
        // flight (every submitted request was awaited before `bye`).
        writer_shared.lock_routes().remove(&conn_id);
        // Retire the connection's stream namespace so long-lived worker
        // memory (instances, warm yields, caches) tracks live clients.
        writer_shared.retire_conn(conn_id);
    });
    Ok((registry_stream, reader, writer))
}

/// Threaded backend reader: blocking chunk reads (with the [`READ_POLL`]
/// timeout as the drain's quiet detector) fed through the shared
/// [`ConnProto`] engine; metas stream to the writer thread.
fn read_loop(shared: Arc<Shared>, mut stream: TcpStream, conn_id: u64, meta: Sender<Meta>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut proto = ConnProto::new(conn_id);
    let mut buf = vec![0u8; 16 * 1024];
    let mut sink = |m: Meta| {
        let _ = meta.send(m);
    };
    // When a drain begins, frames already in the socket buffer are still
    // consumed; the grace deadline stops a client that keeps streaming
    // from holding the drain open forever.
    let mut drain_seen: Option<std::time::Instant> = None;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            let seen = *drain_seen.get_or_insert_with(std::time::Instant::now);
            if seen.elapsed() > DRAIN_GRACE {
                return proto.fail(codes::DRAINING, "server is draining".into(), &mut sink);
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return proto.on_eof(&mut sink),
            Ok(n) => {
                if proto.feed(&shared, &buf[..n], &mut sink) == Flow::Closed {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                shared.wakeups.inc();
                if shared.draining.load(Ordering::SeqCst) {
                    // First quiet interval during a drain: done reading.
                    return proto.on_eof(&mut sink);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return proto.on_eof(&mut sink),
        }
    }
}

/// The writer's socket half: owns the buffered stream, the liveness
/// flag, and the per-connection fault injection (response-frame counting
/// for drop points, short/delayed writes).
///
/// The invariant it enforces — for genuine write failures (including the
/// [`WRITE_TIMEOUT`] expiring mid-frame) exactly as for injected drops —
/// is that a failed or cut-off write **tears the connection down**
/// ([`Shutdown::Both`]): the peer can never observe a half-written frame
/// followed by a fresh frame on the same socket, and the connection's
/// reader sees EOF, exits, and triggers stream retirement through the
/// normal `bye` path.
struct FrameWriter {
    out: std::io::BufWriter<TcpStream>,
    alive: bool,
    conn_id: u64,
    faults: Option<FaultPlan>,
    /// Response frames fully written (the drop-point counter).
    frames: u64,
    metrics: NetMetrics,
}

impl FrameWriter {
    fn new(
        stream: TcpStream,
        conn_id: u64,
        faults: Option<FaultPlan>,
        metrics: NetMetrics,
    ) -> FrameWriter {
        FrameWriter {
            out: std::io::BufWriter::new(stream),
            alive: true,
            conn_id,
            faults,
            frames: 0,
            metrics,
        }
    }

    /// Tears the connection down after a failed (or injected-faulty)
    /// write. The writer stays in its loop consuming metas and
    /// completions — the reader and the completion sink must never block
    /// on a dead peer — but nothing further is written.
    fn teardown(&mut self) {
        self.alive = false;
        let _ = self.out.get_ref().shutdown(Shutdown::Both);
    }

    /// Writes raw bytes, honoring injected short writes and delays; any
    /// genuine error (the peer vanished, the write timeout fired) tears
    /// the connection down.
    fn emit(&mut self, bytes: &[u8]) {
        if !self.alive {
            return;
        }
        let chunked = self.faults.as_ref().and_then(|f| f.short_write);
        let result = match chunked {
            Some(chunk) => {
                let delay = self.faults.as_ref().and_then(|f| f.write_delay);
                let mut result = Ok(());
                for piece in bytes.chunks(chunk.max(1)) {
                    result = self.out.write_all(piece).and_then(|_| self.out.flush());
                    if result.is_err() {
                        break;
                    }
                    if let Some(delay) = delay {
                        std::thread::sleep(delay);
                    }
                }
                result
            }
            None => self.out.write_all(bytes),
        };
        if result.is_err() {
            self.teardown();
        }
    }

    /// Writes one response frame, counting it against the plan's drop
    /// point: at the drop point the connection is cut instead — on the
    /// frame boundary, or (`midframe`) after leaking roughly half the
    /// frame's bytes, which is exactly the torn write a real mid-frame
    /// failure leaves behind.
    fn emit_response_frame(&mut self, frame: &[u8]) {
        if !self.alive {
            // The connection is already gone: this completed response
            // never reaches the wire.
            self.metrics.responses_dropped.inc();
            return;
        }
        let cut = self
            .faults
            .as_ref()
            .and_then(|f| f.drop_point(self.conn_id))
            .is_some_and(|point| self.frames >= point);
        if cut {
            if self.faults.as_ref().is_some_and(|f| f.midframe) {
                let half = frame.len() / 2;
                let _ = self.out.write_all(&frame[..half]);
                let _ = self.out.flush();
            }
            self.teardown();
            self.metrics.responses_dropped.inc();
            return;
        }
        self.emit(frame);
        if self.alive {
            self.frames += 1;
            self.metrics.responses.inc();
        } else {
            // The write failed (or timed out) mid-frame: torn, not sent.
            self.metrics.responses_dropped.inc();
        }
    }

    fn flush(&mut self) {
        if self.alive && self.out.flush().is_err() {
            self.teardown();
        }
    }
}

/// Threaded backend writer: emits frames in submission order, restoring
/// client ids/streams on responses, encoding for the wire version the
/// greeting negotiated. Exits on `Bye` (or a dead socket).
fn write_loop(
    shared: Arc<Shared>,
    stream: TcpStream,
    meta: Receiver<Meta>,
    completions: Receiver<Pending>,
    conn_id: u64,
) {
    // A non-reading client must not park this thread in write_all
    // forever — the drain joins every writer. On expiry the connection
    // is torn down (see [`FrameWriter`]), never silently resumed.
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = FrameWriter::new(
        stream,
        conn_id,
        shared.faults.clone(),
        shared.metrics.clone(),
    );
    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    // Until the greeting lands the connection speaks v1 text (the
    // handshake and its error answers are text in every version).
    let mut wire: u32 = PROTOCOL_VERSION;

    // Blocking recv, but flush whenever the queue momentarily empties so
    // pipelined bursts coalesce and lone frames still go out promptly.
    let mut next: Option<Meta> = None;
    loop {
        let item = match next.take() {
            Some(m) => m,
            None => match meta.try_recv() {
                Ok(m) => m,
                Err(_) => {
                    writer.flush();
                    match meta.recv() {
                        Ok(m) => m,
                        Err(_) => break, // reader gone without Bye (panic)
                    }
                }
            },
        };
        match item {
            Meta::Greeting(v) => {
                wire = v;
                writer.emit(&greeting_frame(v));
            }
            Meta::Pong(token, received) => {
                writer.emit(&pong_frame(wire, &token));
                shared.metrics.ping_us.record(received.elapsed());
            }
            Meta::Stats => {
                let json = stats_json(&shared);
                writer.emit(&stats_frame(wire, &json));
            }
            Meta::Error { code, message } => {
                shared.metrics.errors.inc();
                writer.emit(&error_frame(wire, code, &message));
            }
            Meta::Bye => {
                writer.emit(&bye_frame(wire));
                writer.flush();
                // Close the TCP connection for real: the drain registry
                // holds another clone of this socket, so dropping our fd
                // alone would leave the client's read blocked.
                let _ = writer.out.get_ref().shutdown(Shutdown::Both);
                break;
            }
            Meta::Request {
                seq,
                client_id,
                client_stream,
            } => {
                // Pull completions until this slot's arrives.
                let mut response = loop {
                    if let Some(Pending(s, _)) = heap.peek() {
                        if *s == seq {
                            break heap.pop().expect("peeked").1;
                        }
                    }
                    match completions.recv() {
                        Ok(p) => heap.push(p),
                        Err(_) => return, // pool gone mid-request: abort
                    }
                };
                response.id = client_id;
                response.stream = client_stream;
                let t_encode = Instant::now();
                let frame = response_frame(wire, &response);
                shared.metrics.encode_us.record(t_encode.elapsed());
                writer.emit_response_frame(&frame);
            }
        }
        if next.is_none() {
            if let Ok(m) = meta.try_recv() {
                next = Some(m);
            }
        }
    }
}
